"""Docs smoke check: executable README, non-dangling links.

Two gates, both cheap enough for every CI run:

1. Every fenced ``python`` code block in README.md is executed (one
   shared namespace per file, top to bottom), so the quickstart the
   README shows is the quickstart that actually runs.  Blocks fenced as
   ``bash``/``console``/anything else are skipped.
2. Every relative markdown link in README.md and docs/*.md must resolve
   to an existing file (anchors and absolute http(s)/mailto links are
   skipped), so refactors cannot silently strand the docs.

Run:  PYTHONPATH=src python tools/check_docs.py
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

FENCE_RE = re.compile(r"^```(\w*)\s*$")
# [text](target) — good enough for our docs; code spans are stripped
# before matching so `server.register("x", m)` never parses as a link.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "#")


def python_blocks(path: Path):
    """Yield (start_line, source) for each fenced python block."""
    lines = path.read_text().splitlines()
    block, start, lang = None, 0, None
    for lineno, line in enumerate(lines, 1):
        fence = FENCE_RE.match(line.strip())
        if fence and block is None:
            block, start, lang = [], lineno + 1, fence.group(1).lower()
        elif line.strip() == "```" and block is not None:
            if lang == "python":
                yield start, "\n".join(block)
            block, lang = None, None
        elif block is not None:
            block.append(line)


def run_blocks(path: Path) -> int:
    namespace = {"__name__": "__docs__"}
    count = 0
    for start, source in python_blocks(path):
        count += 1
        print(
            f"  exec {path.relative_to(REPO)}:{start} "
            f"({len(source.splitlines())} lines)"
        )
        code = compile(source, f"{path.name}:{start}", "exec")
        exec(code, namespace)
    return count


def check_links(path: Path, errors: list) -> int:
    text = CODE_SPAN_RE.sub("", path.read_text())
    count = 0
    for target in LINK_RE.findall(text):
        if target.startswith(SKIP_SCHEMES):
            continue
        count += 1
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = (path.parent / rel).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(REPO)}: dangling link -> {target}")
    return count


def main() -> int:
    doc_files = [REPO / "README.md"]
    doc_files += sorted((REPO / "docs").glob("*.md"))
    missing = [p for p in doc_files if not p.exists()]
    if missing:
        print(f"missing doc files: {missing}")
        return 1

    errors = []
    links = sum(check_links(p, errors) for p in doc_files)
    print(f"checked {links} relative links across {len(doc_files)} files")
    for err in errors:
        print(f"  FAIL {err}")

    executed = run_blocks(REPO / "README.md")
    if executed == 0:
        errors.append("README.md: no executable python block found")

    if errors:
        print(f"docs check FAILED ({len(errors)} problems)")
        return 1
    print(f"docs check ok: {executed} code blocks executed, {links} links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
