"""The actor runtime: persistent stateful workers for training execution.

The paper's cluster story (Fig. 12) keeps data resident on executors
while the driver coordinates cheap reductions.  This package is that
runtime layer in miniature:

- :mod:`repro.runtime.pool` — :class:`ActorPool`, long-lived spawn-safe
  worker processes with parent-side cache mirroring, death detection,
  bounded respawn and per-task timeout/retry;
- :mod:`repro.runtime.worker` — the in-worker loop: a shard-state cache
  keyed by the content-addressed op keys of
  :mod:`repro.core.program` (featurized shards reused across estimators
  *and across fits*), plus in-worker iterative solving through the
  :class:`~repro.core.operators.IterativeShardableEstimator` protocol;
- :mod:`repro.runtime.transport` — zero-copy numpy shipping via
  pickle-5 out-of-band buffers and ``multiprocessing.shared_memory``.

The :class:`~repro.core.backends.actors.ActorBackend` drives it from
``plan.execute(backend="actors")``.
"""

from repro.runtime.pool import (
    ActorPool,
    shared_actor_pool,
    shutdown_actor_pools,
)
from repro.runtime.worker import (
    DEFAULT_STATE_BUDGET,
    MissingShardState,
    ShardStateCache,
)

__all__ = [
    "ActorPool",
    "DEFAULT_STATE_BUDGET",
    "MissingShardState",
    "ShardStateCache",
    "shared_actor_pool",
    "shutdown_actor_pools",
]
