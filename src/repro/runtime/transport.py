"""Zero-copy partition transport: pickle-5 out-of-band buffers + shm.

Shipping a featurized shard through a pipe costs two copies (pickle in
the parent, unpickle in the worker) plus the pipe write itself.  For the
numpy-heavy partitions the paper's pipelines produce, pickle protocol 5
lets us lift the array payloads *out* of the pickle stream
(``buffer_callback``): the stream then carries only structure, and the
raw buffers travel separately.  This module adds the second half: when
the out-of-band payload is large enough, the buffers are written once
into a :class:`multiprocessing.shared_memory.SharedMemory` segment and
the worker reconstructs its arrays as **views over the mapped segment**
— zero copies on the receive side, one copy total.

Lifecycle contract (POSIX shm semantics):

- the sender creates the segment, sends its name, and must keep the
  segment alive until the receiver acknowledges the message; after the
  ack it calls :meth:`ShipResult.release` (close + unlink) — the kernel
  keeps the pages alive while the worker has them mapped;
- the receiver keeps every attached segment mapped for its process
  lifetime (:func:`unpack` returns the segments): cached rows may be
  views into the mapping, so unmapping early would invalidate live
  arrays.  Evicting a cached shard therefore frees the Python row
  objects, not the mapped pages — a documented trade of address space
  for copy-free receives.

Anything that cannot use shared memory (no ``/dev/shm``, permission
errors) degrades to inline out-of-band buffers on the pipe — one copy,
still no pickle of the raw bytes.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

try:
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - stdlib since 3.8
    shared_memory = None

#: out-of-band payloads at least this large go through shared memory;
#: below it the pipe copy is cheaper than a segment create + map
SHM_THRESHOLD = 1 << 16


@dataclass
class ShipResult:
    """A packed message plus its transfer accounting.

    ``payload`` is what actually crosses the pipe; ``segment`` (when
    shared memory was used) must stay alive until the receiver has
    acknowledged the message, then :meth:`release` both closes the
    sender's mapping and unlinks the name.
    """

    payload: Tuple
    #: bytes pickled/copied through the pipe (stream + inline buffers)
    shipped_bytes: int = 0
    #: bytes placed in shared memory (receiver maps, never copies)
    mapped_bytes: int = 0
    segment: Optional[Any] = field(default=None, repr=False)

    def release(self) -> None:
        """Close and unlink the shm segment (receiver has mapped it)."""
        if self.segment is not None:
            self.segment.close()
            try:
                self.segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self.segment = None


def pack(obj: Any, *, shm_threshold: int = SHM_THRESHOLD) -> ShipResult:
    """Pack ``obj`` for the pipe, lifting large numpy payloads into shm.

    The returned payload is one of::

        ("inline", body, [buffer, ...])          # buffers ride the pipe
        ("shm", body, segment_name, [size, ...]) # buffers live in shm

    ``body`` is the protocol-5 pickle stream with array payloads
    extracted out-of-band.  Objects whose buffers resist out-of-band
    treatment (non-contiguous views) fall back to a plain in-band
    pickle.
    """
    buffers: List[pickle.PickleBuffer] = []
    try:
        body = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
        raws = [b.raw() for b in buffers]
    except BufferError:
        body = pickle.dumps(obj, protocol=5)
        return ShipResult(("inline", body, []), shipped_bytes=len(body))
    total = sum(r.nbytes for r in raws)
    if shared_memory is not None and total >= shm_threshold:
        try:
            segment = shared_memory.SharedMemory(create=True, size=total)
        except (OSError, ValueError):
            segment = None
        if segment is not None:
            offset = 0
            sizes = []
            for raw in raws:
                segment.buf[offset : offset + raw.nbytes] = raw
                sizes.append(raw.nbytes)
                offset += raw.nbytes
            return ShipResult(
                ("shm", body, segment.name, sizes),
                shipped_bytes=len(body),
                mapped_bytes=total,
                segment=segment,
            )
    return ShipResult(
        ("inline", body, [r.tobytes() for r in raws]),
        shipped_bytes=len(body) + total,
    )


def unpack(payload: Tuple) -> Tuple[Any, List[Any]]:
    """Unpack a :func:`pack` payload; returns ``(obj, segments)``.

    ``segments`` holds the shared-memory mappings backing ``obj``'s
    arrays (empty for inline messages).  The caller must keep them
    referenced for as long as any row from ``obj`` may be alive — the
    actor worker parks them for its process lifetime.
    """
    kind = payload[0]
    if kind == "shm":
        _, body, name, sizes = payload
        segment = shared_memory.SharedMemory(name=name)
        # The parent owns the segment's lifecycle (it unlinks after our
        # ack); unregister the attach so this process's resource tracker
        # does not try to unlink it again at exit.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        views = []
        offset = 0
        for size in sizes:
            views.append(segment.buf[offset : offset + size])
            offset += size
        return pickle.loads(body, buffers=views), [segment]
    _, body, raws = payload
    return pickle.loads(body, buffers=raws), []
