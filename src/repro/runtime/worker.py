"""The actor worker: a long-lived process holding content-keyed shard state.

One actor owns one contiguous chunk of training partitions per wave and
keeps everything it computes in a :class:`ShardStateCache` keyed by
``(op content key, chunk)`` — the content-addressed keys from
:mod:`repro.core.program` folded with the partition range.  Because op
keys digest the whole flow (dataset content through every operator's
fitted state), a cached shard is exactly reusable whenever *any* later
estimator — in this fit or the next one — lowers to the same flow
prefix over the same chunk: the parent ships nothing and the worker
recomputes nothing.

The message protocol (one pipe per actor, strictly request/reply):

- ``("run", task_id, blob, chunk, packed_sources, mode)`` — execute a
  pickled shard program over ``chunk``, serving ops from the cache where
  keys hit.  ``mode`` is ``"collect"`` (return featurized rows),
  ``"stats"`` (one-shot ``partition_stats`` per partition) or ``"init"``
  (stage the featurized partitions for iterative passes and return
  ``init_stats`` partials).
- ``("pass", task_id, payload)`` — one iterative pass: run
  ``partition_pass_stats(payload, ...)`` over the staged partitions.
- ``("end", task_id)`` — drop the staging area for a finished fit.
- ``("shutdown",)`` — exit the loop.

Replies are ``("ok", task_id, result, meta)`` or ``("err", task_id,
exception)``; ``meta`` carries per-node compute seconds, cache
hit/miss counts and the keys evicted since the last reply (the parent
mirrors the cache so it can skip re-shipping held sources).
"""

from __future__ import annotations

import pickle
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Sequence, Set, Tuple

from repro.core import graph as g
from repro.core import program as prog
from repro.obs import trace as obs_trace
from repro.runtime import transport

#: default worker-side budget for cached shard state
DEFAULT_STATE_BUDGET = 256 * 1024 * 1024


class MissingShardState(KeyError):
    """The parent assumed a shard was cached but the worker lacks it.

    Raised when a program needs a source the message did not ship and
    the cache does not hold — the parent's mirror drifted (e.g. an
    unreported eviction).  The pool recovers by clearing its mirror for
    the actor and re-sending with a full ship; it never fails the fit.
    """


def _rows_nbytes(parts: Sequence[list]) -> int:
    """Cheap size estimate of a chunk's partitions for the cache budget."""
    total = 0
    for rows in parts:
        for row in rows:
            total += getattr(row, "nbytes", 64)
    return total


class ShardStateCache:
    """LRU cache of computed shards, keyed ``(op key, start, stop)``.

    Eviction frees the Python row objects only: rows may be views into
    shared-memory segments that stay mapped for the process lifetime
    (see :mod:`repro.runtime.transport`), so the budget bounds *heap*
    growth, not address space.  Evicted keys accumulate in
    :attr:`evicted` until the reply loop drains them back to the parent.
    """

    def __init__(self, budget_bytes: int = DEFAULT_STATE_BUDGET):
        self.budget_bytes = budget_bytes
        self.hits = 0
        self.misses = 0
        self.evicted: List[Tuple] = []
        self._entries: OrderedDict[Tuple, Tuple[List[list], int]] = OrderedDict()
        self._bytes = 0

    def __contains__(self, key: Tuple) -> bool:
        return key in self._entries

    def get(self, key: Tuple) -> List[list]:
        parts, _ = self._entries[key]
        self._entries.move_to_end(key)
        self.hits += 1
        return parts

    def put(self, key: Tuple, parts: List[list]) -> None:
        self.misses += 1
        if key in self._entries:
            _, old = self._entries.pop(key)
            self._bytes -= old
        size = _rows_nbytes(parts)
        self._entries[key] = (parts, size)
        self._bytes += size
        while self._bytes > self.budget_bytes and len(self._entries) > 1:
            old_key, (_, old_size) = self._entries.popitem(last=False)
            self._bytes -= old_size
            self.evicted.append(old_key)

    def drain_evicted(self) -> List[Tuple]:
        out, self.evicted = self.evicted, []
        return out


def live_slots(
    ops: Sequence[prog.Op],
    targets: Sequence[int],
    is_cached: Callable[[str], bool],
) -> Tuple[Set[int], Set[int]]:
    """Backward liveness over a shard program given a cache oracle.

    Returns ``(needed, compute)``: the slots whose values the targets
    (transitively) read, and the subset that must actually be computed —
    a cached op's value is loaded, so its parents drop out of the walk.
    Gathers are never cached (their zip is cheaper than the copy).  Both
    the parent (deciding what to ship) and the worker (deciding what to
    run) use this same walk, so they agree whenever the parent's mirror
    of the cache is accurate.
    """
    needed: Set[int] = set(targets)
    compute: Set[int] = set()
    for op in reversed(ops):
        if op.slot not in needed:
            continue
        if op.kind != prog.GATHER and op.key and is_cached(op.key):
            continue
        compute.add(op.slot)
        needed.update(op.parents)
    return needed, compute


def _execute_program(
    ops: Sequence[prog.Op],
    chunk: Tuple[int, int],
    sources: Dict[int, List[list]],
    targets: Sequence[int],
    cache: ShardStateCache,
    times: Dict[int, float],
    tracer: "obs_trace.Tracer | None" = None,
) -> Dict[int, List[list]]:
    """Run a shard program over one chunk, through the shard cache.

    ``sources`` maps source node ids to their shipped partitions (only
    the ones the parent believed were not already cached).  Returns the
    slot environment: slot -> list of computed partitions.  With a
    ``tracer``, each computed transform records one content-keyed span.
    """
    start, stop = chunk
    needed, compute = live_slots(ops, targets, lambda k: (k, start, stop) in cache)
    env: Dict[int, List[list]] = {}
    for op in ops:
        if op.slot not in needed:
            continue
        cacheable = bool(op.key) and op.kind != prog.GATHER
        if op.slot not in compute:
            env[op.slot] = cache.get((op.key, start, stop))
            if tracer is not None:
                tracer.event(
                    "shard_cache_hit",
                    cat="cache",
                    key=op.key or None,
                    args={"node_id": op.node_id},
                )
            continue
        if op.kind == prog.SOURCE:
            if op.node_id not in sources:
                raise MissingShardState(
                    f"source {op.label!r} chunk {chunk} neither shipped nor cached"
                )
            parts = sources[op.node_id]
        elif op.kind == prog.TRANSFORM:
            t0 = time.perf_counter()
            parts = [op.op.apply_partition(p) for p in env[op.parents[0]]]
            elapsed = time.perf_counter() - t0
            times[op.node_id] = times.get(op.node_id, 0.0) + elapsed
            if tracer is not None:
                tracer.record(
                    op.label,
                    seconds=elapsed,
                    key=op.key or None,
                    args={"node_id": op.node_id, "chunk": [start, stop]},
                )
        else:  # gather: element-wise zip into list rows
            groups = [[env[s][i] for s in op.parents] for i in range(stop - start)]
            parts = [g.zip_rows(rows) for rows in groups]
        env[op.slot] = parts
        if cacheable:
            cache.put((op.key, start, stop), parts)
    return env


def _run_task(
    blob: bytes,
    chunk: Tuple[int, int],
    sources: Dict[int, List[list]],
    mode: str,
    cache: ShardStateCache,
    staging: Dict[int, Tuple[Any, int, List[tuple]]],
    task_id: int,
    tracer: "obs_trace.Tracer | None" = None,
) -> Tuple[Dict[str, Any], Dict[int, float]]:
    """Execute one "run" message; returns ``(result, times)``."""
    ops, out_slots, est_spec = pickle.loads(blob)
    start, stop = chunk
    count = stop - start
    targets = [slot for _, slot in out_slots]
    if est_spec is not None:
        targets.extend(est_spec[2])
    times: Dict[int, float] = {}
    env = _execute_program(ops, chunk, sources, targets, cache, times, tracer)
    result: Dict[str, Any] = {}
    if out_slots:
        result["rows"] = {name: env[slot] for name, slot in out_slots}
    if est_spec is not None:
        est_id, est_op, stat_slots = est_spec
        parts = [tuple(env[s][i] for s in stat_slots) for i in range(count)]
        if len(stat_slots) == 2:
            # The serial driver (fit_via_passes) validates feature/label
            # partition alignment row by row; raise its exact error here
            # so a misaligned flow fails identically on every backend.
            for offset, args in enumerate(parts):
                if len(args[0]) != len(args[1]):
                    raise ValueError(
                        f"partition {start + offset}: {len(args[0])} "
                        f"feature rows vs {len(args[1])} label rows"
                    )
        t0 = time.perf_counter()
        if mode == "init":
            staging[task_id] = (est_op, est_id, parts)
            result["stats"] = [est_op.init_stats(*args) for args in parts]
        else:
            result["stats"] = [est_op.partition_stats(*args) for args in parts]
        elapsed = time.perf_counter() - t0
        times[est_id] = times.get(est_id, 0.0) + elapsed
        if tracer is not None:
            tracer.record(
                f"{mode}:{type(est_op).__name__}",
                seconds=elapsed,
                args={"node_id": est_id},
            )
    return result, times


def actor_main(conn, state_budget_bytes: int = DEFAULT_STATE_BUDGET) -> None:
    """Actor process entry point (module-level, spawn-safe).

    Serves the message protocol until shutdown or pipe close.  Shared
    memory segments attached while unpacking sources are parked in
    ``segments`` for the process lifetime — cached rows may be views
    into them (the zero-copy contract of
    :mod:`repro.runtime.transport`).
    """
    segments: List[Any] = []
    cache = ShardStateCache(state_budget_bytes)
    staging: Dict[int, Tuple[Any, int, List[tuple]]] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "shutdown":
            break
        task_id = msg[1]
        try:
            if msg[0] == "run":
                blob, chunk, packed_sources, mode = msg[2:6]
                # Optional trailing trace flag: parents only append it
                # when tracing is active, so the wire format is
                # unchanged for untraced runs.
                tracer = obs_trace.Tracer() if len(msg) > 6 and msg[6] else None
                sources, segs = transport.unpack(packed_sources)
                segments.extend(segs)
                result, times = _run_task(
                    blob, tuple(chunk), sources, mode, cache, staging, task_id, tracer
                )
                meta = {
                    "times": times,
                    "hits": cache.hits,
                    "misses": cache.misses,
                    "evicted": cache.drain_evicted(),
                }
                if tracer is not None:
                    meta["spans"] = tracer.drain()
                cache.hits = cache.misses = 0
                conn.send(("ok", task_id, result, meta))
            elif msg[0] == "pass":
                payload = msg[2]
                tracer = obs_trace.Tracer() if len(msg) > 3 and msg[3] else None
                est_op, est_id, parts = staging[task_id]
                t0 = time.perf_counter()
                stats = [est_op.partition_pass_stats(payload, *args) for args in parts]
                elapsed = time.perf_counter() - t0
                meta = {
                    "times": {est_id: elapsed},
                    "hits": 0,
                    "misses": 0,
                    "evicted": cache.drain_evicted(),
                }
                if tracer is not None:
                    tracer.record(
                        f"pass:{type(est_op).__name__}",
                        seconds=elapsed,
                        args={"node_id": est_id},
                    )
                    meta["spans"] = tracer.drain()
                conn.send(("ok", task_id, stats, meta))
            elif msg[0] == "end":
                staging.pop(task_id, None)
                conn.send(("ok", task_id, None, {}))
            else:
                raise RuntimeError(f"unknown actor message {msg[0]!r}")
        except BaseException as exc:  # reply, never die on a task error
            try:
                conn.send(("err", task_id, exc))
            except Exception:
                safe_exc = RuntimeError(f"{type(exc).__name__}: {exc}")
                conn.send(("err", task_id, safe_exc))
    conn.close()
