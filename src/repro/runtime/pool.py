"""ActorPool: long-lived stateful workers with bounded fault recovery.

Where :class:`~concurrent.futures.ProcessPoolExecutor` gives stateless
task slots, the actor pool gives *named* workers that keep shard state
between tasks — the parent addresses worker ``i`` deliberately because
worker ``i`` holds chunk ``i``'s featurized partitions.  That changes
the failure story: a dead stateless worker is replaced invisibly, but a
dead actor takes its cache and any staged iterative state with it.  The
pool therefore:

- mirrors every actor's cache contents parent-side (``holds``), updated
  from the eviction lists actors piggyback on replies, so message
  builders can skip re-shipping data an actor already has;
- detects death (pipe EOF / liveness poll) and a wedged task (per-task
  timeout), respawns the process bounded by ``max_restarts`` per actor,
  clears the mirror, replays the registered *setup* messages (rebuilding
  staged iterative state), and retries the in-flight message once —
  message builders are closures over the mirror, so a retry after a
  respawn automatically ships everything again;
- accounts restarts, cache hits/misses, and bytes shipped vs. mapped in
  :attr:`counters` for the :class:`~repro.core.executor.TrainingReport`.

Message builders are functions ``builder(actor) -> _Msg`` evaluated at
send time (and re-evaluated on retry) so they can consult the actor's
current mirror.  Pools are shared per configuration across backend
instances — persistent workers are the whole point — and torn down via
:func:`shutdown_actor_pools`.

Two driving styles share one fault-recovery path:

- :meth:`ActorPool.wave` — lockstep: one message per actor, collect all
  replies before returning.  The training backends use it (a shard wave
  is a barrier by nature).
- :meth:`ActorPool.call` — one request/reply against one actor, locked
  per actor so calls against *different* actors proceed concurrently.
  The serving replica tier uses it (batches overlap across replicas).

The worker entry point is pluggable (``main=``): the training backends
run :func:`repro.runtime.worker.actor_main`, the serving tier runs
:func:`repro.serving.replicas.replica_main` — same pool, same respawn
and setup-replay machinery, different message vocabulary.
"""

from __future__ import annotations

import multiprocessing
import threading
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.obs import trace as obs_trace
from repro.runtime.worker import (
    DEFAULT_STATE_BUDGET,
    MissingShardState,
    actor_main,
)


class _WorkerDied(Exception):
    """Internal: the actor process died or wedged mid-task."""


@dataclass
class _Msg:
    """One built message: payload, shm lifecycle, and mirror bookkeeping."""

    payload: Tuple
    #: ShipResults whose segments must live until the actor replies
    ships: List[Any] = field(default_factory=list)
    #: effective cache keys the actor will hold after running this
    produced: List[Tuple] = field(default_factory=list)
    shipped_bytes: int = 0
    mapped_bytes: int = 0

    def release(self) -> None:
        for ship in self.ships:
            ship.release()
        self.ships = []


class _Actor:
    """One worker process plus the parent's mirror of its state."""

    def __init__(
        self,
        index: int,
        ctx,
        state_budget_bytes: int,
        main: Callable = actor_main,
        name: str = "repro-actor",
    ):
        self.index = index
        self._ctx = ctx
        self._budget = state_budget_bytes
        self._main = main
        self._name = name
        #: serializes per-actor request/reply cycles issued via call()
        self.lock = threading.Lock()
        #: effective keys ((op key, start, stop)) the parent believes cached
        self.holds: Set[Tuple] = set()
        #: builders replayed after a respawn to rebuild staged state
        self.setup: List[Callable[["_Actor"], _Msg]] = []
        self.restarts = 0
        self.inflight: Optional[_Msg] = None
        self.proc = None
        self.conn = None
        self.spawn()

    def spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        self.proc = self._ctx.Process(
            target=self._main,
            args=(child_conn, self._budget),
            name=f"{self._name}-{self.index}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        self.holds.clear()

    def kill(self) -> None:
        if self.inflight is not None:
            self.inflight.release()
            self.inflight = None
        if self.conn is not None:
            self.conn.close()
            self.conn = None
        if self.proc is not None:
            if self.proc.is_alive():
                self.proc.terminate()
            self.proc.join(timeout=5.0)
            self.proc = None


class ActorPool:
    """A fixed-size pool of :class:`_Actor` workers (see module docs)."""

    def __init__(
        self,
        workers: int,
        *,
        start_method: str = "spawn",
        task_timeout: Optional[float] = None,
        max_restarts: int = 2,
        state_budget_bytes: int = DEFAULT_STATE_BUDGET,
        main: Callable = actor_main,
        name: str = "repro-actor",
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.task_timeout = task_timeout
        self.max_restarts = max_restarts
        self.counters: Dict[str, int] = {
            "restarts": 0,
            "hits": 0,
            "misses": 0,
            "shipped_bytes": 0,
            "mapped_bytes": 0,
        }
        ctx = multiprocessing.get_context(start_method)
        self.actors = [
            _Actor(i, ctx, state_budget_bytes, main=main, name=name)
            for i in range(workers)
        ]
        self._lock = threading.Lock()
        # call() runs concurrently across actors; counter increments in
        # _finish must not race (dict += is not atomic).
        self._counters_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Waves
    # ------------------------------------------------------------------
    def wave(
        self,
        tasks: Sequence[Tuple[int, Callable[[_Actor], _Msg]]],
        setup: bool = False,
    ) -> List[Tuple[Any, Dict]]:
        """Send one message per ``(actor index, builder)``, collect replies.

        Returns ``(result, meta)`` pairs in task order.  ``setup=True``
        registers each builder on its actor for replay after a respawn —
        use it for messages that create staged state later messages
        depend on (the "init" of an iterative fit).  Worker-side task
        errors re-raise in the parent; worker death and timeouts recover
        through bounded respawn, surfacing ``RuntimeError`` only once an
        actor exhausts ``max_restarts``.

        Holds the pool lock (one wave at a time) plus each involved
        actor's lock in index order, so a wave never interleaves with
        concurrent :meth:`call` traffic against the same actors.
        """
        with ExitStack() as stack:
            stack.enter_context(self._lock)
            for index in sorted({index for index, _ in tasks}):
                stack.enter_context(self.actors[index].lock)
            dispatched = []
            try:
                for index, builder in tasks:
                    actor = self.actors[index]
                    if setup:
                        actor.setup.append(builder)
                    try:
                        self._send(actor, builder)
                        sent = True
                    except _WorkerDied:
                        sent = False  # recovered at collect time
                    dispatched.append((actor, builder, sent))
            except BaseException:
                # A builder or the payload pickling failed mid-dispatch
                # (ship error): drain the actors already sent to, or the
                # next wave would read their stale replies.
                self._drain(dispatched)
                raise
            results = []
            try:
                for actor, builder, sent in dispatched:
                    if not sent:
                        self._recover(actor, builder)
                    results.append(self._collect(actor, builder))
            except BaseException:
                self._drain(dispatched[len(results) + 1 :])
                raise
            return results

    def _drain(self, dispatched) -> None:
        """Best-effort consume outstanding replies after a wave failure."""
        for actor, _builder, sent in dispatched:
            if actor.inflight is None:
                continue
            if not sent:  # send failed: no reply coming, just release shm
                actor.inflight.release()
                actor.inflight = None
                continue
            try:
                self._finish(actor, self._recv(actor))
            except Exception:
                pass

    def end_task(self, task_id: int, indices: Sequence[int]) -> None:
        """Drop staged state for ``task_id`` (best effort) and the
        actors' replayable setup — the task is over either way."""

        def end_builder(actor: _Actor) -> _Msg:
            return _Msg(("end", task_id))

        with self._lock:
            for index in indices:
                actor = self.actors[index]
                with actor.lock:
                    actor.setup = []
                    try:
                        self._send(actor, end_builder)
                        self._finish(actor, self._recv(actor))
                    except Exception:
                        pass

    # ------------------------------------------------------------------
    # Single-actor calls
    # ------------------------------------------------------------------
    def call(
        self,
        index: int,
        builder: Callable[[_Actor], _Msg],
        setup: bool = False,
    ) -> Tuple[Any, Dict]:
        """One request/reply against actor ``index``; concurrency-safe.

        Unlike :meth:`wave`, only the *target actor's* lock is held, so
        calls against different actors from different threads overlap —
        the dispatch model of the serving replica tier, where batch N
        runs on replica A while batch N+1 runs on replica B.  The
        fault story is wave's: death/wedge recovers through bounded
        respawn with setup replay (``setup=True`` messages — e.g. a
        replica's model loads — are re-sent to a respawned worker before
        the failed message retries once).
        """
        actor = self.actors[index]
        with actor.lock:
            if setup:
                actor.setup.append(builder)
            try:
                self._send(actor, builder)
            except _WorkerDied:
                self._recover(actor, builder)
            return self._collect(actor, builder)

    # ------------------------------------------------------------------
    # Send / receive / recovery
    # ------------------------------------------------------------------
    def _send(self, actor: _Actor, builder) -> None:
        msg = builder(actor)
        actor.inflight = msg
        try:
            actor.conn.send(msg.payload)
        except (BrokenPipeError, ConnectionError, OSError) as exc:
            raise _WorkerDied(str(exc)) from None

    def _recv(self, actor: _Actor) -> Tuple:
        try:
            if self.task_timeout is not None:
                if not actor.conn.poll(self.task_timeout):
                    raise _WorkerDied(f"task timed out after {self.task_timeout}s")
            return actor.conn.recv()
        except (EOFError, ConnectionError, OSError) as exc:
            raise _WorkerDied(str(exc)) from None

    def _finish(self, actor: _Actor, reply: Tuple) -> Tuple[Any, Dict]:
        msg, actor.inflight = actor.inflight, None
        with self._counters_lock:
            self.counters["shipped_bytes"] += msg.shipped_bytes
            self.counters["mapped_bytes"] += msg.mapped_bytes
        msg.release()
        expected = msg.payload[1] if len(msg.payload) > 1 else None
        if expected is not None and reply[1] != expected:
            # A reply for a message we gave up on: the pipe is out of
            # sync with the protocol; only a respawn makes it clean.
            raise _WorkerDied(
                f"protocol desync (reply for task {reply[1]}, expected {expected})"
            )
        if reply[0] == "err":
            raise reply[2]
        _, _, result, meta = reply
        actor.holds.update(msg.produced)
        actor.holds.difference_update(meta.get("evicted", ()))
        with self._counters_lock:
            self.counters["hits"] += meta.get("hits", 0)
            self.counters["misses"] += meta.get("misses", 0)
        return result, meta

    def _collect(self, actor: _Actor, builder) -> Tuple[Any, Dict]:
        try:
            return self._finish(actor, self._recv(actor))
        except _WorkerDied:
            self._recover(actor, builder)
        except MissingShardState:
            # The mirror drifted: clear it and retry with a full ship.
            actor.holds.clear()
            try:
                self._send(actor, builder)
            except _WorkerDied:
                self._recover(actor, builder)
        try:
            return self._finish(actor, self._recv(actor))
        except _WorkerDied as exc:
            actor.kill()
            raise RuntimeError(
                f"actor worker {actor.index} failed again after respawn: {exc}"
            ) from None

    def _recover(self, actor: _Actor, builder) -> None:
        """Respawn a dead/wedged actor, replay its setup, resend.

        Leaves the retried message in flight; the caller collects it.
        Raises ``RuntimeError`` when the actor is out of restarts or
        dies again while replaying.
        """
        with self._counters_lock:
            self.counters["restarts"] += 1
        actor.restarts += 1
        obs_trace.event(
            "worker_restart",
            cat="fault",
            args={"worker": actor.index, "restarts": actor.restarts},
        )
        if actor.restarts > self.max_restarts:
            actor.kill()
            raise RuntimeError(
                f"actor worker {actor.index} exceeded "
                f"max_restarts={self.max_restarts}; giving up"
            )
        actor.kill()
        actor.spawn()
        try:
            for setup_builder in actor.setup:
                if setup_builder is builder:
                    continue  # the failed message itself: resent below
                self._send(actor, setup_builder)
                self._finish(actor, self._recv(actor))
            self._send(actor, builder)
        except _WorkerDied as exc:
            actor.kill()
            raise RuntimeError(
                f"actor worker {actor.index} died again during recovery: {exc}"
            ) from None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        for actor in self.actors:
            try:
                if actor.conn is not None:
                    actor.conn.send(("shutdown",))
            except Exception:
                pass
        for actor in self.actors:
            actor.kill()

    def __repr__(self) -> str:
        return (
            f"ActorPool(workers={self.workers}, "
            f"task_timeout={self.task_timeout}, "
            f"max_restarts={self.max_restarts})"
        )


# ----------------------------------------------------------------------
# Shared pools
# ----------------------------------------------------------------------
#
# Cross-fit shard-state reuse only happens if the *same* workers serve
# both fits, so pools are shared per configuration across backend
# instances — exactly like the process backend's executor pools, plus
# the cache-persistence motivation.

_POOL_LOCK = threading.Lock()
_POOLS: Dict[Tuple, ActorPool] = {}


def shared_actor_pool(
    workers: int,
    *,
    start_method: str = "spawn",
    task_timeout: Optional[float] = None,
    max_restarts: int = 2,
    state_budget_bytes: int = DEFAULT_STATE_BUDGET,
) -> ActorPool:
    key = (start_method, workers, task_timeout, max_restarts, state_budget_bytes)
    with _POOL_LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            pool = ActorPool(
                workers,
                start_method=start_method,
                task_timeout=task_timeout,
                max_restarts=max_restarts,
                state_budget_bytes=state_budget_bytes,
            )
            _POOLS[key] = pool
        return pool


def shutdown_actor_pools() -> None:
    """Shut down every shared actor pool (tests, interpreter teardown)."""
    with _POOL_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()
