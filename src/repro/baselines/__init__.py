"""Simulated comparison systems (paper Section 5.2).

Offline stand-ins for the systems the paper compares against.  Each
reproduces the *trait* the paper attributes to the system, not its code:

- :class:`VowpalWabbitSolver` — a specialized linear learner with one fixed
  strategy (online SGD), regardless of input shape.
- :class:`SystemMLSolver` — an optimizing linear-algebra system that always
  runs the same algorithm (conjugate gradient) and must convert data into
  its internal format before solving.
- :mod:`repro.baselines.tensorflow_sim` — a minibatch-SGD system whose
  scaling is bounded by per-step model coordination (Table 6).
"""

from repro.baselines.vowpal import VowpalWabbitSolver
from repro.baselines.systemml import SystemMLSolver
from repro.baselines.tensorflow_sim import (
    TensorFlowSim,
    keystone_cifar_stages,
    keystone_cifar_time,
    tensorflow_cifar_time,
)

__all__ = [
    "SystemMLSolver",
    "TensorFlowSim",
    "VowpalWabbitSolver",
    "keystone_cifar_stages",
    "keystone_cifar_time",
    "tensorflow_cifar_time",
]
