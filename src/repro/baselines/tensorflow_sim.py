"""TensorFlow-style scaling simulation for the CIFAR comparison (Table 6).

The paper's Table 6 compares time-to-84%-accuracy on CIFAR-10 between
TensorFlow v0.8 (a CNN trained by synchronous minibatch SGD) and
KeystoneML (convolutional featurization + a communication-avoiding solver)
from 1 to 32 nodes.  The scaling shapes follow directly from the systems'
coordination models, which is what we simulate:

- **TensorFlow (strong scaling, fixed global batch)**: per-step compute
  shrinks as ``1/w`` but every step synchronizes the full model over the
  network; past a few nodes coordination dominates and total time grows.
- **TensorFlow (weak scaling, batch = 128 x w)**: per-step compute stays
  constant, steps-to-accuracy shrinks sub-linearly with batch size, and
  beyond a critical batch size SGD stops converging to the target accuracy
  (the paper's "xxx" entries).
- **KeystoneML**: featurization is embarrassingly parallel and the solver
  coordinates only ``O(log w)`` tree aggregations per pass, so total time
  keeps falling out to 32 nodes.

All constants are calibrated so the 1-node column is near the paper's
(~184 min TF, ~235 min KeystoneML) and are documented inline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.resources import ResourceDescriptor
from repro.cluster.simulator import ClusterSimulator, SimulatedStage
from repro.cost.profile import CostProfile

#: steps for the fixed-batch (128) CNN to reach 84% top-1 (paper-scale run)
_STEPS_TO_ACCURACY = 60_000
#: flops per example for forward+backward through the small CNN
_FLOPS_PER_EXAMPLE = 40e6
#: model size in bytes synchronized every step
_MODEL_BYTES = 7e6
#: per-step scheduling overhead, seconds
_STEP_OVERHEAD = 1e-3
#: largest global batch that still reaches 84% (weak scaling wall)
_MAX_CONVERGENT_BATCH = 1024


@dataclass
class TensorFlowSim:
    """Synchronous minibatch-SGD time-to-accuracy model."""

    resources: ResourceDescriptor
    base_batch: int = 128

    def _step_seconds(self, batch: int, workers: int) -> float:
        per_worker = batch / workers
        compute = per_worker * _FLOPS_PER_EXAMPLE / self.resources.cpu_flops
        # Synchronous parameter exchange: every step, each worker sends and
        # receives the model; the most loaded link carries it ~log2(w) hops.
        if workers > 1:
            sync = (_MODEL_BYTES / self.resources.network_bandwidth
                    * math.log2(workers) * 2.0)
        else:
            sync = 0.0
        return compute + sync + _STEP_OVERHEAD

    def _steps_needed(self, batch: int) -> Optional[int]:
        """Steps to the target accuracy, or None if SGD fails to converge.

        Larger batches reduce gradient variance only ~sqrt(batch), so
        steps shrink sub-linearly; beyond the critical batch the run never
        reaches the target (the paper's failed weak-scaling entries).
        """
        if batch > _MAX_CONVERGENT_BATCH:
            return None
        ratio = batch / self.base_batch
        return int(_STEPS_TO_ACCURACY / math.sqrt(ratio))

    def time_to_accuracy_minutes(self, workers: int,
                                 scaling: str = "strong") -> Optional[float]:
        if scaling == "strong":
            batch = self.base_batch
        elif scaling == "weak":
            batch = self.base_batch * workers
        else:
            raise ValueError(f"scaling must be strong|weak, got {scaling!r}")
        steps = self._steps_needed(batch)
        if steps is None:
            return None
        return steps * self._step_seconds(batch, workers) / 60.0


def tensorflow_cifar_time(workers: int, scaling: str,
                          resources: Optional[ResourceDescriptor] = None
                          ) -> Optional[float]:
    """Minutes to 84% accuracy for TensorFlow at the given cluster size."""
    res = (resources or ResourceDescriptor(
        cpu_flops=85e9, network_bandwidth=1.25e9)).with_nodes(workers)
    return TensorFlowSim(res).time_to_accuracy_minutes(workers, scaling)


# -- KeystoneML side ----------------------------------------------------

#: CIFAR training examples (paper augments to 500k)
_N_EXAMPLES = 500_000
#: flops per example for convolutional featurization
_FEATURIZE_FLOPS = 1.2e9
#: featurized dimensionality and classes for the solve
_SOLVE_D, _SOLVE_K = 135_168 // 32, 10  # block-partitioned features
#: solver passes
_SOLVE_PASSES = 12


def keystone_cifar_stages() -> List[SimulatedStage]:
    """Pipeline stages for the KeystoneML CIFAR run, for ClusterSimulator."""

    def featurize(w: int) -> CostProfile:
        return CostProfile(flops=_N_EXAMPLES * _FEATURIZE_FLOPS / w,
                           bytes=_N_EXAMPLES * 3072.0 * 8 / w,
                           network=0.0)

    def solve(w: int) -> CostProfile:
        tree = max(math.log2(w), 1.0) if w > 1 else 1.0
        flops = 4.0 * _SOLVE_PASSES * _N_EXAMPLES * _SOLVE_D * _SOLVE_K / w
        network = 8.0 * _SOLVE_PASSES * _SOLVE_D * _SOLVE_K * tree
        return CostProfile(flops=flops,
                           bytes=8.0 * _N_EXAMPLES * _SOLVE_D / w,
                           network=network)

    return [SimulatedStage("featurize", featurize, "Featurization"),
            SimulatedStage("solve", solve, "Model Solve")]


def keystone_cifar_time(workers: int,
                        resources: Optional[ResourceDescriptor] = None
                        ) -> float:
    """Minutes for the KeystoneML CIFAR pipeline at the given size."""
    res = (resources or ResourceDescriptor(
        cpu_flops=85e9, network_bandwidth=1.25e9,
        memory_bandwidth=25e9)).with_nodes(workers)
    sim = ClusterSimulator(res, overhead_per_stage=30.0)
    return sim.total_seconds(keystone_cifar_stages()) / 60.0
