"""SystemML-style baseline: fixed algorithm + input conversion.

SystemML optimizes the *implementation* of linear-algebra operators for a
chosen algorithm (here: conjugate gradient on the normal equations) but
does not choose among logically equivalent algorithms, and requires a
conversion step to move pipeline output into its internal binary-block
matrix format (the overhead the paper observes when feature extraction
cannot be pipelined into the solver).
"""

from __future__ import annotations


import numpy as np
import scipy.sparse as sp

from repro.core.operators import Iterative, LabelEstimator
from repro.dataset.dataset import Dataset
from repro.nodes.learning._util import feature_dim, iter_xy_blocks, label_dim
from repro.nodes.learning.linear import LinearMapper


class SystemMLSolver(LabelEstimator, Iterative):
    """Conjugate gradient on ``(A^T A + l2 I) X = A^T B``.

    ``convert_input`` reproduces the format-conversion stage: the feature
    dataset is materialized and re-blocked before any solving happens.
    """

    def __init__(self, max_iter: int = 10, l2_reg: float = 1e-6,
                 block_rows: int = 1000, convert_input: bool = True):
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.max_iter = max_iter
        self.l2_reg = l2_reg
        self.block_rows = block_rows
        self.convert_input = convert_input
        self.weight = max_iter + 1

    def _convert(self, data: Dataset, labels: Dataset) -> Dataset:
        """Materialize and re-block into the "internal format".

        The converted representation stays a distributed dataset (SystemML's
        binary-block matrices are RDDs); each CG iteration re-scans it, just
        as each KeystoneML solver pass re-scans its input.
        """
        converted = []
        for a, b in iter_xy_blocks(data, labels, prefer_sparse=True):
            n = b.shape[0]
            for lo in range(0, n, self.block_rows):
                hi = min(lo + self.block_rows, n)
                block = a[lo:hi]
                # Binary-block conversion: reindex + copy.
                block = block.copy() if sp.issparse(block) \
                    else np.array(block, copy=True)
                converted.append((block, np.array(b[lo:hi], copy=True)))
        return data.ctx.parallelize(converted,
                                    max(data.num_partitions, 1))

    def _iter_converted(self, blocks: Dataset):
        for i in range(blocks.num_partitions):
            for pair in blocks.partition(i):
                yield pair

    def fit(self, data: Dataset, labels: Dataset) -> LinearMapper:
        d = feature_dim(data)
        k = label_dim(labels)
        if self.convert_input:
            blocks = self._convert(data, labels)

            def scan():
                return self._iter_converted(blocks)
        else:
            def scan():
                return iter_xy_blocks(data, labels, prefer_sparse=True)

        def normal_matvec(x: np.ndarray) -> np.ndarray:
            out = np.zeros_like(x)
            for a, _b in scan():
                out += np.asarray(a.T @ np.asarray(a @ x))
            return out + self.l2_reg * x

        rhs = np.zeros((d, k))
        for a, b in scan():
            rhs += np.asarray(a.T @ b)

        x = np.zeros((d, k))
        r = rhs - normal_matvec(x)
        p = r.copy()
        rs_old = float(np.sum(r * r))
        for _ in range(self.max_iter):
            if rs_old < 1e-20:
                break
            ap = normal_matvec(p)
            alpha = rs_old / max(float(np.sum(p * ap)), 1e-300)
            x += alpha * p
            r -= alpha * ap
            rs_new = float(np.sum(r * r))
            p = r + (rs_new / rs_old) * p
            rs_old = rs_new
        return LinearMapper(x)
