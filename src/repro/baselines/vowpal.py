"""Vowpal-Wabbit-style baseline: online SGD, one strategy for everything.

VW is a highly tuned specialized system for linear models; its defining
trait for the paper's comparison (Figure 8) is that it runs the same
online-gradient strategy regardless of problem shape, whereas KeystoneML's
optimizing solver switches algorithms.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.operators import Iterative, LabelEstimator
from repro.dataset.dataset import Dataset
from repro.nodes.learning._util import feature_dim, iter_xy_blocks, label_dim
from repro.nodes.learning.linear import LinearMapper


class VowpalWabbitSolver(LabelEstimator, Iterative):
    """Per-example adaptive-learning-rate SGD over several passes."""

    def __init__(self, passes: int = 10, learning_rate: float = 0.5,
                 power_t: float = 0.5, l2_reg: float = 1e-8):
        if passes < 1:
            raise ValueError(f"passes must be >= 1, got {passes}")
        self.passes = passes
        self.learning_rate = learning_rate
        self.power_t = power_t
        self.l2_reg = l2_reg
        self.weight = passes

    def fit(self, data: Dataset, labels: Dataset) -> LinearMapper:
        d = feature_dim(data)
        k = label_dim(labels)
        x = np.zeros((d, k))
        t = 0
        for _pass in range(self.passes):
            for a, b in iter_xy_blocks(data, labels, prefer_sparse=True):
                n_rows = b.shape[0]
                # Small fixed minibatches keep per-example semantics while
                # letting sparse algebra run in C.
                step_rows = 8
                for lo in range(0, n_rows, step_rows):
                    hi = min(lo + step_rows, n_rows)
                    t += hi - lo
                    eta = self.learning_rate / (1 + t) ** self.power_t
                    a_batch = a[lo:hi]
                    resid = np.asarray(a_batch @ x) - b[lo:hi]
                    grad = (2.0 * np.asarray(a_batch.T @ resid) / (hi - lo)
                            + 2.0 * self.l2_reg * x)
                    x -= eta * grad
        return LinearMapper(x)
