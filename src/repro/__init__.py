"""repro — a Python reproduction of KeystoneML (ICDE 2017).

KeystoneML captures end-to-end machine-learning pipelines as DAGs of
high-level logical operators and optimizes them at two levels: per-operator
(cost-based physical operator selection) and whole-pipeline (common
sub-expression elimination and automatic materialization of reused
intermediates under a memory budget).

Quickstart::

    from repro import Context, Pipeline
    from repro.nodes.text import LowerCase, Tokenizer, NGramsFeaturizer, \
        TermFrequency, CommonSparseFeatures
    from repro.nodes.learning import LinearSolver

    ctx = Context()
    data = ctx.parallelize(texts)
    labels = ctx.parallelize(one_hot_labels)

    pipe = (LowerCase().and_then(Tokenizer())
            .and_then(NGramsFeaturizer(1, 2))
            .and_then(TermFrequency())
            .and_then(CommonSparseFeatures(10_000), data)
            .and_then(LinearSolver(), data, labels))
    model = pipe.fit()
    predictions = model.apply_dataset(ctx.parallelize(test_texts))
"""

from repro.cluster import ResourceDescriptor
from repro.core import (
    Estimator,
    FittedPipeline,
    LabelEstimator,
    Pipeline,
    Transformer,
)
from repro.cost import CostModel, CostProfile
from repro.dataset import Context, Dataset

__version__ = "1.0.0"

__all__ = [
    "Context",
    "CostModel",
    "CostProfile",
    "Dataset",
    "Estimator",
    "FittedPipeline",
    "LabelEstimator",
    "Pipeline",
    "ResourceDescriptor",
    "Transformer",
    "__version__",
]
