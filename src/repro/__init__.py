"""repro — a Python reproduction of KeystoneML (ICDE 2017).

KeystoneML captures end-to-end machine-learning pipelines as DAGs of
high-level logical operators and optimizes them at two levels: per-operator
(cost-based physical operator selection) and whole-pipeline (common
sub-expression elimination and automatic materialization of reused
intermediates under a memory budget).

The optimizer is a composable pass pipeline.  ``Optimizer.optimize``
returns a ``PhysicalPlan`` you can inspect — which sub-expressions merged,
which physical operators were selected, what gets cached, the modelled
runtime — before any training runs:

Quickstart::

    from repro import Context, Optimizer, Pipeline
    from repro.nodes.text import LowerCase, Tokenizer, NGramsFeaturizer, \
        TermFrequency, CommonSparseFeatures
    from repro.nodes.learning import LinearSolver

    ctx = Context()
    data = ctx.parallelize(texts)
    labels = ctx.parallelize(one_hot_labels)

    pipe = (LowerCase().and_then(Tokenizer())
            .and_then(NGramsFeaturizer(1, 2))
            .and_then(TermFrequency())
            .and_then(CommonSparseFeatures(10_000), data)
            .and_then(LinearSolver(), data, labels))

    plan = Optimizer().optimize(pipe)       # full optimization stack
    print(plan.explain())                   # passes, selections, cache set
    model = plan.execute()
    predictions = model.apply_dataset(ctx.parallelize(test_texts))

Custom pass lists plug in without touching core modules::

    from repro import CSEPass, MaterializationPass, OperatorSelectionPass

    opt = Optimizer([CSEPass(), MyRewritePass(),
                     OperatorSelectionPass((128, 256)),
                     MaterializationPass(mem_budget_bytes=2e9)])

The classic one-call path still works: ``model = pipe.fit()`` (optionally
``level="none" | "pipe" | "full"``) is a shim over the same passes.

Execution is pluggable: the same plan trains serially
(``LocalBackend``), with independent branches overlapped on threads
(``PipelinedBackend``), priced per-shard on a simulated cluster
(``ShardedBackend``), or actually sharded across worker processes
(``ProcessPoolBackend``)::

    model = plan.execute(backend="pipelined")
    fitted = pipe.fit(backend=ShardedBackend(workers=8))
    fitted = pipe.fit(backend=ProcessPoolBackend(workers=4))

Trained pipelines serve online traffic through :mod:`repro.serving`:
``ModelServer`` compiles each registered model into a flat
``InferencePlan``, micro-batches concurrent requests, and memoizes the
intermediates the optimizer's cost model deems worth their bytes::

    server = ModelServer(max_batch=64, cache_budget_bytes=256e6)
    with server:
        server.register("reviews", model, warmup_items=sample_docs)
        label = server.predict("reviews", "great product")
        print(server.stats().describe())
"""

from repro.cluster import ResourceDescriptor
from repro.core import (
    CSEPass,
    Estimator,
    ExecutionBackend,
    FittedPipeline,
    FusionPass,
    LabelEstimator,
    LocalBackend,
    LoweringPass,
    MaterializationPass,
    OperatorSelectionPass,
    Optimizer,
    OpProgram,
    Pass,
    PhysicalPlan,
    ProgramPass,
    Pipeline,
    PipelinedBackend,
    ProcessPoolBackend,
    ProfilingPass,
    ShardedBackend,
    ShardingPass,
    Transformer,
)
from repro.cost import CostModel, CostProfile
from repro.dataset import Context, Dataset
from repro.serving import InferencePlan, ModelServer, compile_inference_plan

__version__ = "1.2.0"

__all__ = [
    "Context",
    "CostModel",
    "CostProfile",
    "CSEPass",
    "Dataset",
    "Estimator",
    "ExecutionBackend",
    "FittedPipeline",
    "FusionPass",
    "InferencePlan",
    "LabelEstimator",
    "LocalBackend",
    "LoweringPass",
    "MaterializationPass",
    "ModelServer",
    "OperatorSelectionPass",
    "Optimizer",
    "OpProgram",
    "Pass",
    "PhysicalPlan",
    "ProgramPass",
    "Pipeline",
    "PipelinedBackend",
    "ProcessPoolBackend",
    "ProfilingPass",
    "ResourceDescriptor",
    "ShardedBackend",
    "ShardingPass",
    "Transformer",
    "__version__",
    "compile_inference_plan",
]
