"""Cluster simulator: prices cost profiles at arbitrary cluster sizes.

The scaling experiments (paper Figure 12, Table 6) sweep cluster size from 8
to 128 nodes.  We cannot run a cluster, but the paper's own cost model (Eq. 1)
already expresses stage time as a function of the resource descriptor — the
simulator evaluates exactly that function per stage, adding a fixed per-stage
task-scheduling overhead so that tiny stages do not scale superlinearly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.resources import ResourceDescriptor
from repro.cost.model import execution_seconds
from repro.cost.profile import CostProfile


@dataclass
class SimulatedStage:
    """One pipeline stage for simulation.

    ``profile_fn`` maps the number of workers to the critical-path
    :class:`CostProfile` of that stage — e.g. featurization flops shrink as
    ``1/w`` while a solver's network term grows with ``log w``.
    """

    name: str
    profile_fn: Callable[[int], CostProfile]
    #: stage category used by the breakdown plots (e.g. "Featurization")
    category: str = "Other"


@dataclass
class StageTiming:
    name: str
    category: str
    seconds: float


class ClusterSimulator:
    """Evaluates a pipeline of :class:`SimulatedStage` on a cluster.

    ``overhead_per_stage`` models task launch / scheduling latency (Spark's
    per-job fixed cost); it bounds strong-scaling speedup the same way real
    clusters do.
    """

    def __init__(self, resources: ResourceDescriptor,
                 overhead_per_stage: float = 2.0):
        self.resources = resources
        self.overhead_per_stage = overhead_per_stage
        # Last priced (stage list, resources, overhead) and its timings.
        # profile_fns must be pure (they price a fixed descriptor), so
        # ``total_seconds`` + ``breakdown`` on the same stages evaluate
        # each profile_fn once instead of once per call.  Keyed by stage
        # identity plus the pricing attributes, which are re-checked in
        # case a caller mutates them between calls.
        self._last: Optional[Tuple[List[SimulatedStage], ResourceDescriptor,
                                   float, List[StageTiming]]] = None

    def time_stage(self, stage: SimulatedStage) -> float:
        profile = stage.profile_fn(self.resources.num_nodes)
        return (execution_seconds(profile, self.resources)
                + self.overhead_per_stage)

    def run(self, stages: List[SimulatedStage]) -> List[StageTiming]:
        """Price every stage; repeated calls on the same list are cached.

        Returns fresh :class:`StageTiming` copies so caller mutation
        cannot corrupt the memo.
        """
        stages = list(stages)
        if self._last is not None:
            last_stages, resources, overhead, timings = self._last
            if (resources == self.resources
                    and overhead == self.overhead_per_stage
                    and len(last_stages) == len(stages)
                    and all(a is b for a, b in zip(last_stages, stages))):
                return [replace(t) for t in timings]
        timings = [StageTiming(s.name, s.category, self.time_stage(s))
                   for s in stages]
        self._last = (stages, self.resources, self.overhead_per_stage,
                      timings)
        return [replace(t) for t in timings]

    def total_seconds(self, stages: List[SimulatedStage]) -> float:
        return sum(t.seconds for t in self.run(stages))

    def breakdown(self, stages: List[SimulatedStage]) -> Dict[str, float]:
        """Total seconds per stage category (the Figure 12 bars)."""
        out: Dict[str, float] = {}
        for t in self.run(stages):
            out[t.category] = out.get(t.category, 0.0) + t.seconds
        return out


def amortized_profile(profile: CostProfile, passes: int) -> CostProfile:
    """Per-pass cost of a stage on a *persistent-worker* runtime.

    A stateless runtime re-pays a stage's data movement on every pass of
    an iterative workload (each pass re-ships the shard and relaunches
    its tasks); persistent workers (:mod:`repro.runtime`) ship once and
    keep the shard resident, so over ``passes`` passes the network and
    task-launch terms amortize to ``1/passes`` of their stateless cost
    while compute is still paid in full every pass.
    """
    if passes <= 1:
        return profile
    return CostProfile(flops=profile.flops, bytes=profile.bytes,
                       network=profile.network / passes,
                       tasks=profile.tasks / passes)


def scaling_sweep(stages: List[SimulatedStage],
                  base: ResourceDescriptor,
                  node_counts: List[int],
                  overhead_per_stage: float = 2.0) -> Dict[int, Dict[str, float]]:
    """Run the same pipeline at several cluster sizes.

    Returns ``{nodes: {category: seconds}}`` — the data behind Figure 12.
    """
    results: Dict[int, Dict[str, float]] = {}
    for w in node_counts:
        sim = ClusterSimulator(base.with_nodes(w), overhead_per_stage)
        results[w] = sim.breakdown(stages)
    return results
