"""Local microbenchmarks used to build a resource descriptor.

The paper collects the cluster descriptor "via configuration data and
microbenchmarks".  This module measures the two quantities the cost model is
most sensitive to on the actual interpreter: dense-matmul GFLOP/s and memory
copy bandwidth.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cluster.resources import ResourceDescriptor


def _time_best(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_cpu_flops(n: int = 512, repeats: int = 3) -> float:
    """Measure effective FLOP/s with an ``n x n`` dense matmul."""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    elapsed = _time_best(lambda: a @ b, repeats)
    return 2.0 * n ** 3 / max(elapsed, 1e-9)


def measure_memory_bandwidth(size_mb: int = 64, repeats: int = 3) -> float:
    """Measure memory bandwidth (bytes/s) with a large array copy."""
    n = size_mb * 1024 * 1024 // 8
    src = np.zeros(n)
    dst = np.empty_like(src)
    elapsed = _time_best(lambda: np.copyto(dst, src), repeats)
    # A copy reads and writes each byte once.
    return 2.0 * src.nbytes / max(elapsed, 1e-9)


def measure_task_overhead(rows: int = 1000, partitions: int = 4,
                          repeats: int = 3) -> float:
    """Measure the fixed cost of one pass over a row dataset (seconds).

    Iterative solvers pay this per pass: partition dispatch, row iteration
    and block stacking.  Measured with sparse rows, the common case for the
    pass-heavy solvers.
    """
    import scipy.sparse as sp

    from repro.dataset.context import Context
    from repro.nodes.learning._util import iter_blocks

    ctx = Context()
    row = sp.csr_matrix(([1.0] * 10, ([0] * 10, list(range(10)))),
                        shape=(1, 100))
    data = ctx.parallelize([row] * rows, partitions)

    def one_pass():
        for _block in iter_blocks(data, prefer_sparse=True):
            pass

    one_pass()  # warm up
    return _time_best(one_pass, repeats)


def microbenchmark(matmul_n: int = 512, copy_mb: int = 64,
                   scan_rows: int = 1000) -> ResourceDescriptor:
    """Build a single-node resource descriptor by measuring this machine."""
    flops = measure_cpu_flops(matmul_n)
    bandwidth = measure_memory_bandwidth(copy_mb)
    overhead = measure_task_overhead(scan_rows)
    return ResourceDescriptor(
        num_nodes=1, cores_per_node=1, cpu_flops=flops,
        memory_bytes=4e9, memory_bandwidth=bandwidth,
        disk_bandwidth=0.5e9, network_bandwidth=float("inf"),
        task_overhead=overhead, name="microbenchmarked-local")
