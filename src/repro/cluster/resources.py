"""Cluster resource descriptors (paper Section 3).

A :class:`ResourceDescriptor` captures what the cost model needs about the
execution environment: node count and per-node compute, memory size and
bandwidths.  Canned profiles approximate the paper's hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ResourceDescriptor:
    """Per-node capabilities plus cluster size.

    Units: ``cpu_flops`` in FLOP/s, bandwidths in bytes/s, ``memory_bytes``
    in bytes.  ``network_bandwidth`` is the speed of the most loaded link,
    matching the paper's critical-path network cost convention.
    """

    num_nodes: int = 1
    cores_per_node: int = 8
    cpu_flops: float = 50e9
    memory_bytes: float = 122e9
    memory_bandwidth: float = 20e9
    disk_bandwidth: float = 0.5e9
    network_bandwidth: float = 1.25e9  # 10 Gb/s
    #: seconds per distributed pass / task launch (scheduler overhead)
    task_overhead: float = 0.0
    name: str = "generic"

    def with_nodes(self, num_nodes: int) -> "ResourceDescriptor":
        """Same machines, different cluster size (for scaling sweeps)."""
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        return replace(self, num_nodes=num_nodes,
                       name=f"{self.name} x{num_nodes}")

    @property
    def total_memory_bytes(self) -> float:
        return self.memory_bytes * self.num_nodes

    @property
    def total_cores(self) -> int:
        return self.cores_per_node * self.num_nodes


def r3_4xlarge(num_nodes: int = 16) -> ResourceDescriptor:
    """The paper's evaluation machines: 8 physical cores, 122 GB RAM, SSD."""
    return ResourceDescriptor(
        num_nodes=num_nodes, cores_per_node=8, cpu_flops=85e9,
        memory_bytes=122e9, memory_bandwidth=25e9, disk_bandwidth=0.4e9,
        network_bandwidth=1.25e9, task_overhead=0.1, name="r3.4xlarge")


def c3_4xlarge(num_nodes: int = 16) -> ResourceDescriptor:
    """Compute-optimized nodes used in the Figure 6 solver experiments."""
    return ResourceDescriptor(
        num_nodes=num_nodes, cores_per_node=8, cpu_flops=110e9,
        memory_bytes=30e9, memory_bandwidth=25e9, disk_bandwidth=0.3e9,
        network_bandwidth=1.25e9, task_overhead=0.1, name="c3.4xlarge")


def blue_gene_q(num_nodes: int = 256) -> ResourceDescriptor:
    """Approximation of the IBM BlueGene machine from the TIMIT comparison."""
    return ResourceDescriptor(
        num_nodes=num_nodes, cores_per_node=16, cpu_flops=200e9,
        memory_bytes=16e9, memory_bandwidth=40e9, disk_bandwidth=1e9,
        network_bandwidth=2.5e9, task_overhead=0.02, name="BlueGene/Q")


def local_machine(cpu_flops: float = 5e9, memory_bandwidth: float = 10e9,
                  memory_bytes: float = 8e9,
                  task_overhead: float = 5e-3) -> ResourceDescriptor:
    """A single-node descriptor for in-process experiments.

    Defaults are deliberately conservative; run
    :func:`repro.cluster.microbench.microbenchmark` to measure the real
    machine instead.
    """
    return ResourceDescriptor(
        num_nodes=1, cores_per_node=1, cpu_flops=cpu_flops,
        memory_bytes=memory_bytes, memory_bandwidth=memory_bandwidth,
        disk_bandwidth=0.5e9, network_bandwidth=float("inf"),
        task_overhead=task_overhead, name="local")
