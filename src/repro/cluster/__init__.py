"""Cluster resource descriptors, microbenchmarks and the cluster simulator.

The paper collects a *cluster resource descriptor* via configuration data and
microbenchmarks (per-node GFLOP/s, memory/disk bandwidth, network speed, node
count).  We provide canned profiles for the paper's hardware and a local
microbenchmark for the actual machine, plus a :class:`ClusterSimulator` that
prices :class:`~repro.cost.CostProfile` sequences at different cluster sizes
— the substitute for the paper's 8–128-node EC2 runs.
"""

from repro.cluster.resources import (
    ResourceDescriptor,
    blue_gene_q,
    c3_4xlarge,
    local_machine,
    r3_4xlarge,
)
from repro.cluster.microbench import microbenchmark
from repro.cluster.simulator import ClusterSimulator, SimulatedStage

__all__ = [
    "ClusterSimulator",
    "ResourceDescriptor",
    "SimulatedStage",
    "blue_gene_q",
    "c3_4xlarge",
    "local_machine",
    "microbenchmark",
    "r3_4xlarge",
]
