"""Data loading and pipeline persistence.

KeystoneML pipelines read training data from distributed storage and the
fitted pipelines are deployed as services; the in-process equivalents are
plain-file loaders into :class:`~repro.dataset.Dataset` and
pickle-based save/load of :class:`~repro.core.pipeline.FittedPipeline`.

Fitted pipelines contain only transformers (numpy arrays, vocabularies),
all picklable; unfitted pipelines hold dataset references and are not
serialized.
"""

from __future__ import annotations

import csv
import io
import pickle
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.core.pipeline import FittedPipeline
from repro.dataset.context import Context
from repro.dataset.dataset import Dataset

PathLike = Union[str, Path]


def read_text(ctx: Context, path: PathLike,
              num_partitions: Optional[int] = None) -> Dataset:
    """Load a text file as a dataset of lines (newline stripped)."""
    with open(path, "r", encoding="utf-8") as f:
        lines = [line.rstrip("\n") for line in f]
    return ctx.parallelize(lines, num_partitions or ctx.default_partitions)


def write_text(data: Dataset, path: PathLike) -> int:
    """Write one item per line (str()-converted); returns line count."""
    rows = data.collect()
    with open(path, "w", encoding="utf-8") as f:
        for row in rows:
            f.write(f"{row}\n")
    return len(rows)


def read_csv_vectors(ctx: Context, path: PathLike,
                     label_column: Optional[int] = None,
                     num_partitions: Optional[int] = None,
                     skip_header: bool = False):
    """Load numeric CSV rows as vectors, optionally splitting a label column.

    Returns ``dataset`` or ``(dataset, labels)`` when ``label_column`` is
    given.  Non-numeric cells raise ``ValueError`` with the row number.
    """
    vectors: List[np.ndarray] = []
    labels: List[float] = []
    with open(path, "r", encoding="utf-8", newline="") as f:
        reader = csv.reader(f)
        for row_num, row in enumerate(reader):
            if skip_header and row_num == 0:
                continue
            if not row:
                continue
            try:
                values = [float(cell) for cell in row]
            except ValueError as exc:
                raise ValueError(f"{path}:{row_num + 1}: non-numeric cell "
                                 f"({exc})") from exc
            if label_column is not None:
                labels.append(values.pop(label_column))
            vectors.append(np.asarray(values))
    parts = num_partitions or ctx.default_partitions
    data = ctx.parallelize(vectors, parts)
    if label_column is None:
        return data
    return data, ctx.parallelize(labels, parts)


def save_pipeline(pipeline: FittedPipeline, path: PathLike,
                  fit_store=None) -> None:
    """Persist a fitted pipeline with pickle.

    The training report (which may reference profiling state) is dropped;
    what is saved is exactly the inference graph.

    ``fit_store`` additionally persists a
    :class:`~repro.incremental.FitStore` next to the pipeline (at
    :func:`fit_store_path`), so a later process can
    :func:`load_fit_store` and warm-retrain a modified pipeline against
    the state this one trained — see :mod:`repro.incremental`.
    """
    if not isinstance(pipeline, FittedPipeline):
        raise TypeError("only fitted pipelines are serializable; call "
                        ".fit() first")
    # program_passes travel with the pipeline: registered lowering
    # rewrites must keep applying after a save/load round-trip.
    stripped = FittedPipeline(pipeline.input_node, pipeline.sink,
                              training_report=None,
                              program_passes=pipeline.program_passes)
    with open(path, "wb") as f:
        pickle.dump(stripped, f)
    if fit_store is not None:
        fit_store.save(fit_store_path(path))


def load_pipeline(path: PathLike) -> FittedPipeline:
    """Load a pipeline saved by :func:`save_pipeline`."""
    with open(path, "rb") as f:
        loaded = pickle.load(f)
    if not isinstance(loaded, FittedPipeline):
        raise TypeError(f"{path} does not contain a FittedPipeline "
                        f"(got {type(loaded).__name__})")
    return loaded


def fit_store_path(path: PathLike) -> Path:
    """Where :func:`save_pipeline` puts the FitStore for pipeline ``path``."""
    return Path(f"{path}.fitstore")


def load_fit_store(path: PathLike, budget_bytes=None):
    """Load the FitStore saved next to the pipeline at ``path``.

    ``path`` is the *pipeline* path handed to :func:`save_pipeline`; the
    store is read from :func:`fit_store_path`.  A missing, truncated or
    garbage store file yields an **empty** store — refits against it go
    cold instead of crashing or splicing stale state
    (:meth:`repro.incremental.FitStore.load`).  ``budget_bytes``
    overrides the saved byte budget.
    """
    from repro.incremental import FitStore

    return FitStore.load(fit_store_path(path), budget_bytes=budget_bytes)
