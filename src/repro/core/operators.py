"""Logical operator types: Transformer, Estimator, and optimization mixins.

These mirror the paper's Figure 3 API:

- :class:`Transformer` — a deterministic, side-effect-free unary function,
  applicable to single items or whole datasets.
- :class:`Estimator` / :class:`LabelEstimator` — functions from data(+labels)
  to a fitted :class:`Transformer`.
- :class:`Optimizable` — a *logical* operator with several physical
  implementations, each priced by a :class:`~repro.cost.CostModel`.
- :class:`Iterative` — marker carrying ``weight``, the number of passes the
  operator makes over its input (drives the materialization cost model).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Tuple

from repro.cost.model import CostModel, estimate_cost

if TYPE_CHECKING:
    from repro.cluster.resources import ResourceDescriptor
    from repro.core.stats import DataStats
    from repro.dataset.dataset import Dataset


class Transformer:
    """Deterministic item-level function; maps datasets element-wise.

    Subclasses implement :meth:`apply`.  Bulk application defaults to a
    per-element map; operators with a faster batched path (BLAS over a whole
    partition) override :meth:`apply_partition`.
    """

    #: passes over the input per execution (1 for ordinary transformers)
    weight: int = 1

    def apply(self, item: Any) -> Any:
        raise NotImplementedError

    def apply_partition(self, items: List[Any]) -> List[Any]:
        return [self.apply(x) for x in items]

    def apply_dataset(self, data: "Dataset") -> "Dataset":
        return data.map_partitions(self.apply_partition,
                                   name=type(self).__name__)

    def __call__(self, item: Any) -> Any:
        return self.apply(item)

    # -- pipeline sugar -------------------------------------------------
    def and_then(self, nxt, data=None, labels=None):
        """Chain into a :class:`~repro.core.pipeline.Pipeline`."""
        from repro.core.pipeline import Pipeline

        return Pipeline.from_transformer(self).and_then(nxt, data, labels)

    def to_pipeline(self):
        from repro.core.pipeline import Pipeline

        return Pipeline.from_transformer(self)


class Estimator:
    """Unsupervised operator: fit(data) -> Transformer."""

    weight: int = 1

    def fit(self, data: "Dataset") -> Transformer:
        raise NotImplementedError


class LabelEstimator:
    """Supervised operator: fit(data, labels) -> Transformer."""

    weight: int = 1

    def fit(self, data: "Dataset", labels: "Dataset") -> Transformer:
        raise NotImplementedError


class Optimizable:
    """Mixin for logical operators with multiple physical implementations.

    ``options`` returns ``(cost_model, physical_operator)`` pairs; the
    default :meth:`optimize` picks the feasible option with the lowest
    estimated cost, mirroring the paper's per-operator optimizer.
    """

    def options(self) -> Sequence[Tuple[CostModel, Any]]:
        raise NotImplementedError

    def optimize(self, stats: "DataStats",
                 resources: "ResourceDescriptor") -> Any:
        best: Optional[Any] = None
        best_cost = float("inf")
        for model, op in self.options():
            if not model.feasible(stats, resources):
                continue
            cost = estimate_cost(model, stats, resources)
            if cost < best_cost:
                best, best_cost = op, cost
        if best is None:
            raise RuntimeError(
                f"{type(self).__name__}: no feasible physical operator "
                f"for stats {stats}")
        return best

    def cost_table(self, stats: "DataStats",
                   resources: "ResourceDescriptor") -> List[Tuple[str, float]]:
        """Per-option estimated costs (for debugging and the benches)."""
        out = []
        for model, _op in self.options():
            cost = (estimate_cost(model, stats, resources)
                    if model.feasible(stats, resources) else float("inf"))
            out.append((model.name, cost))
        return out


class Iterative:
    """Marker: the operator makes ``weight`` passes over its input."""

    weight: int = 1


class ShardableEstimator:
    """Protocol marker: fit decomposes into per-partition statistics.

    Estimators whose training reduces partition-wise sufficient
    statistics (frequency counters, moment sums, Gram matrices, local QR
    factors) implement two methods, and
    :class:`~repro.core.backends.process.ProcessPoolBackend` then computes
    the statistics inside worker processes and merges them in the parent
    instead of gathering the featurized rows:

    - ``partition_stats(rows)`` (estimators) or
      ``partition_stats(rows, label_rows)`` (label estimators) — the
      statistic of one partition's rows, or ``None`` for partitions the
      serial fit would skip (e.g. empty ones).  Must be picklable.
    - ``fit_from_stats(partials)`` — one partial per partition, in
      partition order, merged into the fitted :class:`Transformer`.

    Byte-identity contract: ``fit(data)`` must itself route through the
    same two methods, so the merged result is bit-for-bit the serial one
    by construction — implementations must preserve the serial reduction
    order (use :func:`repro.dataset.dataset.tree_combine` for
    tree-aggregated statistics, left-to-right accumulation otherwise).
    """

    def partition_stats(self, rows, label_rows=None):
        raise NotImplementedError

    def fit_from_stats(self, partials: List[Any]) -> Transformer:
        raise NotImplementedError


class IdentityTransformer(Transformer):
    """Passes items through unchanged; useful as a pipeline seed."""

    def apply(self, item: Any) -> Any:
        return item


class FunctionTransformer(Transformer):
    """Wraps a plain function as a Transformer.

    ``name`` is used in DAG labels; the function must be deterministic and
    side-effect-free, as required by the execution model.
    """

    def __init__(self, fn, name: str = ""):
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "fn")

    def apply(self, item: Any) -> Any:
        return self.fn(item)

    def __getstate__(self):
        # Lambdas are common here; pack the function so the transformer
        # survives pickling (process backend, model persistence).
        from repro.core.serde import pack_callable

        state = self.__dict__.copy()
        state["fn"] = pack_callable(self.fn)
        return state

    def __setstate__(self, state):
        from repro.core.serde import unpack_callable

        state["fn"] = unpack_callable(state["fn"])
        self.__dict__.update(state)

    def __repr__(self) -> str:
        return f"FunctionTransformer({self.name})"
