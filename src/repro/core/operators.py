"""Logical operator types: Transformer, Estimator, and optimization mixins.

These mirror the paper's Figure 3 API:

- :class:`Transformer` — a deterministic, side-effect-free unary function,
  applicable to single items or whole datasets.
- :class:`Estimator` / :class:`LabelEstimator` — functions from data(+labels)
  to a fitted :class:`Transformer`.
- :class:`Optimizable` — a *logical* operator with several physical
  implementations, each priced by a :class:`~repro.cost.CostModel`.
- :class:`Iterative` — marker carrying ``weight``, the number of passes the
  operator makes over its input (drives the materialization cost model).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Tuple

from repro.cost.model import CostModel, estimate_cost

if TYPE_CHECKING:
    from repro.cluster.resources import ResourceDescriptor
    from repro.core.stats import DataStats
    from repro.dataset.dataset import Dataset


class Transformer:
    """Deterministic item-level function; maps datasets element-wise.

    Subclasses implement :meth:`apply`.  Bulk application defaults to a
    per-element map; operators with a faster batched path (BLAS over a whole
    partition) override :meth:`apply_partition`.
    """

    #: passes over the input per execution (1 for ordinary transformers)
    weight: int = 1

    def apply(self, item: Any) -> Any:
        raise NotImplementedError

    def apply_partition(self, items: List[Any]) -> List[Any]:
        return [self.apply(x) for x in items]

    def apply_dataset(self, data: "Dataset") -> "Dataset":
        return data.map_partitions(self.apply_partition,
                                   name=type(self).__name__)

    def columnar_kernel(self):
        """Batch-invariant columnar kernel for this transformer, or None.

        Operators that can execute a whole micro-batch as one columnar
        block *with per-row results byte-identical to* :meth:`apply`
        return a :class:`repro.core.kernels.Kernel` here;
        ``VectorizePass`` groups runs of such ops into a single
        :class:`repro.core.kernels.KernelStage`.  ``None`` (the default)
        keeps the op on the per-op interpreter path.
        """
        return None

    def __call__(self, item: Any) -> Any:
        return self.apply(item)

    # -- pipeline sugar -------------------------------------------------
    def and_then(self, nxt, data=None, labels=None):
        """Chain into a :class:`~repro.core.pipeline.Pipeline`."""
        from repro.core.pipeline import Pipeline

        return Pipeline.from_transformer(self).and_then(nxt, data, labels)

    def to_pipeline(self):
        from repro.core.pipeline import Pipeline

        return Pipeline.from_transformer(self)


class Estimator:
    """Unsupervised operator: fit(data) -> Transformer."""

    weight: int = 1

    def fit(self, data: "Dataset") -> Transformer:
        raise NotImplementedError


class LabelEstimator:
    """Supervised operator: fit(data, labels) -> Transformer."""

    weight: int = 1

    def fit(self, data: "Dataset", labels: "Dataset") -> Transformer:
        raise NotImplementedError


class Optimizable:
    """Mixin for logical operators with multiple physical implementations.

    ``options`` returns ``(cost_model, physical_operator)`` pairs; the
    default :meth:`optimize` picks the feasible option with the lowest
    estimated cost, mirroring the paper's per-operator optimizer.
    """

    def options(self) -> Sequence[Tuple[CostModel, Any]]:
        raise NotImplementedError

    def optimize(self, stats: "DataStats",
                 resources: "ResourceDescriptor") -> Any:
        best: Optional[Any] = None
        best_cost = float("inf")
        for model, op in self.options():
            if not model.feasible(stats, resources):
                continue
            cost = estimate_cost(model, stats, resources)
            if cost < best_cost:
                best, best_cost = op, cost
        if best is None:
            raise RuntimeError(
                f"{type(self).__name__}: no feasible physical operator "
                f"for stats {stats}")
        return best

    def cost_table(self, stats: "DataStats",
                   resources: "ResourceDescriptor") -> List[Tuple[str, float]]:
        """Per-option estimated costs (for debugging and the benches)."""
        out = []
        for model, _op in self.options():
            cost = (estimate_cost(model, stats, resources)
                    if model.feasible(stats, resources) else float("inf"))
            out.append((model.name, cost))
        return out


class Iterative:
    """Marker: the operator makes ``weight`` passes over its input."""

    weight: int = 1


class ShardableEstimator:
    """Protocol marker: fit decomposes into per-partition statistics.

    Estimators whose training reduces partition-wise sufficient
    statistics (frequency counters, moment sums, Gram matrices, local QR
    factors) implement two methods, and
    :class:`~repro.core.backends.process.ProcessPoolBackend` then computes
    the statistics inside worker processes and merges them in the parent
    instead of gathering the featurized rows:

    - ``partition_stats(rows)`` (estimators) or
      ``partition_stats(rows, label_rows)`` (label estimators) — the
      statistic of one partition's rows, or ``None`` for partitions the
      serial fit would skip (e.g. empty ones).  Must be picklable.
    - ``fit_from_stats(partials)`` — one partial per partition, in
      partition order, merged into the fitted :class:`Transformer`.

    Byte-identity contract: ``fit(data)`` must itself route through the
    same two methods, so the merged result is bit-for-bit the serial one
    by construction — implementations must preserve the serial reduction
    order (use :func:`repro.dataset.dataset.tree_combine` for
    tree-aggregated statistics, left-to-right accumulation otherwise).
    """

    def partition_stats(self, rows, label_rows=None):
        raise NotImplementedError

    def fit_from_stats(self, partials: List[Any]) -> Transformer:
        raise NotImplementedError


class IterativeShardableEstimator:
    """Protocol: an iterative fit decomposes into per-pass partition stats.

    The iterative analogue of :class:`ShardableEstimator`.  One-shot
    shardable estimators reduce each partition once; iterative solvers
    (k-means, EM, gradient methods) make many passes, each reducing a
    small sufficient statistic against the current solver state.  The
    actor runtime (:mod:`repro.runtime`) keeps the featurized shard
    resident in long-lived workers and runs
    :meth:`partition_pass_stats` in-worker every pass, so only the
    broadcast payload and the per-partition statistics cross the process
    boundary — never the data.

    The driver-side state machine:

    - ``init_stats(rows[, label_rows])`` — per-partition statistic for
      initialization (``None`` for partitions initialization ignores).
      Must be picklable.
    - ``init_state(partials)`` — initial solver state from the init
      statistics, in partition order.  The state may hold unpicklable
      driver-side machinery; it never crosses a process boundary.
    - ``pass_payload(state)`` — the small picklable broadcast one pass
      needs (current centroids / mixture parameters / weight vector).
    - ``partition_pass_stats(payload, rows[, label_rows])`` — one
      pass's statistic for one partition (``None`` for partitions the
      serial pass would skip).  Must be picklable and a deterministic
      function of ``(payload, rows)`` alone.
    - ``update_from_stats(state, partials)`` — fold one pass's
      statistics (partition order, left-to-right) into the next state.
    - ``converged(state)`` — whether to stop iterating.
    - ``finalize(state)`` — extract the fitted :class:`Transformer`.
    - ``abort_state(state)`` — release driver-side resources when a fit
      dies between passes (default: nothing).

    Byte-identity contract: ``fit`` must itself route through
    :meth:`fit_via_passes`, so every backend — serial, process, actor —
    replays the identical per-partition statistics and the identical
    left-to-right merge, making the fitted state bit-for-bit equal by
    construction.
    """

    def init_stats(self, rows, label_rows=None):
        raise NotImplementedError

    def init_state(self, partials: List[Any]):
        raise NotImplementedError

    def pass_payload(self, state) -> Any:
        return state

    def partition_pass_stats(self, payload, rows, label_rows=None):
        raise NotImplementedError

    def update_from_stats(self, state, partials: List[Any]):
        raise NotImplementedError

    def converged(self, state) -> bool:
        raise NotImplementedError

    def finalize(self, state) -> Transformer:
        raise NotImplementedError

    def abort_state(self, state) -> None:
        """Release driver-side state after a failed fit (best effort)."""

    def fit_via_passes(self, data: "Dataset",
                       labels: Optional["Dataset"] = None) -> Transformer:
        """The serial reference driver every ``fit`` routes through."""
        if labels is not None and labels.num_partitions != data.num_partitions:
            raise ValueError(
                "features and labels must be identically partitioned: "
                f"{data.num_partitions} vs {labels.num_partitions}")

        def partition(i: int):
            rows = data.partition(i)
            if labels is None:
                return (rows,)
            label_rows = labels.partition(i)
            if len(rows) != len(label_rows):
                raise ValueError(
                    f"partition {i}: {len(rows)} feature rows vs "
                    f"{len(label_rows)} label rows")
            return (rows, label_rows)

        indices = range(data.num_partitions)
        state = self.init_state(
            [self.init_stats(*partition(i)) for i in indices])
        try:
            while not self.converged(state):
                payload = self.pass_payload(state)
                state = self.update_from_stats(
                    state,
                    [self.partition_pass_stats(payload, *partition(i))
                     for i in indices])
        except BaseException:
            self.abort_state(state)
            raise
        return self.finalize(state)


class IdentityTransformer(Transformer):
    """Passes items through unchanged; useful as a pipeline seed."""

    def apply(self, item: Any) -> Any:
        return item


class FunctionTransformer(Transformer):
    """Wraps a plain function as a Transformer.

    ``name`` is used in DAG labels; the function must be deterministic and
    side-effect-free, as required by the execution model.
    """

    def __init__(self, fn, name: str = ""):
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "fn")

    def apply(self, item: Any) -> Any:
        return self.fn(item)

    def __getstate__(self):
        # Lambdas are common here; pack the function so the transformer
        # survives pickling (process backend, model persistence).
        from repro.core.serde import pack_callable

        state = self.__dict__.copy()
        state["fn"] = pack_callable(self.fn)
        return state

    def __setstate__(self, state):
        from repro.core.serde import unpack_callable

        state["fn"] = unpack_callable(state["fn"])
        self.__dict__.update(state)

    def __repr__(self) -> str:
        return f"FunctionTransformer({self.name})"
