"""Common sub-expression elimination over the operator DAG (paper 4.2).

Two nodes are the same sub-expression when they have the same kind, the same
operator *instance*, and structurally identical parents.  Source nodes are
keyed by the identity of their bound dataset, so re-binding the same
training data in separate ``and_then`` calls still merges.  The rewrite is a
bottom-up hash-consing pass; shared prefixes (e.g. a featurization chain
used both to select common features and to train the classifier) collapse
into a single computation, enabling reuse.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core import graph as g


def _node_key(node: g.OpNode, parent_keys: Tuple) -> Tuple:
    if node.kind == g.SOURCE:
        # None op = the pipeline input placeholder: never merge two distinct
        # placeholders (they may be bound to different data at apply time).
        if node.op is None:
            return (g.SOURCE, node.id)
        return (g.SOURCE, id(node.op))
    return (node.kind, id(node.op) if node.op is not None else None,
            parent_keys)


def eliminate_common_subexpressions(sinks: List[g.OpNode]) -> List[g.OpNode]:
    """Rewrite the DAG so structurally identical sub-DAGs are shared.

    Returns new sink nodes (object identity is preserved for nodes that
    were already canonical).
    """
    canonical: Dict[Tuple, g.OpNode] = {}
    rewritten: Dict[int, g.OpNode] = {}
    keys: Dict[int, Tuple] = {}

    for node in g.ancestors(sinks):
        new_parents = tuple(rewritten[p.id] for p in node.parents)
        parent_keys = tuple(keys[p.id] for p in new_parents)
        key = _node_key(node, parent_keys)
        if key in canonical:
            merged = canonical[key]
        elif all(np_ is op_ for np_, op_ in zip(new_parents, node.parents)):
            merged = node
            canonical[key] = merged
        else:
            merged = g.OpNode(node.kind, node.op, new_parents, node.label)
            canonical[key] = merged
        rewritten[node.id] = merged
        keys[merged.id] = key

    return [rewritten[s.id] for s in sinks]


def count_merged(sinks: List[g.OpNode]) -> int:
    """Number of nodes CSE would remove (for reporting)."""
    before = len(g.ancestors(sinks))
    after = len(g.ancestors(eliminate_common_subexpressions(sinks)))
    return before - after
