"""Execution subsampling and pipeline profiling (paper Section 4.1).

The optimizer needs, for every node: input statistics ``A_s`` (to choose
physical operators), per-execution local runtime ``t(v)`` and output size
``size(v)`` (to choose what to materialize).  Following the paper, we run
the pipeline on two samples of the input (default 512 and 1024 records,
configurable), measure each node, and extrapolate to full scale with a
linear fit through the two measurements.

Operator selection is interleaved with profiling: a node is optimized using
statistics from its (already profiled) inputs, then executed on the sample
so downstream nodes can be optimized in turn.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.core import graph as g
from repro.core.operators import Optimizable
from repro.core.stats import DataStats, num_label_dims, stats_from_rows
from repro.dataset.context import Context
from repro.dataset.sizing import estimate_size

@dataclass
class NodeProfile:
    """Full-scale estimates for one DAG node."""

    node: g.OpNode
    #: wall seconds for one full execution of the node's local work
    #: (all iterations included), extrapolated to full data scale
    t_seconds: float
    #: bytes of the node's materialized output at full scale
    size_bytes: float
    #: statistics of the node's *output* at full scale
    stats: DataStats
    #: passes over the node's inputs per execution
    weight: int = 1

    @property
    def node_id(self) -> int:
        return self.node.id


@dataclass
class PipelineProfile:
    """Per-node profiles plus bookkeeping from the profiling run."""

    nodes: Dict[int, NodeProfile] = field(default_factory=dict)
    profiling_seconds: float = 0.0
    sample_sizes: Tuple[int, ...] = ()
    selections: Dict[int, str] = field(default_factory=dict)

    def t(self, node_id: int) -> float:
        return self.nodes[node_id].t_seconds

    def size(self, node_id: int) -> float:
        return self.nodes[node_id].size_bytes


@dataclass
class _Measurement:
    sample_in: int
    sample_out: int
    seconds: float
    out_bytes: float
    out_rows: List[Any]


def _extrapolate(n1: float, y1: float, n2: float, y2: float,
                 target: float) -> float:
    """Linear fit through two measurements, clamped to be non-decreasing."""
    if n2 == n1:
        return y2 * (target / max(n2, 1.0))
    slope = max((y2 - y1) / (n2 - n1), 0.0)
    intercept = max(y2 - slope * n2, 0.0)
    return intercept + slope * target


def _source_rows(node: g.OpNode, sample_size: int) -> Tuple[List[Any], int]:
    dataset = node.op
    rows = dataset.take(sample_size)
    return rows, dataset.count()


class _ProfilePass:
    """One execution of the DAG on samples of a given size."""

    def __init__(self, sample_size: int, resources, select_operators: bool,
                 selections: Dict[int, str]):
        self.sample_size = sample_size
        self.resources = resources
        self.select_operators = select_operators
        self.selections = selections
        self.measurements: Dict[int, _Measurement] = {}
        self.full_counts: Dict[int, float] = {}
        self._outputs: Dict[int, Any] = {}

    def run(self, sinks: List[g.OpNode]) -> None:
        for node in g.ancestors(sinks):
            self._profile_node(node)

    # -- helpers --------------------------------------------------------
    def _rows_of(self, node: g.OpNode) -> List[Any]:
        out = self._outputs[node.id]
        if not isinstance(out, list):
            raise TypeError(f"node {node} does not produce rows")
        return out

    def _record(self, node: g.OpNode, sample_in: int, rows: List[Any],
                seconds: float) -> None:
        self.measurements[node.id] = _Measurement(
            sample_in=sample_in, sample_out=len(rows), seconds=seconds,
            out_bytes=float(estimate_size(rows)), out_rows=rows)
        self._outputs[node.id] = rows

    def _full_count(self, node: g.OpNode) -> float:
        return self.full_counts[node.id]

    def _input_stats(self, node: g.OpNode) -> DataStats:
        """Full-scale statistics of the node's data input."""
        parent = node.parents[0]
        rows = self._rows_of(parent)
        stats = stats_from_rows(rows, full_n=int(self._full_count(parent)))
        if node.kind == g.ESTIMATOR and len(node.parents) == 2:
            label_rows = self._rows_of(node.parents[1])
            stats = stats.with_k(num_label_dims(label_rows))
        return stats

    def _maybe_select(self, node: g.OpNode) -> None:
        if not (self.select_operators and isinstance(node.op, Optimizable)):
            return
        if node.id in self.selections:
            return  # selected in an earlier pass; op already swapped
        stats = self._input_stats(node)
        physical = node.op.optimize(stats, self.resources)
        self.selections[node.id] = type(physical).__name__
        node.op = physical

    # -- per-kind profiling ----------------------------------------------
    def _profile_node(self, node: g.OpNode) -> None:
        if node.kind == g.SOURCE:
            if node.is_pipeline_input:
                # Not executed at fit time; profile as empty.
                self._outputs[node.id] = []
                self.full_counts[node.id] = 0.0
                self.measurements[node.id] = _Measurement(0, 0, 0.0, 0.0, [])
                return
            rows, full_n = _source_rows(node, self.sample_size)
            self.full_counts[node.id] = float(full_n)
            self._record(node, len(rows), rows, 0.0)
            return

        if node.kind == g.GATHER:
            branch_rows = [self._rows_of(p) for p in node.parents]
            n = min(len(r) for r in branch_rows)
            rows = [list(items) for items in zip(*(r[:n] for r in branch_rows))]
            self.full_counts[node.id] = min(
                self._full_count(p) for p in node.parents)
            self._record(node, n, rows, 0.0)
            return

        if node.kind == g.TRANSFORMER:
            self._maybe_select(node)
            parent_rows = self._rows_of(node.parents[0])
            start = time.perf_counter()
            rows = node.op.apply_partition(list(parent_rows))
            seconds = time.perf_counter() - start
            ratio = len(rows) / max(len(parent_rows), 1)
            self.full_counts[node.id] = self._full_count(node.parents[0]) * ratio
            self._record(node, len(parent_rows), rows, seconds)
            return

        if node.kind == g.ESTIMATOR:
            self._maybe_select(node)
            ctx = Context(default_partitions=1)
            data = ctx.parallelize(self._rows_of(node.parents[0]), 1)
            start = time.perf_counter()
            if len(node.parents) == 2:
                labels = ctx.parallelize(self._rows_of(node.parents[1]), 1)
                fitted = node.op.fit(data, labels)
            else:
                fitted = node.op.fit(data)
            seconds = time.perf_counter() - start
            self._outputs[node.id] = fitted
            self.full_counts[node.id] = 1.0
            self.measurements[node.id] = _Measurement(
                sample_in=len(self._rows_of(node.parents[0])), sample_out=1,
                seconds=seconds, out_bytes=float(estimate_size(fitted)),
                out_rows=[])
            return

        if node.kind == g.APPLY:
            est_node, data_node = node.parents
            fitted = self._outputs[est_node.id]
            parent_rows = self._rows_of(data_node)
            start = time.perf_counter()
            rows = fitted.apply_partition(list(parent_rows))
            seconds = time.perf_counter() - start
            ratio = len(rows) / max(len(parent_rows), 1)
            self.full_counts[node.id] = self._full_count(data_node) * ratio
            self._record(node, len(parent_rows), rows, seconds)
            return

        raise ValueError(f"cannot profile node kind {node.kind}")


def profile_pipeline(sinks: List[g.OpNode], resources,
                     sample_sizes: Tuple[int, int] = (512, 1024),
                     select_operators: bool = True) -> PipelineProfile:
    """Profile the DAG on two samples and extrapolate to full scale.

    Mutates ``Optimizable`` nodes in place when ``select_operators`` is set,
    replacing logical operators with the chosen physical implementation
    (paper Section 3); the selections are recorded in the returned profile.
    """
    start = time.perf_counter()
    n1, n2 = sorted(sample_sizes)
    selections: Dict[int, str] = {}

    pass1 = _ProfilePass(n1, resources, select_operators, selections)
    pass1.run(sinks)
    pass2 = _ProfilePass(n2, resources, select_operators, selections)
    pass2.run(sinks)

    profile = PipelineProfile(sample_sizes=(n1, n2), selections=selections)
    for node in g.ancestors(sinks):
        m1 = pass1.measurements[node.id]
        m2 = pass2.measurements[node.id]
        if node.kind == g.ESTIMATOR:
            # Estimator input count scales with the data parent's full count.
            full_in = pass2.full_counts[node.parents[0].id]
            t_full = _extrapolate(m1.sample_in, m1.seconds,
                                  m2.sample_in, m2.seconds, full_in)
            size_full = m2.out_bytes  # fitted models don't grow with n
            stats = stats_from_rows(pass2._outputs.get(node.parents[0].id, []),
                                    full_n=int(full_in))
        else:
            full_out = pass2.full_counts[node.id]
            t_full = _extrapolate(m1.sample_out, m1.seconds,
                                  m2.sample_out, m2.seconds, full_out)
            size_full = _extrapolate(m1.sample_out, m1.out_bytes,
                                     m2.sample_out, m2.out_bytes, full_out)
            stats = stats_from_rows(m2.out_rows, full_n=int(full_out))
        profile.nodes[node.id] = NodeProfile(
            node=node, t_seconds=t_full, size_bytes=size_full,
            stats=stats, weight=node.weight)
    profile.profiling_seconds = time.perf_counter() - start
    return profile
