"""Pipeline fitting shim and training reports (paper Figure 1, stages 2-4).

The optimization/execution machinery lives in the pass pipeline:
:mod:`repro.core.optimizer` runs an ordered registry of
:mod:`repro.core.passes` over a :class:`~repro.core.plan.PlanState` and
returns a :class:`~repro.core.plan.PhysicalPlan`, whose ``execute`` trains
the DAG.  This module keeps the classic single-call entry point —
``fit_pipeline`` behind :meth:`repro.core.pipeline.Pipeline.fit` — as a
thin shim that builds the pass list for one of the paper's Figure 9
optimization levels (``"none"``, ``"pipe"``, ``"full"``), optimizes, and
executes::

    fit_pipeline(pipe, level="full")
    # ==
    plan = Optimizer(passes_for_level("full")).optimize(pipe)
    plan.execute()

Execution itself is pluggable: ``fit_pipeline(..., backend=...)`` (and
``plan.execute(backend=...)``) hand the optimized plan to an
:class:`~repro.core.backends.ExecutionBackend` — serial ``"local"``
(default), thread-pooled ``"pipelined"``, or simulated-cluster
``"sharded"``.

It also hosts :class:`TrainingReport` (what happened during fit) and
:class:`ExclusiveTimer` (thread-safe per-node wall time attribution),
which the backends fill in.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.resources import ResourceDescriptor
from repro.core.profiler import PipelineProfile
from repro.dataset.context import Context

LEVEL_NONE = "none"
LEVEL_PIPE = "pipe"
LEVEL_FULL = "full"
LEVELS = (LEVEL_NONE, LEVEL_PIPE, LEVEL_FULL)


class ExclusiveTimer:
    """Accumulates per-node wall time, excluding nested node time.

    Dataset computations nest (computing a node's partition computes its
    parents' partitions inside), so a plain timer would double count.  The
    wrapper maintains a stack of inner-time accumulators.

    Thread-safe: nesting only happens within one thread's call stack, so
    the inner-time stack is thread-local (a shared stack would attribute
    one thread's nested time to whatever frame another thread pushed
    last); the ``times`` accumulator is shared across threads and guarded
    by a lock.
    """

    def __init__(self):
        self.times: Dict[int, float] = defaultdict(float)
        self._local = threading.local()
        self._lock = threading.Lock()

    @property
    def _stack(self) -> List[float]:
        """This thread's stack of inner-time accumulators."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _charge(self, node_id: Any, start: float) -> None:
        total = time.perf_counter() - start
        stack = self._stack
        inner = stack.pop()
        with self._lock:
            self.times[node_id] += total - inner
        if stack:
            stack[-1] += total

    def add(self, node_id: Any, seconds: float) -> None:
        """Credit externally measured seconds (e.g. from worker processes)."""
        with self._lock:
            self.times[node_id] += seconds

    def wrap(self, node_id: Any, fn: Callable) -> Callable:
        def wrapped(*args, **kwargs):
            start = time.perf_counter()
            self._stack.append(0.0)
            try:
                return fn(*args, **kwargs)
            finally:
                self._charge(node_id, start)
        return wrapped

    def time_block(self, node_id: Any):
        timer = self

        class _Block:
            def __enter__(self):
                self.start = time.perf_counter()
                timer._stack.append(0.0)
                return self

            def __exit__(self, *exc):
                timer._charge(node_id, self.start)
                return False

        return _Block()


@dataclass
class TrainingReport:
    """What happened during fit: decisions and measured times."""

    level: str
    optimize_seconds: float = 0.0
    execute_seconds: float = 0.0
    cse_nodes_removed: int = 0
    fused_nodes_removed: int = 0
    cache_set: Set[int] = field(default_factory=set)
    cache_set_labels: List[str] = field(default_factory=list)
    selections: Dict[int, str] = field(default_factory=dict)
    profile: Optional[PipelineProfile] = None
    node_seconds: Dict[int, float] = field(default_factory=dict)
    node_labels: Dict[int, str] = field(default_factory=dict)
    estimator_seconds: Dict[int, float] = field(default_factory=dict)
    recomputations: int = 0
    #: names of the optimizer passes applied, in order
    passes: List[str] = field(default_factory=list)
    #: which execution backend trained the plan (e.g. "local",
    #: "pipelined", "sharded[workers=8]")
    backend: str = "local"
    #: filled by ShardedBackend: simulated-cluster pricing of this run
    simulated_workers: Optional[int] = None
    simulated_seconds: Optional[float] = None
    simulated_breakdown: Dict[str, float] = field(default_factory=dict)
    #: the per-node SimulatedStage list, reusable for scaling sweeps
    simulated_stages: List[Any] = field(default_factory=list)
    simulated_resources: Optional[ResourceDescriptor] = None
    simulated_overhead_per_stage: float = 0.0
    #: filled by ProcessPoolBackend: worker-process count and, per
    #: estimator label, which merge strategy trained it.  With process
    #: execution ``node_seconds`` aggregates per-node compute *across*
    #: workers (CPU seconds, not wall clock).
    process_workers: Optional[int] = None
    process_stat_merged: List[str] = field(default_factory=list)
    process_gathered: List[str] = field(default_factory=list)
    process_fallback: List[str] = field(default_factory=list)
    #: filled by ActorBackend (:mod:`repro.runtime`): estimator labels
    #: fitted by in-worker iterative passes, pool fault-tolerance and
    #: shard-state cache accounting for this run (workers that died and
    #: were respawned; content-addressed shard states served from worker
    #: caches vs computed; partition bytes pickled over pipes vs mapped
    #: through shared memory).
    actor_iterative: List[str] = field(default_factory=list)
    worker_restarts: int = 0
    shard_state_hits: int = 0
    shard_state_misses: int = 0
    bytes_shipped: int = 0
    bytes_mapped: int = 0
    #: filled when training ran against a FitStore
    #: (:mod:`repro.incremental`): estimator labels whose fitted state was
    #: spliced from the store by training key vs. actually (re)fitted this
    #: run, plus per-partition sufficient-statistic reuse counts from the
    #: streaming-refit path of shardable estimators.
    reused_ops: List[str] = field(default_factory=list)
    refit_ops: List[str] = field(default_factory=list)
    stat_partitions_reused: int = 0
    stat_partitions_computed: int = 0

    @property
    def reused_op_fraction(self) -> float:
        """Fraction of this run's estimators spliced from the FitStore."""
        total = len(self.reused_ops) + len(self.refit_ops)
        return len(self.reused_ops) / total if total else 0.0

    @property
    def total_seconds(self) -> float:
        return self.optimize_seconds + self.execute_seconds

    def stage_seconds(self) -> Dict[str, float]:
        """Coarse stage breakdown: Optimize / Featurize / Solve.

        Estimator (fit) time counts as Solve; everything else executed on
        the training flow counts as Featurize — the categories of the
        paper's Figure 9 (Eval is measured by the caller on test data).
        """
        solve = sum(self.estimator_seconds.values())
        featurize = sum(secs for nid, secs in self.node_seconds.items()
                        if nid not in self.estimator_seconds)
        return {"Optimize": self.optimize_seconds,
                "Featurize": featurize,
                "Solve": solve}

    def fill_registry(self, registry=None, prefix: str = "training"):
        """Render every counter into a
        :class:`~repro.obs.metrics.MetricsRegistry` (created if needed).

        The single structured view over the counter fields accumulated
        across the backends: one flat namespace instead of ad-hoc
        attribute spelunking.  Returns the registry.
        """
        from repro.obs.metrics import MetricsRegistry

        if registry is None:
            registry = MetricsRegistry()
        p = f"{prefix}." if prefix else ""
        stages = self.stage_seconds()
        registry.set(f"{p}optimize_seconds", self.optimize_seconds)
        registry.set(f"{p}execute_seconds", self.execute_seconds)
        registry.set(f"{p}featurize_seconds", stages["Featurize"])
        registry.set(f"{p}solve_seconds", stages["Solve"])
        registry.inc(f"{p}cse_nodes_removed", self.cse_nodes_removed)
        registry.inc(f"{p}fused_nodes_removed", self.fused_nodes_removed)
        registry.inc(f"{p}cache_set_size", len(self.cache_set))
        registry.inc(f"{p}recomputations", self.recomputations)
        if self.process_workers is not None:
            registry.set(f"{p}process_workers", self.process_workers)
        registry.inc(f"{p}process_stat_merged",
                     len(self.process_stat_merged))
        registry.inc(f"{p}process_gathered", len(self.process_gathered))
        registry.inc(f"{p}process_fallback", len(self.process_fallback))
        registry.inc(f"{p}actor_iterative", len(self.actor_iterative))
        registry.inc(f"{p}worker_restarts", self.worker_restarts)
        registry.inc(f"{p}shard_state_hits", self.shard_state_hits)
        registry.inc(f"{p}shard_state_misses", self.shard_state_misses)
        registry.inc(f"{p}bytes_shipped", self.bytes_shipped)
        registry.inc(f"{p}bytes_mapped", self.bytes_mapped)
        registry.inc(f"{p}reused_ops", len(self.reused_ops))
        registry.inc(f"{p}refit_ops", len(self.refit_ops))
        registry.set(f"{p}reused_op_fraction", self.reused_op_fraction)
        registry.inc(f"{p}stat_partitions_reused",
                     self.stat_partitions_reused)
        registry.inc(f"{p}stat_partitions_computed",
                     self.stat_partitions_computed)
        return registry

    def to_dict(self) -> Dict[str, Any]:
        """Flat dict of the report's counters (registry-backed)."""
        out: Dict[str, Any] = {"backend": self.backend,
                               "level": self.level}
        out.update(self.fill_registry(prefix="").to_dict())
        return out

    def summary(self) -> str:
        """A compact human-readable rendering of the counter fields."""
        stages = self.stage_seconds()
        lines = [
            f"TrainingReport(backend={self.backend}, level={self.level})",
            f"  times: optimize {self.optimize_seconds:.3f}s, execute "
            f"{self.execute_seconds:.3f}s (featurize "
            f"{stages['Featurize']:.3f}s, solve {stages['Solve']:.3f}s)",
            f"  graph: cse removed {self.cse_nodes_removed}, fused "
            f"{self.fused_nodes_removed}, cache set "
            f"{len(self.cache_set)}, recomputations "
            f"{self.recomputations}",
        ]
        if (self.process_workers is not None or self.process_stat_merged
                or self.process_gathered or self.process_fallback):
            lines.append(
                f"  process: workers {self.process_workers}, stat-merged "
                f"{len(self.process_stat_merged)}, gathered "
                f"{len(self.process_gathered)}, fallback "
                f"{len(self.process_fallback)}")
        if (self.actor_iterative or self.worker_restarts
                or self.shard_state_hits or self.shard_state_misses
                or self.bytes_shipped or self.bytes_mapped):
            lines.append(
                f"  actors: iterative {len(self.actor_iterative)}, "
                f"restarts {self.worker_restarts}, shard-state "
                f"{self.shard_state_hits} hits / "
                f"{self.shard_state_misses} misses, shipped "
                f"{self.bytes_shipped} B, mapped {self.bytes_mapped} B")
        if (self.reused_ops or self.refit_ops
                or self.stat_partitions_reused
                or self.stat_partitions_computed):
            lines.append(
                f"  incremental: reused {len(self.reused_ops)}/"
                f"{len(self.reused_ops) + len(self.refit_ops)} ops, "
                f"stat partitions {self.stat_partitions_reused} reused / "
                f"{self.stat_partitions_computed} computed")
        return "\n".join(lines)


def plan_pipeline(pipeline, resources: Optional[ResourceDescriptor] = None,
                  level: Optional[str] = None,
                  mem_budget_bytes: Optional[float] = None,
                  sample_sizes: Optional[Tuple[int, int]] = None,
                  cache_strategy: Optional[str] = None,
                  fuse: Optional[bool] = None,
                  passes: Optional[Sequence] = None,
                  _stacklevel: int = 3):
    """Optimize a pipeline into a :class:`~repro.core.plan.PhysicalPlan`.

    The planning half of :func:`fit_pipeline` — same kwargs, no
    execution.  Callers that want to inspect the plan, choose a backend
    per execution, or train the same plan several times (e.g. the
    incremental sweep planner) call this and then
    :meth:`~repro.core.plan.PhysicalPlan.execute`.
    """
    from repro.core.optimizer import Optimizer, passes_for_level

    if level is not None and level not in LEVELS:
        raise ValueError(f"unknown optimization level {level!r}; "
                         f"expected one of {LEVELS}")
    if passes is not None:
        shim_only = {"fuse": fuse, "cache_strategy": cache_strategy,
                     "sample_sizes": sample_sizes,
                     "mem_budget_bytes": mem_budget_bytes}
        clashes = [k for k, v in shim_only.items() if v is not None]
        if clashes:
            raise TypeError(f"{clashes} have no effect when passes= is "
                            "given; configure the passes directly (e.g. "
                            "FusionPass(), ProfilingPass(sample_sizes), "
                            "MaterializationPass(strategy, budget))")
    if passes is None:
        level = LEVEL_FULL if level is None else level
        passes = passes_for_level(
            level,
            sample_sizes=(256, 512) if sample_sizes is None else sample_sizes,
            mem_budget_bytes=(float("inf") if mem_budget_bytes is None
                              else mem_budget_bytes),
            cache_strategy=cache_strategy,
            fuse=bool(fuse),
            _stacklevel=_stacklevel)
    return Optimizer(passes).optimize(pipeline, resources,
                                      level=level or "custom")


def fit_pipeline(pipeline, resources: Optional[ResourceDescriptor] = None,
                 level: Optional[str] = None,
                 mem_budget_bytes: Optional[float] = None,
                 sample_sizes: Optional[Tuple[int, int]] = None,
                 cache_strategy: Optional[str] = None,
                 ctx: Optional[Context] = None,
                 fuse: Optional[bool] = None,
                 passes: Optional[Sequence] = None,
                 backend=None,
                 fit_store=None):
    """Optimize and train a pipeline; returns a FittedPipeline.

    ``level`` is one of ``"none" | "pipe" | "full"``.  ``cache_strategy``
    overrides the materialization strategy (default: greedy for optimized
    levels, none otherwise); see :mod:`repro.core.materialization`.
    ``fuse`` additionally packs single-consumer transformer chains into
    one stage (:mod:`repro.core.fusion`) before profiling — it is part of
    the optimizer, so it is ignored at ``level="none"``.

    ``backend`` selects the execution strategy (an
    :class:`~repro.core.backends.ExecutionBackend` instance or a name from
    :data:`repro.core.backends.BACKENDS`); default is serial
    :class:`~repro.core.backends.LocalBackend` semantics.

    ``fit_store`` attaches a :class:`~repro.incremental.FitStore`:
    estimators whose training keys hit the store are spliced instead of
    refit (warm retrain), shardable estimators reuse stored per-partition
    sufficient statistics (streaming refit), and newly fitted state is
    stored back — see :mod:`repro.incremental`.

    ``passes`` bypasses the level shim entirely: an explicit pass list is
    handed to the :class:`~repro.core.optimizer.Optimizer` as-is (the
    other optimization kwargs then only apply if the listed passes carry
    them, e.g. the budget inside a ``MaterializationPass``), and the plan
    is labelled ``"custom"`` unless a ``level`` is also named.
    """
    plan = plan_pipeline(
        pipeline, resources, level=level,
        mem_budget_bytes=mem_budget_bytes, sample_sizes=sample_sizes,
        cache_strategy=cache_strategy, fuse=fuse, passes=passes,
        # Warn at the Pipeline.fit caller (user -> fit -> here ->
        # plan_pipeline -> helper); a direct fit_pipeline caller is
        # attributed one frame high — the dominant path wins.
        _stacklevel=5)
    return plan.execute(ctx, backend=backend, fit_store=fit_store)
