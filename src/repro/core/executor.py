"""Pipeline fitting: optimize, train, and report (paper Figure 1, stages 2-4).

``fit_pipeline`` is the single entry point behind
:meth:`repro.core.pipeline.Pipeline.fit`.  It:

1. applies whole-pipeline rewrites (common sub-expression elimination),
2. profiles the DAG on data samples, selecting physical operators for
   ``Optimizable`` nodes (operator-level optimization),
3. chooses a materialization (cache) set under the memory budget,
4. executes the training DAG depth-first — estimators are pipeline
   breakers — with the chosen caching policy, and
5. returns a :class:`~repro.core.pipeline.FittedPipeline` plus a
   :class:`TrainingReport` with per-node timings and optimizer decisions.

Optimization levels reproduce the paper's Figure 9 configurations:
``"none"`` (no optimization), ``"pipe"`` (whole-pipeline only) and
``"full"`` (operator + whole-pipeline).
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.cluster.resources import ResourceDescriptor, local_machine
from repro.core import graph as g
from repro.core import materialization as mat
from repro.core.cse import eliminate_common_subexpressions
from repro.core.operators import Optimizable, Transformer
from repro.core.profiler import PipelineProfile, profile_pipeline
from repro.dataset.cache import AdmissionControlledLRUPolicy, PinnedPolicy
from repro.dataset.context import Context
from repro.dataset.dataset import Dataset

LEVEL_NONE = "none"
LEVEL_PIPE = "pipe"
LEVEL_FULL = "full"
LEVELS = (LEVEL_NONE, LEVEL_PIPE, LEVEL_FULL)


class ExclusiveTimer:
    """Accumulates per-node wall time, excluding nested node time.

    Dataset computations nest (computing a node's partition computes its
    parents' partitions inside), so a plain timer would double count.  The
    wrapper maintains a stack of inner-time accumulators.
    """

    def __init__(self):
        self.times: Dict[int, float] = defaultdict(float)
        self._stack: List[float] = []

    def wrap(self, node_id: int, fn: Callable) -> Callable:
        def wrapped(*args, **kwargs):
            start = time.perf_counter()
            self._stack.append(0.0)
            try:
                return fn(*args, **kwargs)
            finally:
                total = time.perf_counter() - start
                inner = self._stack.pop()
                self.times[node_id] += total - inner
                if self._stack:
                    self._stack[-1] += total
        return wrapped

    def time_block(self, node_id: int):
        timer = self

        class _Block:
            def __enter__(self):
                self.start = time.perf_counter()
                timer._stack.append(0.0)
                return self

            def __exit__(self, *exc):
                total = time.perf_counter() - self.start
                inner = timer._stack.pop()
                timer.times[node_id] += total - inner
                if timer._stack:
                    timer._stack[-1] += total
                return False

        return _Block()


@dataclass
class TrainingReport:
    """What happened during fit: decisions and measured times."""

    level: str
    optimize_seconds: float = 0.0
    execute_seconds: float = 0.0
    cse_nodes_removed: int = 0
    cache_set: Set[int] = field(default_factory=set)
    cache_set_labels: List[str] = field(default_factory=list)
    selections: Dict[int, str] = field(default_factory=dict)
    profile: Optional[PipelineProfile] = None
    node_seconds: Dict[int, float] = field(default_factory=dict)
    node_labels: Dict[int, str] = field(default_factory=dict)
    estimator_seconds: Dict[int, float] = field(default_factory=dict)
    recomputations: int = 0

    @property
    def total_seconds(self) -> float:
        return self.optimize_seconds + self.execute_seconds

    def stage_seconds(self) -> Dict[str, float]:
        """Coarse stage breakdown: Optimize / Featurize / Solve.

        Estimator (fit) time counts as Solve; everything else executed on
        the training flow counts as Featurize — the categories of the
        paper's Figure 9 (Eval is measured by the caller on test data).
        """
        solve = sum(self.estimator_seconds.values())
        featurize = sum(secs for nid, secs in self.node_seconds.items()
                        if nid not in self.estimator_seconds)
        return {"Optimize": self.optimize_seconds,
                "Featurize": featurize,
                "Solve": solve}


def fit_pipeline(pipeline, resources: Optional[ResourceDescriptor] = None,
                 level: str = LEVEL_FULL,
                 mem_budget_bytes: float = float("inf"),
                 sample_sizes: Tuple[int, int] = (256, 512),
                 cache_strategy: Optional[str] = None,
                 ctx: Optional[Context] = None,
                 fuse: bool = False):
    """Optimize and train a pipeline; returns a FittedPipeline.

    ``level`` is one of ``"none" | "pipe" | "full"``.  ``cache_strategy``
    overrides the materialization strategy (default: greedy for optimized
    levels, none otherwise); see :mod:`repro.core.materialization`.
    ``fuse`` additionally packs single-consumer transformer chains into
    one stage (:mod:`repro.core.fusion`) before profiling.
    """
    from repro.core.pipeline import FittedPipeline, Pipeline

    if level not in LEVELS:
        raise ValueError(f"unknown optimization level {level!r}; "
                         f"expected one of {LEVELS}")
    resources = resources or local_machine()
    report = TrainingReport(level=level)

    sink = pipeline.sink
    input_node = pipeline.input_node
    opt_start = time.perf_counter()

    # -- whole-pipeline rewrite: CSE -----------------------------------
    if level in (LEVEL_PIPE, LEVEL_FULL):
        before = len(g.ancestors([sink]))
        sink = eliminate_common_subexpressions([sink])[0]
        report.cse_nodes_removed = before - len(g.ancestors([sink]))
    if fuse:
        from repro.core.fusion import fuse_transformer_chains

        sink = fuse_transformer_chains([sink])[0]
    g.validate_dag([sink])

    # -- profiling + operator selection --------------------------------
    profile: Optional[PipelineProfile] = None
    if level != LEVEL_NONE:
        profile = profile_pipeline([sink], resources,
                                   sample_sizes=sample_sizes,
                                   select_operators=(level == LEVEL_FULL))
        report.profile = profile
        report.selections = dict(profile.selections)

    # -- materialization -------------------------------------------------
    strategy = cache_strategy
    if strategy is None:
        strategy = mat.GREEDY if level != LEVEL_NONE else mat.NONE
    use_lru = False
    cache_ids: Set[int] = set()
    if strategy != mat.NONE and profile is not None:
        problem = mat.MaterializationProblem([sink], profile)
        cache_ids, use_lru = mat.choose_cache_set(strategy, problem,
                                                  mem_budget_bytes)
    elif strategy in (mat.LRU, mat.ALL):
        # Unprofiled LRU: mark everything cacheable, let the cache decide.
        cache_ids = {n.id for n in g.ancestors([sink])
                     if n.kind not in (g.ESTIMATOR,)
                     and not n.is_pipeline_input}
        use_lru = True
    report.cache_set = set(cache_ids)
    node_by_id = {n.id: n for n in g.ancestors([sink])}
    report.cache_set_labels = sorted(
        node_by_id[i].label for i in cache_ids if i in node_by_id)
    report.optimize_seconds = time.perf_counter() - opt_start

    # -- execution --------------------------------------------------------
    exec_start = time.perf_counter()
    if ctx is None:
        ctx = Context(cache_budget_bytes=mem_budget_bytes)
    if use_lru:
        ctx.set_policy(AdmissionControlledLRUPolicy(), mem_budget_bytes)
    else:
        pinned = PinnedPolicy(set())
        ctx.set_policy(pinned, mem_budget_bytes)

    timer = ExclusiveTimer()
    env: Dict[int, Any] = {}
    fitted: Dict[int, Transformer] = {}

    def dataset_of(node: g.OpNode) -> Dataset:
        if node.id in env:
            return env[node.id]
        if node.kind == g.SOURCE:
            if node.is_pipeline_input:
                raise ValueError("training execution reached the pipeline "
                                 "input placeholder; estimator training "
                                 "data must be bound via and_then(est, data)")
            ds = node.op
            if ds.ctx is not ctx:
                # Re-root foreign datasets into the execution context so the
                # caching policy applies uniformly.
                ds = ctx.parallelize(ds.collect(), ds.num_partitions)
        elif node.kind == g.TRANSFORMER:
            parent = dataset_of(node.parents[0])
            ds = parent.map_partitions(
                timer.wrap(node.id, node.op.apply_partition),
                name=node.label)
        elif node.kind == g.APPLY:
            est_node, data_node = node.parents
            model = fit_estimator(est_node)
            parent = dataset_of(data_node)
            ds = parent.map_partitions(
                timer.wrap(node.id, model.apply_partition), name=node.label)
        elif node.kind == g.GATHER:
            parents = [dataset_of(p) for p in node.parents]
            ds = parents[0].map(lambda x: [x], name="gather")
            for p in parents[1:]:
                ds = ds.zip(p).map(lambda pair: pair[0] + [pair[1]],
                                   name="gather")
        else:
            raise ValueError(f"cannot execute node kind {node.kind}")
        if node.id in cache_ids:
            ds.cache()
            if not use_lru:
                ctx.cache.policy.cache_set.add(ds.id)
        env[node.id] = ds
        return ds

    def fit_estimator(node: g.OpNode) -> Transformer:
        if node.id in fitted:
            return fitted[node.id]
        data = dataset_of(node.parents[0])
        with timer.time_block(node.id):
            if len(node.parents) == 2:
                labels = dataset_of(node.parents[1])
                model = node.op.fit(data, labels)
            else:
                model = node.op.fit(data)
        fitted[node.id] = model
        report.estimator_seconds[node.id] = timer.times[node.id]
        return model

    # Fit every estimator reachable from the sink, in dependency order.
    for node in g.ancestors([sink]):
        if node.kind == g.ESTIMATOR:
            fit_estimator(node)

    report.execute_seconds = time.perf_counter() - exec_start
    report.node_seconds = dict(timer.times)
    report.node_labels = {n.id: n.label for n in g.ancestors([sink])}
    report.recomputations = ctx.stats.total_computations()

    # -- build the inference-only pipeline ------------------------------
    def inference_node(node: g.OpNode, memo: Dict[int, g.OpNode]) -> g.OpNode:
        if node.id in memo:
            return memo[node.id]
        if node.kind == g.APPLY:
            data_parent = inference_node(node.parents[1], memo)
            out = g.OpNode(g.TRANSFORMER, fitted[node.parents[0].id],
                           (data_parent,), label=node.label)
        elif node.kind == g.TRANSFORMER:
            out = g.OpNode(g.TRANSFORMER, node.op,
                           (inference_node(node.parents[0], memo),),
                           label=node.label)
        elif node.kind == g.GATHER:
            out = g.OpNode(g.GATHER, None,
                           tuple(inference_node(p, memo)
                                 for p in node.parents), label="gather")
        elif node.is_pipeline_input:
            out = node
        else:
            raise ValueError(
                f"node {node} cannot appear on the inference path")
        memo[node.id] = out
        return out

    memo: Dict[int, g.OpNode] = {}
    inference_sink = inference_node(sink, memo)
    new_input = memo.get(input_node.id, input_node)
    return FittedPipeline(new_input, inference_sink, training_report=report)
