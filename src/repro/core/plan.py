"""Plan state and physical plans: the optimizer's working objects.

The optimizer (:mod:`repro.core.optimizer`) threads a :class:`PlanState`
through an ordered list of passes; each pass rewrites the DAG or attaches
decisions (profile, operator selections, cache set).  The result is wrapped
in a :class:`PhysicalPlan` — an inspectable artifact that can report what
the optimizer decided (:meth:`PhysicalPlan.explain`,
:meth:`PhysicalPlan.to_dot`, :meth:`PhysicalPlan.estimated_runtime_seconds`)
*before* any training happens, and then train the pipeline with
:meth:`PhysicalPlan.execute`.

``execute`` delegates to a pluggable
:class:`~repro.core.backends.ExecutionBackend` (serial ``LocalBackend`` by
default): depth-first training with estimators as pipeline breakers,
followed by extraction of the inference-only DAG into a
:class:`~repro.core.pipeline.FittedPipeline`.  Pass ``backend=`` to train
the same plan pipelined across threads or priced on a simulated cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.cluster.resources import ResourceDescriptor
from repro.core import graph as g
from repro.core import materialization as mat
from repro.core.profiler import PipelineProfile
from repro.dataset.context import Context


@dataclass
class PassDecision:
    """One pass's entry in the plan's decision log."""

    name: str
    details: Dict[str, Any] = field(default_factory=dict)
    seconds: float = 0.0

    def describe(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.details.items())
        return f"{self.name} [{self.seconds:.3f}s]" + (f" {parts}" if parts
                                                       else "")


@dataclass
class PlanState:
    """Mutable optimizer state threaded through the pass pipeline.

    Passes may rewrite ``sink`` (DAG rewrites such as CSE and fusion must
    run *before* profiling — node ids change), attach a ``profile``, record
    operator ``selections`` and choose the cache set.  ``decisions`` is the
    ordered log rendered by :meth:`PhysicalPlan.explain`; passes add to the
    current entry with :meth:`annotate`.
    """

    sink: g.OpNode
    input_node: g.OpNode
    resources: ResourceDescriptor
    profile: Optional[PipelineProfile] = None
    cache_ids: Set[int] = field(default_factory=set)
    use_lru: bool = False
    mem_budget_bytes: float = float("inf")
    selections: Dict[int, str] = field(default_factory=dict)
    cse_nodes_removed: int = 0
    fused_nodes_removed: int = 0
    decisions: List[PassDecision] = field(default_factory=list)
    #: worker count chosen by ShardingPass (None: no sharding decision)
    shard_workers: Optional[int] = None
    #: node id -> "data-parallel" | "coordinated" (see ShardingPass)
    shard_roles: Dict[int, str] = field(default_factory=dict)
    #: execution backend recommended by ShardingPass(workers="auto"):
    #: "process" when the simulated coordination cost is low enough for
    #: multi-process shards to pay off, "pipelined" when coordination
    #: dominates, "local" at one worker (None: no recommendation)
    shard_backend: Optional[str] = None
    #: OpProgram-level rewrites registered by LoweringPass; applied by
    #: every consumer that lowers this plan's DAG to the flat IR (the
    #: serving compiler via FittedPipeline, the process backend's shard
    #: programs) — see repro.core.program.ProgramPass
    program_passes: List[Any] = field(default_factory=list)
    #: FitStore (repro.incremental) attached for this execution: the
    #: training session splices stored fitted state by training key and
    #: stores new fits back (None: cold fit, no reuse)
    fit_store: Optional[Any] = None

    def annotate(self, **details: Any) -> None:
        """Attach decision details to the pass currently running."""
        if not self.decisions:
            raise RuntimeError("annotate() called outside a pass run")
        self.decisions[-1].details.update(details)

    def node_labels(self) -> Dict[int, str]:
        return {n.id: n.label for n in g.ancestors([self.sink])}

    def cache_set_labels(self) -> List[str]:
        labels = self.node_labels()
        return sorted(labels[i] for i in self.cache_ids if i in labels)

    def unprofiled_nodes(self) -> List[g.OpNode]:
        """Nodes the attached profile does not cover.

        Non-empty means the profile is stale: a rewrite pass changed node
        identities after profiling.  The single staleness definition
        shared by MaterializationPass and plan inspection.
        """
        if self.profile is None:
            return []
        return [n for n in g.ancestors([self.sink])
                if n.id not in self.profile.nodes]


class PhysicalPlan:
    """An optimized, executable pipeline plan.

    Produced by :meth:`repro.core.optimizer.Optimizer.optimize`.  Holds the
    rewritten DAG plus every optimizer decision; inspect with
    :meth:`explain` / :meth:`to_dot`, then train with :meth:`execute`.
    """

    def __init__(self, state: PlanState, level: str = "custom",
                 optimize_seconds: float = 0.0):
        self.state = state
        self.level = level
        self.optimize_seconds = optimize_seconds

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def sink(self) -> g.OpNode:
        return self.state.sink

    @property
    def input_node(self) -> g.OpNode:
        return self.state.input_node

    @property
    def profile(self) -> Optional[PipelineProfile]:
        return self.state.profile

    @property
    def decisions(self) -> List[PassDecision]:
        return list(self.state.decisions)

    @property
    def passes(self) -> List[str]:
        """Names of the passes applied, in order."""
        return [d.name for d in self.state.decisions]

    @property
    def cache_set(self) -> Set[int]:
        return set(self.state.cache_ids)

    @property
    def cache_set_labels(self) -> List[str]:
        return self.state.cache_set_labels()

    @property
    def selections(self) -> Dict[int, str]:
        return dict(self.state.selections)

    def num_nodes(self) -> int:
        return len(g.ancestors([self.sink]))

    def _profile_stale(self) -> bool:
        """True when the DAG was rewritten after profiling."""
        return bool(self.state.unprofiled_nodes())

    def estimated_runtime_seconds(self) -> Optional[float]:
        """Modelled training execution time under the chosen cache set.

        ``None`` when the plan carries no profile (e.g. level ``"none"``)
        or the profile is stale (the DAG was rewritten after profiling).
        """
        if self.state.profile is None or self._profile_stale():
            return None
        problem = mat.MaterializationProblem([self.sink], self.state.profile)
        return problem.estimate_runtime(self.state.cache_ids)

    def estimated_cache_bytes(self) -> Optional[float]:
        """Modelled memory footprint of the chosen cache set.

        ``None`` without a profile, or when the profile is stale — a
        partial sum over surviving node ids would look confident and be
        wrong.
        """
        if self.state.profile is None or self._profile_stale():
            return None
        return sum(self.state.profile.size(i)
                   for i in self.state.cache_ids)

    def explain(self, observed: bool = False, tracer=None) -> str:
        """Human-readable account of every pass applied and its decisions.

        With ``observed=True``, appends an aggregated per-op table of
        what actually ran — grouped by op content key, summed across
        every process and worker that executed it — from ``tracer`` (or
        the active :func:`repro.obs.trace.active` tracer).  The table is
        empty-annotated when no spans were recorded (tracing off).
        """
        lines = [f"PhysicalPlan(level={self.level})",
                 f"  sink: {self.sink.label!r} ({self.num_nodes()} nodes)",
                 f"  resources: {self.state.resources.name} "
                 f"(x{self.state.resources.num_nodes})",
                 f"  mem budget: {self.state.mem_budget_bytes} bytes",
                 "  passes:"]
        if not self.state.decisions:
            lines.append("    (none)")
        for i, decision in enumerate(self.state.decisions, 1):
            lines.append(f"    {i}. {decision.describe()}")
        labels = ", ".join(self.cache_set_labels) or "(empty)"
        lines.append(f"  cache set ({len(self.state.cache_ids)} nodes): "
                     f"{labels}")
        if self.state.shard_workers is not None:
            roles = self.state.shard_roles
            dp = sum(1 for r in roles.values() if r == "data-parallel")
            coord = sum(1 for r in roles.values() if r == "coordinated")
            sharding = (f"  sharding: {self.state.shard_workers} workers "
                        f"({dp} data-parallel, {coord} coordinated nodes)")
            if self.state.shard_backend is not None:
                sharding += (", recommended backend: "
                             f"{self.state.shard_backend}")
            lines.append(sharding)
        runtime = self.estimated_runtime_seconds()
        if runtime is not None:
            cache_bytes = self.estimated_cache_bytes()
            lines.append(f"  estimated execution: {runtime:.3f}s, "
                         f"cached bytes: {cache_bytes:.0f}")
        if observed:
            from repro.obs import trace as obs_trace

            if tracer is None:
                tracer = obs_trace.active()
            spans = tracer.spans if tracer is not None else []
            lines.append("  observed ops (by content key, all "
                         "processes/workers):")
            if spans:
                for row in obs_trace.aggregate_table(spans):
                    lines.append(f"    {row}")
            else:
                lines.append("    (no spans recorded; enable tracing "
                             "via repro.obs.trace.enable())")
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Graphviz rendering of the optimized DAG; cached nodes are filled."""
        return g.to_dot([self.sink], highlight=self.state.cache_ids)

    def __repr__(self) -> str:
        return (f"PhysicalPlan(level={self.level!r}, "
                f"nodes={self.num_nodes()}, "
                f"passes={self.passes}, "
                f"cached={len(self.state.cache_ids)})")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, ctx: Optional[Context] = None,
                backend=None, fit_store=None) -> "FittedPipeline":
        """Train the planned pipeline; returns a FittedPipeline.

        ``backend`` selects the execution strategy — ``None`` (serial
        :class:`~repro.core.backends.LocalBackend`), a name from
        :data:`repro.core.backends.BACKENDS`, an
        :class:`~repro.core.backends.ExecutionBackend` instance, or
        ``"auto"`` to honour the backend a
        :class:`~repro.core.passes.ShardingPass` with ``workers="auto"``
        recommended for this plan (serial when no recommendation was
        recorded).  Every backend honours the plan's caching policy and
        trains to identical predictions; the returned pipeline carries a
        :class:`~repro.core.executor.TrainingReport` combining the
        optimizer's decisions with measured (and, for the sharded
        backend, simulated) execution times.

        ``fit_store`` attaches a :class:`~repro.incremental.FitStore` for
        this execution (warm retrain / streaming refit; see
        :mod:`repro.incremental`); it is recorded on the plan state, so
        re-executing the same plan keeps the store unless overridden.
        """
        from repro.core.backends import resolve_backend

        if fit_store is not None:
            self.state.fit_store = fit_store
        if backend == "auto":
            backend = self.state.shard_backend or "local"
        return resolve_backend(backend).execute(self, ctx)
