"""Callable serialization for process execution and model pickling.

Operators occasionally capture small user functions — the paper's own text
pipeline is built with ``TermFrequency(x => 1)`` — and lambdas defeat the
standard pickle machinery.  Shipping work to spawn-based worker processes
(:class:`~repro.core.backends.process.ProcessPoolBackend`) and persisting
fitted pipelines both need those operators to round-trip, so this module
packs a callable as:

- the callable itself, when plain pickle already handles it (module-level
  functions, builtins, callable instances); or
- its marshalled code object plus name/defaults/closure-cell values, for
  lambdas and nested functions whose captured values are themselves
  picklable.

Reconstruction resolves globals through the function's defining module
when importable (falling back to builtins only), which covers the simple
weighting/feature functions pipelines actually use.  Functions closing
over unpicklable state still fail — with an error naming the fix.
"""

from __future__ import annotations

import importlib
import marshal
import pickle
import types
from typing import Any, Tuple

#: tags for the two wire formats
_PLAIN = "pickle"
_CODE = "code"


def pack_callable(fn: Any) -> Tuple[str, Any]:
    """Pack ``fn`` into a picklable ``(tag, payload)`` pair.

    Plain-picklable callables pass through untouched; pure-Python
    functions (lambdas included) fall back to a marshalled code object.
    """
    try:
        pickle.dumps(fn, protocol=pickle.HIGHEST_PROTOCOL)
        return (_PLAIN, fn)
    except Exception:
        pass
    if not isinstance(fn, types.FunctionType):
        raise TypeError(
            f"cannot serialize callable {fn!r}: not picklable and not a "
            "pure-Python function; use a module-level callable instead")
    cells = ()
    if fn.__closure__:
        try:
            cells = tuple(pickle.loads(pickle.dumps(
                [c.cell_contents for c in fn.__closure__])))
        except Exception as exc:
            raise TypeError(
                f"cannot serialize {fn.__name__!r}: it closes over "
                f"unpicklable state ({exc}); use a module-level function "
                "or close over plain data only") from None
    payload = (marshal.dumps(fn.__code__), fn.__name__, fn.__defaults__,
               fn.__module__, cells, fn.__kwdefaults__)
    return (_CODE, payload)


def unpack_callable(packed: Tuple[str, Any]) -> Any:
    """Inverse of :func:`pack_callable`."""
    tag, payload = packed
    if tag == _PLAIN:
        return payload
    code_bytes, name, defaults, module, cell_values, kwdefaults = payload
    code = marshal.loads(code_bytes)
    fn_globals = {"__builtins__": __builtins__}
    if module:
        try:
            fn_globals = importlib.import_module(module).__dict__
        except Exception:
            pass
    closure = tuple(types.CellType(v) for v in cell_values) or None
    fn = types.FunctionType(code, fn_globals, name, defaults, closure)
    fn.__kwdefaults__ = kwdefaults
    return fn
