"""Hyperparameter tuning over pipelines (paper §7 future work).

The paper plans to integrate hyperparameter search with the optimizer
(citing TuPAQ [56]).  This module provides the basic harness: a grid (or
random subsample of a grid) over pipeline-builder parameters, fitting one
pipeline per configuration and scoring it on validation data, with the
per-configuration optimizer decisions recorded so search results explain
themselves.
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.pipeline import FittedPipeline, Pipeline


@dataclass
class TrialResult:
    """One evaluated configuration."""

    params: Dict[str, Any]
    score: float
    fit_seconds: float
    selections: Dict[int, str] = field(default_factory=dict)
    pipeline: Optional[FittedPipeline] = None


@dataclass
class SearchResult:
    trials: List[TrialResult]

    @property
    def best(self) -> TrialResult:
        if not self.trials:
            raise ValueError("no trials were run")
        return max(self.trials, key=lambda t: t.score)

    def ranked(self) -> List[TrialResult]:
        return sorted(self.trials, key=lambda t: t.score, reverse=True)


def expand_grid(grid: Dict[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of parameter values, as a list of dicts."""
    if not grid:
        return [{}]
    keys = sorted(grid)
    combos = itertools.product(*(grid[k] for k in keys))
    return [dict(zip(keys, values)) for values in combos]


class GridSearch:
    """Fit-and-score a pipeline builder across a parameter grid.

    ``builder(params) -> Pipeline`` constructs an unfitted pipeline;
    ``scorer(fitted) -> float`` evaluates it (higher is better).  Set
    ``max_trials`` to randomly subsample large grids (seeded).
    """

    def __init__(self, builder: Callable[[Dict[str, Any]], Pipeline],
                 scorer: Callable[[FittedPipeline], float],
                 grid: Dict[str, Sequence[Any]],
                 max_trials: Optional[int] = None, seed: int = 0,
                 fit_kwargs: Optional[Dict[str, Any]] = None,
                 keep_pipelines: bool = False):
        self.builder = builder
        self.scorer = scorer
        self.grid = grid
        self.max_trials = max_trials
        self.seed = seed
        self.fit_kwargs = fit_kwargs or {}
        self.keep_pipelines = keep_pipelines

    def configurations(self) -> List[Dict[str, Any]]:
        configs = expand_grid(self.grid)
        if self.max_trials is not None and len(configs) > self.max_trials:
            rng = random.Random(self.seed)
            configs = rng.sample(configs, self.max_trials)
        return configs

    def run(self) -> SearchResult:
        trials: List[TrialResult] = []
        for params in self.configurations():
            pipeline = self.builder(params)
            start = time.perf_counter()
            fitted = pipeline.fit(**self.fit_kwargs)
            fit_seconds = time.perf_counter() - start
            score = self.scorer(fitted)
            trials.append(TrialResult(
                params=params, score=score, fit_seconds=fit_seconds,
                selections=dict(fitted.training_report.selections
                                if fitted.training_report else {}),
                pipeline=fitted if self.keep_pipelines else None))
        return SearchResult(trials)
