"""Hyperparameter tuning over pipelines (paper §7 future work).

The paper plans to integrate hyperparameter search with the optimizer
(citing TuPAQ [56]).  This module provides the basic harness: a grid (or
random subsample of a grid) over pipeline-builder parameters, fitting one
pipeline per configuration and scoring it on validation data, with the
per-configuration optimizer decisions recorded so search results explain
themselves.
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.pipeline import FittedPipeline, Pipeline


@dataclass
class TrialResult:
    """One evaluated configuration."""

    params: Dict[str, Any]
    score: float
    fit_seconds: float
    selections: Dict[int, str] = field(default_factory=dict)
    pipeline: Optional[FittedPipeline] = None


@dataclass
class SearchResult:
    trials: List[TrialResult]
    #: filled by incremental searches: the SweepPlanner's dedup report
    #: (op counts shared vs executed); None for trial-by-trial runs
    sweep_report: Optional[Any] = None

    @property
    def best(self) -> TrialResult:
        if not self.trials:
            raise ValueError("no trials were run")
        return max(self.trials, key=lambda t: t.score)

    def ranked(self) -> List[TrialResult]:
        return sorted(self.trials, key=lambda t: t.score, reverse=True)


def expand_grid(grid: Dict[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of parameter values, as a list of dicts."""
    if not grid:
        return [{}]
    keys = sorted(grid)
    combos = itertools.product(*(grid[k] for k in keys))
    return [dict(zip(keys, values)) for values in combos]


class GridSearch:
    """Fit-and-score a pipeline builder across a parameter grid.

    ``builder(params) -> Pipeline`` constructs an unfitted pipeline;
    ``scorer(fitted) -> float`` evaluates it (higher is better).  Set
    ``max_trials`` to randomly subsample large grids (seeded).

    ``backend`` selects the execution backend every trial trains on (an
    :class:`~repro.core.backends.ExecutionBackend` instance or registry
    name) — without it each trial silently trains on the default serial
    backend even when the caller has a tuned one.  ``fit_store`` attaches
    a :class:`~repro.incremental.FitStore` so repeated searches warm-start
    from each other's fitted state.

    ``incremental=True`` routes the whole grid through
    :class:`~repro.incremental.SweepPlanner`: all configurations merge
    into one union program deduplicated by training key, each shared op
    executes once, and the result carries the planner's
    ``SweepReport`` (``result.sweep_report``).  Scores are byte-identical
    to the trial-by-trial path; per-trial ``fit_seconds`` is the union
    fit amortized evenly (individual attribution is meaningless once the
    work is shared).
    """

    def __init__(self, builder: Callable[[Dict[str, Any]], Pipeline],
                 scorer: Callable[[FittedPipeline], float],
                 grid: Dict[str, Sequence[Any]],
                 max_trials: Optional[int] = None, seed: int = 0,
                 fit_kwargs: Optional[Dict[str, Any]] = None,
                 keep_pipelines: bool = False,
                 backend=None,
                 incremental: bool = False,
                 fit_store=None):
        self.builder = builder
        self.scorer = scorer
        self.grid = grid
        self.max_trials = max_trials
        self.seed = seed
        self.fit_kwargs = fit_kwargs or {}
        self.keep_pipelines = keep_pipelines
        self.backend = backend
        self.incremental = incremental
        self.fit_store = fit_store

    def configurations(self) -> List[Dict[str, Any]]:
        configs = expand_grid(self.grid)
        if self.max_trials is not None and len(configs) > self.max_trials:
            rng = random.Random(self.seed)
            configs = rng.sample(configs, self.max_trials)
        return configs

    def _trial_fit_kwargs(self) -> Dict[str, Any]:
        """fit() kwargs for one trial, with backend/store threaded in.

        Explicit ``fit_kwargs`` entries win, so callers who already pass
        ``backend=`` there keep their setting.
        """
        kwargs = dict(self.fit_kwargs)
        if self.backend is not None:
            kwargs.setdefault("backend", self.backend)
        if self.fit_store is not None:
            kwargs.setdefault("fit_store", self.fit_store)
        return kwargs

    def run(self) -> SearchResult:
        if self.incremental:
            return self._run_incremental()
        trials: List[TrialResult] = []
        fit_kwargs = self._trial_fit_kwargs()
        for params in self.configurations():
            pipeline = self.builder(params)
            start = time.perf_counter()
            fitted = pipeline.fit(**fit_kwargs)
            fit_seconds = time.perf_counter() - start
            score = self.scorer(fitted)
            trials.append(TrialResult(
                params=params, score=score, fit_seconds=fit_seconds,
                selections=dict(fitted.training_report.selections
                                if fitted.training_report else {}),
                pipeline=fitted if self.keep_pipelines else None))
        return SearchResult(trials)

    def _run_incremental(self) -> SearchResult:
        """One union fit for the whole grid; see SweepPlanner."""
        from repro.incremental.sweep import SweepPlanner

        configs = self.configurations()
        planner = SweepPlanner(self.builder, configs,
                               fit_kwargs=self.fit_kwargs)
        start = time.perf_counter()
        fitted_trials, sweep_report = planner.run(
            backend=self.backend, fit_store=self.fit_store)
        per_trial = (time.perf_counter() - start) / max(len(configs), 1)
        trials: List[TrialResult] = []
        for params, fitted in zip(configs, fitted_trials):
            score = self.scorer(fitted)
            trials.append(TrialResult(
                params=params, score=score, fit_seconds=per_trial,
                selections=dict(fitted.training_report.selections
                                if fitted.training_report else {}),
                pipeline=fitted if self.keep_pipelines else None))
        return SearchResult(trials, sweep_report=sweep_report)
