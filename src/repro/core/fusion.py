"""Operator fusion: pack adjacent transformer nodes into one stage.

KeystoneML packs operators "up until pipeline breakers into the same job"
(paper §2.3).  In the in-process engine, each transformer node is one
partition-level pass; fusing chains of transformer nodes into a single
:class:`FusedTransformer` removes the per-node dispatch and is the
rewrite-level analogue of Spark stage packing.

Fusion is safe because transformers are deterministic and side-effect
free.  A node is fusable into its parent when the parent is a transformer
node with exactly one consumer (fusing a shared node would duplicate
work — the opposite of what CSE just achieved).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core import graph as g
from repro.core.operators import Transformer


class FusedTransformer(Transformer):
    """Composition of several transformers applied in sequence."""

    def __init__(self, stages: List[Transformer]):
        if not stages:
            raise ValueError("FusedTransformer requires at least one stage")
        self.stages = list(stages)
        # A fused stage's scan count is the max of its members' (they run
        # in one pass, but an iterative member would still re-pull inputs).
        self.weight = max(getattr(s, "weight", 1) for s in stages)

    def apply(self, item: Any) -> Any:
        for stage in self.stages:
            item = stage.apply(item)
        return item

    def apply_partition(self, items: List[Any]) -> List[Any]:
        for stage in self.stages:
            items = stage.apply_partition(items)
        return items

    def columnar_kernel(self):
        from repro.core.kernels import ChainKernel

        kernels = [s.columnar_kernel() for s in self.stages]
        if any(k is None for k in kernels):
            return None
        return ChainKernel(kernels)

    def __repr__(self) -> str:
        names = "+".join(type(s).__name__ for s in self.stages)
        return f"FusedTransformer({names})"


def fuse_transformer_chains(sinks: List[g.OpNode]) -> List[g.OpNode]:
    """Rewrite the DAG, fusing single-consumer transformer chains.

    Returns new sinks.  Nodes with multiple consumers, estimator nodes,
    apply nodes and sources are left as fusion boundaries.
    """
    succ = g.successors_map(sinks)
    rewritten: Dict[int, g.OpNode] = {}

    def consumers(node: g.OpNode) -> int:
        return len(succ.get(node.id, []))

    def rebuild(node: g.OpNode) -> g.OpNode:
        if node.id in rewritten:
            return rewritten[node.id]
        new_parents = tuple(rebuild(p) for p in node.parents)

        if node.kind == g.TRANSFORMER:
            parent = new_parents[0]
            original_parent = node.parents[0]
            if (parent.kind == g.TRANSFORMER
                    and consumers(original_parent) == 1):
                # Merge this node into its (already rebuilt) parent.
                parent_ops = (parent.op.stages
                              if isinstance(parent.op, FusedTransformer)
                              else [parent.op])
                fused = FusedTransformer(parent_ops + [node.op])
                out = g.OpNode(g.TRANSFORMER, fused, parent.parents,
                               label=repr(fused))
                rewritten[node.id] = out
                return out

        if all(np_ is op_ for np_, op_ in zip(new_parents, node.parents)):
            rewritten[node.id] = node
            return node
        out = g.OpNode(node.kind, node.op, new_parents, node.label)
        rewritten[node.id] = out
        return out

    return [rebuild(s) for s in sinks]


def count_fused(sinks: List[g.OpNode]) -> int:
    """Number of nodes fusion removes (for reporting)."""
    before = len(g.ancestors(sinks))
    after = len(g.ancestors(fuse_transformer_chains(sinks)))
    return before - after
