"""Automatic materialization (paper Section 4.3, Algorithm 1).

Given per-node execution times, output sizes and iteration weights (from the
pipeline profile), choose the set of nodes to cache that minimizes total
execution time under a memory budget.

Cost semantics (the paper's T(v)/C(v) recursion, written as a sum):

- ``C(v)`` — number of times v's output is requested: each execution of a
  successor ``p`` scans its inputs ``w_p`` times, and ``p`` executes once if
  cached, ``C(p)`` times otherwise.  Sinks are requested once.
- ``executions(v)`` = 1 if v is cached else ``C(v)``.
- total time = sum over nodes of ``executions(v) * t(v)`` where ``t(v)`` is
  the per-execution local time (all of v's iterations included).

The greedy algorithm repeatedly caches the node giving the largest runtime
reduction that still fits in memory, stopping when no node improves runtime
(or memory is exhausted).  An exact exponential optimizer is provided for
validating greedy quality on small DAGs — the stand-in for the paper's ILP,
which it found too slow for optimization-time use.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Set, Tuple

from repro.core import graph as g
from repro.core.profiler import PipelineProfile


class MaterializationProblem:
    """A costed DAG ready for cache-set search.

    ``sink_requests`` is how many times each sink's output is requested per
    problem instance.  Training materialization uses the default 1 (the
    sink is pulled once); the serving cache selection re-aims the same
    recursion at inference by setting it to the expected number of
    requests per distinct input — a cached node then executes once while
    an uncached one re-executes per request.
    """

    def __init__(self, sinks: List[g.OpNode], profile: PipelineProfile,
                 sink_requests: float = 1.0):
        if sink_requests < 1.0:
            raise ValueError(
                f"sink_requests must be >= 1, got {sink_requests}")
        self.sinks = sinks
        self.order = g.ancestors(sinks)
        self.succ = g.successors_map(sinks)
        self.t = {n.id: profile.t(n.id) for n in self.order}
        self.size = {n.id: profile.size(n.id) for n in self.order}
        self.weight = {n.id: profile.nodes[n.id].weight for n in self.order}
        self.sink_ids = {s.id for s in sinks}
        self.sink_requests = float(sink_requests)

    # ------------------------------------------------------------------
    def request_counts(self, cache_set: Set[int]) -> Dict[int, float]:
        """C(v) for every node under the given cache set."""
        counts: Dict[int, float] = {}
        for node in reversed(self.order):
            c = self.sink_requests if node.id in self.sink_ids else 0.0
            for p in self.succ[node.id]:
                executions = 1.0 if p.id in cache_set else counts[p.id]
                c += self.weight[p.id] * executions
            counts[node.id] = (max(c, self.sink_requests)
                               if node.id in self.sink_ids else c)
        return counts

    def estimate_runtime(self, cache_set: Set[int]) -> float:
        """Total execution time of the DAG under the given cache set."""
        counts = self.request_counts(cache_set)
        total = 0.0
        for node in self.order:
            executions = 1.0 if node.id in cache_set else counts[node.id]
            # A node never requested (count 0) costs nothing even if cached.
            if counts[node.id] <= 0:
                continue
            total += executions * self.t[node.id]
        return total

    def candidates(self) -> List[g.OpNode]:
        """Nodes whose output can usefully be cached (reused > once)."""
        return [n for n in self.order if not n.is_pipeline_input]


def greedy_cache_set(problem: MaterializationProblem,
                     mem_budget: float) -> Set[int]:
    """Algorithm 1: greedily build the cache set.

    Each round picks the un-cached node whose addition minimizes estimated
    runtime while fitting in remaining memory; stops when no addition
    improves runtime or nothing fits.
    """
    cache: Set[int] = set()
    mem_left = mem_budget
    current = problem.estimate_runtime(cache)
    candidates = problem.candidates()
    while True:
        best_node: Optional[g.OpNode] = None
        best_runtime = current
        for node in candidates:
            if node.id in cache or problem.size[node.id] > mem_left:
                continue
            runtime = problem.estimate_runtime(cache | {node.id})
            if runtime < best_runtime:
                best_node = node
                best_runtime = runtime
        if best_node is None:
            return cache
        cache.add(best_node.id)
        mem_left -= problem.size[best_node.id]
        current = best_runtime


def exact_cache_set(problem: MaterializationProblem,
                    mem_budget: float,
                    max_nodes: int = 20) -> Set[int]:
    """Exhaustive optimum over all feasible cache sets (small DAGs only).

    Reproduces the role of the paper's ILP formulation: a ground-truth
    optimum used to validate the greedy algorithm, impractical for large
    pipelines.
    """
    candidates = [n.id for n in problem.candidates()]
    if len(candidates) > max_nodes:
        raise ValueError(
            f"exact optimizer limited to {max_nodes} candidate nodes, "
            f"got {len(candidates)}")
    best_set: Set[int] = set()
    best_runtime = problem.estimate_runtime(set())
    for r in range(1, len(candidates) + 1):
        for combo in combinations(candidates, r):
            if sum(problem.size[i] for i in combo) > mem_budget:
                continue
            runtime = problem.estimate_runtime(set(combo))
            if runtime < best_runtime - 1e-12:
                best_runtime = runtime
                best_set = set(combo)
    return best_set


# ----------------------------------------------------------------------
# Strategies (paper Section 5.4 comparison)
# ----------------------------------------------------------------------

GREEDY = "greedy"
LRU = "lru"
RULE_BASED = "rule"
NONE = "none"
ALL = "all"

STRATEGIES = (GREEDY, LRU, RULE_BASED, NONE, ALL)


def choose_cache_set(strategy: str, problem: MaterializationProblem,
                     mem_budget: float) -> Tuple[Set[int], bool]:
    """Pick the nodes marked for caching plus whether to use LRU admission.

    Returns ``(node_ids, use_lru)``: under LRU every intermediate is marked
    cacheable and the byte-budgeted LRU cache decides what stays (Spark's
    default behaviour); under the rule-based strategy only estimator outputs
    (fitted models, always retained by the executor) are kept, so no dataset
    nodes are marked.  ``greedy`` pins the Algorithm-1 selection.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown caching strategy {strategy!r}; "
                         f"expected one of {STRATEGIES}")
    if strategy == NONE or strategy == RULE_BASED:
        return set(), False
    if strategy == LRU or strategy == ALL:
        ids = {n.id for n in problem.candidates() if n.kind != g.ESTIMATOR}
        return ids, strategy == LRU
    return greedy_cache_set(problem, mem_budget), False
