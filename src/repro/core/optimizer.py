"""The pipeline optimizer: an ordered, extensible registry of passes.

:class:`Optimizer` runs a list of :class:`~repro.core.passes.Pass` objects
over a :class:`~repro.core.plan.PlanState` and returns an inspectable
:class:`~repro.core.plan.PhysicalPlan`::

    from repro.core import Optimizer, CSEPass, OperatorSelectionPass, \
        MaterializationPass

    opt = Optimizer([CSEPass(), OperatorSelectionPass((128, 256)),
                     MaterializationPass(mem_budget_bytes=2e9)])
    plan = opt.optimize(pipe, resources)
    print(plan.explain())          # decisions, before any training
    model = plan.execute()

The registry is plain and ordered: ``append`` / ``insert_before`` /
``insert_after`` / ``remove`` position passes by name, and custom
user-defined passes participate like the built-ins.
:func:`passes_for_level` builds the pass lists behind the paper's
``"none"/"pipe"/"full"`` optimization levels, which
:func:`repro.core.executor.fit_pipeline` keeps exposing as a shim.
"""

from __future__ import annotations

import time
import warnings
from typing import List, Optional, Sequence, Tuple

from repro.cluster.resources import ResourceDescriptor, local_machine
from repro.core import graph as g
from repro.core.executor import LEVEL_FULL, LEVEL_PIPE, LEVELS
from repro.core.passes import (
    CSEPass,
    FusionPass,
    MaterializationPass,
    OperatorSelectionPass,
    Pass,
    ProfilingPass,
)
from repro.core.plan import PassDecision, PhysicalPlan, PlanState


def default_passes(sample_sizes: Tuple[int, int] = (256, 512),
                   mem_budget_bytes: float = float("inf")) -> List[Pass]:
    """The full KeystoneML optimization stack (level ``"full"``)."""
    return passes_for_level(LEVEL_FULL, sample_sizes=sample_sizes,
                            mem_budget_bytes=mem_budget_bytes)


def passes_for_level(level: str,
                     sample_sizes: Tuple[int, int] = (256, 512),
                     mem_budget_bytes: float = float("inf"),
                     cache_strategy: Optional[str] = None,
                     fuse: bool = False,
                     _stacklevel: int = 2) -> List[Pass]:
    """Pass list for one of the paper's optimization levels.

    ``"none"`` runs no rewrites or profiling (only materialization, which
    defaults to no caching without a profile); ``"pipe"`` adds CSE and
    profiling; ``"full"`` adds operator selection.  ``fuse`` inserts a
    :class:`FusionPass` after CSE — it is an optimization, so it is
    ignored (with a warning) at level ``"none"``.
    """
    if level not in LEVELS:
        raise ValueError(f"unknown optimization level {level!r}; "
                         f"expected one of {LEVELS}")
    passes: List[Pass] = []
    if level in (LEVEL_PIPE, LEVEL_FULL):
        passes.append(CSEPass())
        if fuse:
            passes.append(FusionPass())
        if level == LEVEL_FULL:
            passes.append(OperatorSelectionPass(sample_sizes))
        else:
            passes.append(ProfilingPass(sample_sizes))
    elif fuse:
        warnings.warn("fuse=True ignored at level='none': fusion is an "
                      "optimization pass and the level disables "
                      "optimization", stacklevel=_stacklevel)
    passes.append(MaterializationPass(strategy=cache_strategy,
                                      mem_budget_bytes=mem_budget_bytes))
    return passes


class Optimizer:
    """Runs an ordered registry of passes over a pipeline.

    ``passes`` defaults to :func:`default_passes` (the level-``"full"``
    stack).  The list is owned by the optimizer and freely editable,
    either directly (``opt.passes``) or via the positioning helpers.
    """

    def __init__(self, passes: Optional[Sequence[Pass]] = None):
        self.passes: List[Pass] = (list(passes) if passes is not None
                                   else default_passes())

    # ------------------------------------------------------------------
    # Registry management
    # ------------------------------------------------------------------
    def pass_names(self) -> List[str]:
        return [p.name for p in self.passes]

    def append(self, new: Pass) -> "Optimizer":
        self.passes.append(new)
        return self

    def insert_before(self, name: str, new: Pass) -> "Optimizer":
        self.passes.insert(self._index_of(name), new)
        return self

    def insert_after(self, name: str, new: Pass) -> "Optimizer":
        self.passes.insert(self._index_of(name) + 1, new)
        return self

    def remove(self, name: str) -> "Optimizer":
        del self.passes[self._index_of(name)]
        return self

    def _index_of(self, name: str) -> int:
        for i, p in enumerate(self.passes):
            if p.name == name:
                return i
        raise KeyError(f"no pass named {name!r} in registry "
                       f"{self.pass_names()}")

    # ------------------------------------------------------------------
    # Optimization
    # ------------------------------------------------------------------
    def optimize(self, pipeline,
                 resources: Optional[ResourceDescriptor] = None,
                 level: str = "custom") -> PhysicalPlan:
        """Run every pass in order; returns an inspectable physical plan.

        ``level`` only labels the plan (and the eventual training report);
        the actual behaviour is fully determined by the pass list.
        """
        resources = resources or local_machine()
        g.validate_dag([pipeline.sink])
        state = PlanState(sink=pipeline.sink,
                          input_node=pipeline.input_node,
                          resources=resources)
        start = time.perf_counter()
        for p in self.passes:
            decision = PassDecision(name=p.name)
            state.decisions.append(decision)
            pass_start = time.perf_counter()
            result = p.run(state)
            if result is not None and result is not state:
                # A replacement state must not lose the decision log.
                if not result.decisions:
                    result.decisions = state.decisions
                state = result
            decision.seconds = time.perf_counter() - pass_start
        return PhysicalPlan(state, level=level,
                            optimize_seconds=time.perf_counter() - start)

    def __repr__(self) -> str:
        return f"Optimizer(passes={self.pass_names()})"
