"""OpProgram: the single lowered IR behind serving and shard execution.

KeystoneML's core bet is that a pipeline is a *program* the optimizer can
lower and re-target.  This module is where the lowering lives: a
(fitted or training) operator DAG flattens once into an :class:`OpProgram`
— a topologically-ordered list of :class:`Op` slots, each reading its
inputs from earlier slots — and every consumer re-targets that one IR:

- :mod:`repro.serving.compiler` wraps it in an ``InferencePlan`` (the
  online per-item / micro-batched execution view);
- :class:`~repro.core.backends.process.ProcessPoolBackend` pickles it as
  the shard program worker processes run over partition chunks.

Each op additionally carries a **content-addressed key**: a structural
fingerprint of the operator (type plus fitted state), folded together
with the keys of its inputs.  Two ops compute the same function of the
request iff their keys are equal — independently trained pipelines that
share a featurization prefix produce equal keys for the prefix, which is
what lets :class:`~repro.serving.cache.ServingCache` share cached
intermediates across model versions.  Keys deliberately ignore DAG node
ids (those are per-process counters) and object identity; an operator
whose state cannot be walked gets a never-repeating key — degrading to
"no sharing", never to a false cache hit.

Lowered programs can be rewritten before execution by
:class:`ProgramPass` objects (e.g. :class:`DeadOpElimination`).  The
optimizer hands them over via
:class:`~repro.core.passes.LoweringPass`, which records the pass list on
the :class:`~repro.core.plan.PlanState`; both the serving compiler and
the process backend apply them after lowering.
"""

from __future__ import annotations

import functools
import hashlib
import itertools
import re
import types
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import graph as g

try:
    import scipy.sparse as sp
except ImportError:  # pragma: no cover - scipy is a hard dep elsewhere
    sp = None

#: op kinds of a lowered program
INPUT = "input"
SOURCE = "source"
TRANSFORM = "transform"
GATHER = "gather"


class UnshippableFlow(Exception):
    """The flow cannot be lowered into a self-contained program.

    Raised by :func:`lower_training_program` when the walk reaches a node
    that has no meaning inside a shard program (an unbound pipeline
    input, a source with no dataset resolver, an unknown node kind).
    Backends catch it and fall back to in-parent execution.
    """


# ----------------------------------------------------------------------
# Content-addressed op keys
# ----------------------------------------------------------------------
#
# An op key digests (kind, operator structure, input keys).  Operator
# structure covers the type and the full fitted state — weights, vocab
# tables, nested stages — walked recursively, so two independently
# trained operators that converged to byte-identical state fingerprint
# equal.  Callables hash by their code (bytecode, consts, captured
# values), not by source location or object identity.


def feed_basic(h, value: Any, memo, recurse) -> bool:
    """Feed the common leaf/container hashing grammar; False if unhandled.

    The one value grammar shared between op fingerprints (here) and
    request fingerprints (:func:`repro.serving.cache.fingerprint`) —
    injective by construction: variable-length leaves are
    length-prefixed and containers are tagged and counted, so bytes
    never shift across a value boundary and collide.  ``recurse(h, item,
    memo)`` dispatches nested values through the caller's full grammar.
    """
    if value is None or isinstance(value, (bool, int, float, complex)):
        h.update(b"n")
        h.update(repr(value).encode())
    elif isinstance(value, str):
        data = value.encode("utf-8", "surrogatepass")
        h.update(b"s")
        h.update(str(len(data)).encode())
        h.update(b":")
        h.update(data)
    elif isinstance(value, bytes):
        h.update(b"b")
        h.update(str(len(value)).encode())
        h.update(b":")
        h.update(value)
    elif isinstance(value, np.ndarray):
        if value.dtype == object:
            # tobytes() on dtype=object would hash raw element
            # *pointers* — address-based aliasing; hash the elements.
            h.update(b"O")
            h.update(repr(value.shape).encode())
            for item in value.ravel().tolist():
                h.update(b"\x00")
                recurse(h, item, memo)
        else:
            h.update(b"a")
            h.update(str(value.dtype).encode())
            h.update(repr(value.shape).encode())
            h.update(np.ascontiguousarray(value).tobytes())
    elif sp is not None and sp.issparse(value):
        csr = value.tocsr()
        h.update(b"p")
        h.update(repr(csr.shape).encode())
        h.update(np.ascontiguousarray(csr.indptr).tobytes())
        h.update(np.ascontiguousarray(csr.indices).tobytes())
        h.update(np.ascontiguousarray(csr.data).tobytes())
    elif isinstance(value, (list, tuple)):
        h.update(b"l" if isinstance(value, list) else b"t")
        h.update(str(len(value)).encode())
        for item in value:
            h.update(b"\x00")
            recurse(h, item, memo)
    elif isinstance(value, dict):
        h.update(b"d")
        h.update(str(len(value)).encode())
        for key in sorted(value, key=repr):
            h.update(b"\x00")
            recurse(h, key, memo)
            h.update(b"\x01")
            recurse(h, value[key], memo)
    elif isinstance(value, np.generic):
        h.update(b"g")
        h.update(str(value.dtype).encode())
        h.update(value.tobytes())
    else:
        return False
    return True


def _feed(h, value: Any, memo: set) -> None:
    if feed_basic(h, value, memo, _feed):
        pass
    elif isinstance(value, (set, frozenset)):
        h.update(b"S")
        digests = []
        for item in value:
            sub = hashlib.blake2b(digest_size=16)
            _feed(sub, item, memo)
            digests.append(sub.digest())
        for digest in sorted(digests):
            h.update(digest)
    elif isinstance(value, types.FunctionType):
        if id(value) in memo:
            # Recursive function (directly or via its own globals).
            h.update(b"fcycle")
            return
        memo = memo | {id(value)}
        h.update(b"f")
        _feed_code(h, value.__code__, memo)
        _feed(h, value.__defaults__, memo)
        _feed(h, value.__kwdefaults__, memo)
        if value.__closure__:
            for cell in value.__closure__:
                h.update(b"\x02")
                try:
                    _feed(h, cell.cell_contents, memo)
                except ValueError:  # empty cell
                    h.update(b"empty")
        # A function's behaviour also depends on the module globals it
        # reads (co_names resolved via __globals__) — fold their values
        # in, or two functions differing only in a referenced constant
        # would alias.  Modules feed by name (walking a whole module
        # would be unbounded); builtins are not in __globals__ and are
        # covered by co_names in the code hash.
        fn_globals = value.__globals__
        for name in value.__code__.co_names:
            if name in fn_globals:
                h.update(b"\x03")
                _feed(h, name, memo)
                referenced = fn_globals[name]
                if isinstance(referenced, types.ModuleType):
                    h.update(b"M")
                    _feed(h, getattr(referenced, "__name__", "?"), memo)
                else:
                    _feed(h, referenced, memo)
    elif isinstance(value, (types.BuiltinFunctionType, type)):
        h.update(b"q")
        _feed(h, getattr(value, "__module__", "") or "?", memo)
        _feed(h, getattr(value, "__qualname__", None) or repr(value), memo)
    elif isinstance(value, types.CodeType):
        _feed_code(h, value, memo)
    elif isinstance(value, re.Pattern):
        # Compiled patterns (Tokenizer and friends) are C objects whose
        # defining state is the pattern text and flags.
        h.update(b"r")
        _feed(h, value.pattern, memo)
        _feed(h, value.flags, memo)
    elif isinstance(value, functools.partial):
        # partial exposes an (empty) __dict__ while its real state lives
        # in C-level fields; hash those explicitly or two different
        # partials would collapse to a type-name-only hash.
        h.update(b"P")
        _feed(h, value.func, memo)
        _feed(h, value.args, memo)
        _feed(h, value.keywords, memo)
    elif isinstance(value, types.MethodType):
        # Bound methods delegate __dict__ to the function; hash function
        # and receiver explicitly for the same reason as partial.
        h.update(b"m")
        _feed(h, value.__func__, memo)
        _feed(h, value.__self__, memo)
    else:
        _feed_object(h, value, memo)


def _feed_code(h, code: types.CodeType, memo: set) -> None:
    """Hash a code object by what it computes, not where it was written.

    Filename, line numbers and debug tables are excluded so the same
    lambda built by the same factory in two processes — or pasted at two
    source locations — fingerprints equal.
    """
    h.update(b"c")
    _feed(h, code.co_code, memo)
    _feed(h, repr(code.co_names), memo)
    _feed(h, repr(code.co_varnames), memo)
    _feed(h, repr((code.co_argcount, code.co_kwonlyargcount, code.co_flags)), memo)
    for const in code.co_consts:
        h.update(b"\x00")
        _feed(h, const, memo)


def _feed_object(h, value: Any, memo: set) -> None:
    """Hash an arbitrary object: type identity plus recursive state.

    State comes from a class-defined ``__getstate__`` when one exists
    (e.g. ``FittedPipeline`` drops its lock there), else from
    ``__dict__`` and ``__slots__`` — for Python-defined classes only.  A
    leaf that resists introspection (C types, empty containers on
    C-backed objects) feeds a never-reused opaque token, so an
    un-walkable operator degrades to "no sharing", not to a wrong cache
    hit.
    """
    if id(value) in memo:
        h.update(b"cycle")
        return
    memo = memo | {id(value)}
    cls = type(value)
    h.update(b"o")
    _feed(h, getattr(cls, "__module__", "?"), memo)
    _feed(h, cls.__qualname__, memo)
    getstate = getattr(cls, "__getstate__", None)
    default_getstate = getattr(object, "__getstate__", None)  # None on 3.10
    state = None
    if getstate is not None and getstate is not default_getstate:
        try:
            state = value.__getstate__()
        except Exception:
            state = None
    if state is None:
        # C-implemented types (non-heap) can hold state invisible to
        # __dict__/__slots__ (functools.partial and bound methods are the
        # handled examples); a type-name-only hash would alias distinct
        # values, so anything not Python-defined is opaque.
        if not cls.__flags__ & _TPFLAGS_HEAPTYPE:
            _feed_opaque(h)
            return
        state = {}
        introspectable = False
        if hasattr(value, "__dict__"):
            introspectable = True
            state.update(vars(value))
        for klass in cls.__mro__:
            slots = getattr(klass, "__slots__", ())
            if isinstance(slots, str):
                slots = (slots,)
            for slot in slots:
                introspectable = True
                if slot != "__dict__" and hasattr(value, slot):
                    state[slot] = getattr(value, slot)
        if not introspectable:
            _feed_opaque(h)
            return
    try:
        _feed(h, state, memo)
    except RecursionError:  # pathological nesting: degrade to opaque
        _feed_opaque(h)


#: Python-defined (heap) type flag — C types' state is not introspectable
_TPFLAGS_HEAPTYPE = 1 << 9

_opaque_tokens = itertools.count()


def _feed_opaque(h) -> None:
    """Feed a token that never repeats, so un-walkable leaves never alias.

    Hashing ``id(value)`` would look stable but is not: content keys
    outlive operators in the shared serving cache, and a recycled
    address after garbage collection would silently alias two different
    operators to one key (a wrong answer).  A never-reused token makes
    an un-walkable operator degrade to "no sharing, ever" instead.
    """
    h.update(b"opaque")
    h.update(str(next(_opaque_tokens)).encode())


def structural_fingerprint(op: Any) -> str:
    """Hex digest of an operator's structure (type + parameters + state)."""
    h = hashlib.blake2b(digest_size=16)
    _feed(h, op, set())
    return h.hexdigest()


def op_key(kind: str, op: Any, parent_keys: Sequence[str]) -> str:
    """Content-addressed key: H(kind, operator structure, input keys)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(kind.encode())
    h.update(b"\x00")
    _feed(h, op, set())
    for parent_key in parent_keys:
        h.update(b"\x01")
        h.update(parent_key.encode())
    return h.hexdigest()


#: every pipeline-input placeholder computes the same function (identity
#: on the request item), so it gets one constant key — this is what makes
#: two versions' featurization prefixes fingerprint equal from the root
INPUT_KEY = hashlib.blake2b(b"pipeline-input", digest_size=16).hexdigest()


def _source_key(node: g.OpNode) -> str:
    """Bound sources are keyed by node identity: their partitions are fed
    from the parent process, so two sources never alias by content."""
    h = hashlib.blake2b(digest_size=16)
    h.update(b"source")
    h.update(str(node.id).encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Training keys: content-addressed identity for *unfitted* training DAGs
# ----------------------------------------------------------------------
#
# Lowered-program keys address fitted state; the incremental training
# engine (repro.incremental) needs the dual: a key per node of a
# *training* DAG — estimators and apply nodes included, bound datasets
# hashed by content — computable before anything is fitted.  Two nodes
# with equal training keys fit to byte-identical state (fits are
# deterministic functions of operator parameters and training bytes), so
# the keys are what a FitStore splices cached fits by and what a
# hyperparameter sweep dedupes shared prefixes by.


def dataset_fingerprint(ds, memo: Optional[Dict[int, str]] = None) -> str:
    """Content digest of a dataset: partition boundaries plus row bytes.

    Partition structure is folded in deliberately: reduction trees
    (``tree_combine``) and blocked solvers are shaped by partitioning, so
    the same rows split differently may not fit byte-identically.
    ``memo`` (keyed by ``id(ds)``) skips re-hashing datasets the caller
    already fingerprinted — valid only while the caller holds references
    to every memoized dataset.
    """
    if memo is not None and id(ds) in memo:
        return memo[id(ds)]
    h = hashlib.blake2b(digest_size=16)
    h.update(b"dataset")
    h.update(str(ds.num_partitions).encode())
    for part in ds.iter_partitions():
        h.update(b"\x00")
        _feed(h, part, set())
    digest = h.hexdigest()
    if memo is not None:
        memo[id(ds)] = digest
    return digest


def partition_fingerprint(rows: Sequence[Any]) -> str:
    """Content digest of one partition's rows (streaming-refit keying)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(b"partition")
    _feed(h, list(rows), set())
    return h.hexdigest()


def training_keys(
    roots: Sequence[g.OpNode],
    dataset_memo: Optional[Dict[int, str]] = None,
) -> Dict[int, str]:
    """Content-addressed key per node of a (possibly unfitted) training DAG.

    Unlike lowered-program keys, estimator and apply nodes participate:
    an estimator's key digests its *unfitted* operator structure
    (type + hyperparameters) with the keys of its training flows, and an
    apply node's key folds the estimator key with the data-parent key —
    so a hyperparameter change re-keys exactly the changed estimator and
    everything downstream of its output.  Bound sources hash by dataset
    *content* (unlike :func:`_source_key`), so independently built
    pipelines over equal data produce equal keys — the property warm
    retrain and sweep deduplication splice by.
    """
    keys: Dict[int, str] = {}
    for node in g.reachable(roots):
        if node.is_pipeline_input:
            key = INPUT_KEY
        elif node.kind == g.SOURCE:
            key = op_key("source", None, (dataset_fingerprint(node.op, dataset_memo),))
        elif node.kind == g.TRANSFORMER:
            key = op_key(TRANSFORM, node.op, (keys[node.parents[0].id],))
        elif node.kind == g.ESTIMATOR:
            key = op_key("estimator", node.op, tuple(keys[p.id] for p in node.parents))
        elif node.kind == g.APPLY:
            key = op_key("apply", None, tuple(keys[p.id] for p in node.parents))
        elif node.kind == g.GATHER:
            key = op_key(GATHER, None, tuple(keys[p.id] for p in node.parents))
        else:
            raise ValueError(f"cannot key node kind {node.kind!r}")
        keys[node.id] = key
    return keys


def partition_flow_keys(
    roots: Sequence[g.OpNode],
    index: int,
    *,
    model_of: Callable[[g.OpNode], Any],
) -> Dict[int, str]:
    """Per-partition content keys of a training flow (streaming refit).

    The partition-``index`` slice of :func:`training_keys`: sources hash
    one partition's rows instead of the whole dataset, and apply nodes
    hash the *fitted* upstream model (resolved via ``model_of``) — so a
    stored per-partition sufficient statistic is reusable iff the
    partition bytes, the transformation chain, and every upstream fitted
    model are all unchanged.  Appending partitions to a source leaves the
    existing partitions' keys intact, which is what lets a refit merge
    new statistics without replaying old data.  Raises
    :class:`UnshippableFlow` for flows that cannot be keyed partition-wise
    (an unbound pipeline input) and ``IndexError`` when a source has no
    partition ``index``.
    """
    keys: Dict[int, str] = {}
    for node in g.reachable(roots):
        if node.kind == g.ESTIMATOR:
            continue  # referenced only through apply nodes
        if node.is_pipeline_input:
            raise UnshippableFlow("flow reached the unbound pipeline input")
        if node.kind == g.SOURCE:
            key = op_key(
                "part", None, (partition_fingerprint(node.op.partition(index)),)
            )
        elif node.kind == g.TRANSFORMER:
            key = op_key(TRANSFORM, node.op, (keys[node.parents[0].id],))
        elif node.kind == g.APPLY:
            model = model_of(node.parents[0])
            if model is None:
                raise RuntimeError(
                    f"apply node {node.label!r} references an unfitted "
                    "estimator; estimators must be scheduled in "
                    "dependency order"
                )
            key = op_key(TRANSFORM, model, (keys[node.parents[1].id],))
        elif node.kind == g.GATHER:
            key = op_key(GATHER, None, tuple(keys[p.id] for p in node.parents))
        else:
            raise UnshippableFlow(f"cannot key node kind {node.kind}")
        keys[node.id] = key
    return keys


# ----------------------------------------------------------------------
# The IR
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Op:
    """One instruction: compute ``slot`` from earlier ``parents`` slots.

    ``node_id`` is the legacy DAG node id (per-process, used for
    reporting and profiling); ``key`` is the content-addressed identity
    (stable across processes and model versions).
    """

    slot: int
    node_id: int
    kind: str
    op: Any
    parents: Tuple[int, ...]
    label: str
    key: str


class OpProgram:
    """A flat, topologically-ordered program lowered from an operator DAG.

    Immutable by convention: passes return rewritten copies.  Plain data
    all the way down, so programs pickle (the process backend ships them
    to spawn workers verbatim).
    """

    def __init__(
        self,
        ops: Sequence[Op],
        input_slot: Optional[int] = None,
        root_slots: Tuple[int, ...] = (),
    ):
        self.ops = list(ops)
        self.input_slot = input_slot
        self.root_slots = tuple(root_slots)
        self._slots = {op.node_id: op.slot for op in self.ops}
        self._keys = {op.node_id: op.key for op in self.ops}

    @property
    def sink_slot(self) -> int:
        """The last root's slot (the single sink, for inference programs)."""
        return self.root_slots[-1]

    def slot_of(self, node_id: int) -> int:
        return self._slots[node_id]

    def key_of(self, node_id: int) -> str:
        return self._keys[node_id]

    @property
    def node_ids(self):
        return self._slots.keys()

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def __getstate__(self):
        return {
            "ops": self.ops,
            "input_slot": self.input_slot,
            "root_slots": self.root_slots,
        }

    def __setstate__(self, state):
        self.__init__(state["ops"], state["input_slot"], state["root_slots"])

    def describe(self) -> str:
        lines = [f"OpProgram({len(self.ops)} ops)"]
        for op in self.ops:
            parents = ",".join(str(p) for p in op.parents)
            lines.append(
                f"  %{op.slot} = {op.kind}({op.label})"
                f" <- [{parents}]  key={op.key[:12]}"
            )
            # Kernel stages list which original ops folded into them, so
            # vectorization decisions read like fusion/CSE decisions.
            for member in getattr(op.op, "member_labels", ()):
                lines.append(f"      fold {member}")
        return "\n".join(lines)

    def without_dead_ops(self) -> "OpProgram":
        """Drop ops not reachable from the roots; renumber slots densely.

        The reference :class:`ProgramPass` rewrite: lowering a sub-flow
        of a larger program (or a pass that redirects parents) leaves
        unreachable slots behind, which would still be computed per
        request.  Returns ``self`` when nothing is dead.
        """
        live = set(self.root_slots)
        for op in reversed(self.ops):
            if op.slot in live:
                live.update(op.parents)
        if len(live) == len(self.ops):
            return self
        remap: Dict[int, int] = {}
        new_ops: List[Op] = []
        for op in self.ops:
            if op.slot not in live:
                continue
            slot = len(new_ops)
            remap[op.slot] = slot
            new_ops.append(
                Op(
                    slot,
                    op.node_id,
                    op.kind,
                    op.op,
                    tuple(remap[p] for p in op.parents),
                    op.label,
                    op.key,
                )
            )
        return OpProgram(
            new_ops,
            input_slot=remap.get(self.input_slot),
            root_slots=tuple(remap[s] for s in self.root_slots),
        )

    def __repr__(self) -> str:
        return (
            f"OpProgram(ops={len(self.ops)}, input_slot={self.input_slot}, "
            f"root_slots={self.root_slots})"
        )


# ----------------------------------------------------------------------
# Lowering
# ----------------------------------------------------------------------


def _lower(
    roots: Sequence[g.OpNode],
    *,
    source_of: Optional[Callable[[g.OpNode], Any]] = None,
    model_of: Optional[Callable[[g.OpNode], Any]] = None,
    inference: bool = False,
    compute_keys: bool = True,
    source_key_of: Optional[Callable[[g.OpNode], str]] = None,
) -> Tuple[OpProgram, Dict[int, Any]]:
    """The one topological lowering walk behind both program flavours.

    Every reachable non-estimator node becomes one op reading parent
    values from earlier slots; content-addressed keys are folded up as
    the walk emits.  ``source_of`` may claim any node as an externally
    fed source (bound training data, a materialized intermediate, the
    virtual source standing in for apply-time input); ``model_of``
    resolves an apply node's estimator parent to its fitted transformer.
    ``compute_keys=False`` skips key hashing (training programs: nothing
    in the shard path reads keys, and hashing every fitted model's full
    state per wave is not free) — ops then carry empty keys.
    ``source_key_of`` overrides the per-node-identity :func:`_source_key`
    for claimed sources — the actor runtime passes dataset-content keys
    here so a shard cached for one fit is addressable from the next.
    """
    ops: List[Op] = []
    slots: Dict[int, int] = {}
    keys: Dict[int, str] = {}
    sources: Dict[int, Any] = {}
    input_slot: Optional[int] = None

    def emit(node: g.OpNode, kind: str, op: Any, parents, key) -> None:
        slot = len(ops)
        if not compute_keys:
            key = ""
        elif callable(key):
            key = key()
        ops.append(Op(slot, node.id, kind, op, tuple(parents), node.label, key))
        slots[node.id] = slot
        keys[node.id] = key

    for node in g.reachable(roots):
        if node.kind == g.ESTIMATOR:
            continue  # pipeline breakers: consumed at fit time, never flow
        ds = source_of(node) if source_of is not None else None
        if ds is not None:
            if source_key_of is not None:
                emit(node, SOURCE, None, (), lambda n=node: source_key_of(n))
            else:
                emit(node, SOURCE, None, (), _source_key(node))
            sources[node.id] = ds
        elif node.is_pipeline_input:
            if not inference:
                raise UnshippableFlow("flow reached the unbound pipeline input")
            input_slot = len(ops)
            emit(node, INPUT, None, (), INPUT_KEY)
        elif node.kind == g.SOURCE:
            if inference:
                raise ValueError(
                    "fitted pipeline contains an unbound source; only the "
                    "pipeline-input placeholder may appear at inference time"
                )
            raise UnshippableFlow("flow reached a source with no dataset resolver")
        elif node.kind == g.TRANSFORMER:
            parent = node.parents[0]
            emit(
                node,
                TRANSFORM,
                node.op,
                (slots[parent.id],),
                lambda n=node, p=parent: op_key(
                    TRANSFORM, n.op, (keys[p.id],)
                ),
            )
        elif node.kind == g.APPLY:
            model = model_of(node.parents[0]) if model_of is not None else None
            if model is None:
                raise RuntimeError(
                    f"apply node {node.label!r} references an unfitted "
                    "estimator; estimators must be scheduled in "
                    "dependency order"
                )
            parent = node.parents[1]
            emit(
                node,
                TRANSFORM,
                model,
                (slots[parent.id],),
                lambda m=model, p=parent: op_key(
                    TRANSFORM, m, (keys[p.id],)
                ),
            )
        elif node.kind == g.GATHER:
            emit(
                node,
                GATHER,
                None,
                tuple(slots[p.id] for p in node.parents),
                lambda n=node: op_key(
                    GATHER, None, tuple(keys[p.id] for p in n.parents)
                ),
            )
        elif inference:
            raise ValueError(
                f"cannot compile node kind {node.kind!r} into an inference plan"
            )
        else:
            raise UnshippableFlow(f"cannot ship node kind {node.kind}")

    program = OpProgram(
        ops,
        input_slot=input_slot,
        root_slots=tuple(slots[r.id] for r in roots),
    )
    return program, sources


def lower_inference_program(fitted, compute_keys: bool = True) -> OpProgram:
    """Lower a fitted pipeline's DAG into an inference ``OpProgram``.

    Only inference-legal node kinds are accepted (transformers, gathers
    and the pipeline-input placeholder — estimators were consumed at fit
    time); a bound source raises ``ValueError``.  ``compute_keys=False``
    skips the structural hashing of every operator's fitted state — for
    plain ``FittedPipeline.apply`` paths where no serving cache will
    ever read the keys.
    """
    program, _ = _lower([fitted.sink], inference=True, compute_keys=compute_keys)
    return program


def lower_training_program(
    roots: Sequence[g.OpNode],
    *,
    source_of: Callable[[g.OpNode], Any],
    model_of: Optional[Callable[[g.OpNode], Any]] = None,
    compute_keys: bool = False,
    source_key_of: Optional[Callable[[g.OpNode], str]] = None,
) -> Tuple[OpProgram, Dict[int, Any]]:
    """Lower a training flow into a shippable ``(program, sources)`` pair.

    ``sources`` maps source-op node ids to the parent-side datasets that
    feed them partition by partition.  Raises :class:`UnshippableFlow`
    when the flow cannot run inside a worker process.  Content keys are
    skipped by default — the shard path never reads them, and hashing
    every fitted model's state per wave is wasted work; pass
    ``compute_keys=True`` to get addressable training programs (and
    optionally ``source_key_of`` to key claimed sources by dataset
    content rather than node identity).
    """
    return _lower(
        list(roots),
        source_of=source_of,
        model_of=model_of,
        compute_keys=compute_keys,
        source_key_of=source_key_of,
    )


def run_program_passes(
    program: OpProgram, passes: Sequence["ProgramPass"]
) -> OpProgram:
    """Apply lowering passes in order (shared by every program consumer)."""
    for program_pass in passes:
        program = program_pass.run(program)
    return program


# ----------------------------------------------------------------------
# Lowering passes
# ----------------------------------------------------------------------


class ProgramPass:
    """A rewrite over a lowered :class:`OpProgram`.

    The program-level analogue of :class:`~repro.core.passes.Pass`:
    registered on a plan via :class:`~repro.core.passes.LoweringPass`,
    applied after lowering by the serving compiler and the process
    backend.  Implementations must preserve semantics for the program's
    roots — byte-identical outputs for every root slot.
    """

    @property
    def name(self) -> str:
        return type(self).__name__

    def run(self, program: OpProgram) -> OpProgram:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{self.name}()"


class DeadOpElimination(ProgramPass):
    """Remove ops whose outputs no root (transitively) reads."""

    def run(self, program: OpProgram) -> OpProgram:
        return program.without_dead_ops()


class VectorizePass(ProgramPass):
    """Group runs of kernel-capable transform ops into ``KernelStage`` ops.

    The second lowering target behind the :class:`ProgramPass` hook: a
    maximal chain of transform ops whose operators expose a
    batch-invariant columnar kernel (``Transformer.columnar_kernel()``)
    and whose interior links have exactly one consumer collapses into a
    single op backed by :class:`repro.core.kernels.KernelStage` — the
    batch then executes as a handful of numpy calls over one columnar
    block instead of per-op, per-item Python dispatch.

    Structure-preserving bookkeeping:

    - the stage op keeps the *last* member's ``node_id`` and content
      ``key`` — the key already folds the whole member chain (each op
      key digests its parents' keys), so grouped keys combine
      deterministically and a serving cache keyed before the rewrite
      keeps hitting after it;
    - CSE-shared slots (multiple consumers) and root slots never become
      stage interiors, so every externally visible slot survives;
    - dead ops are eliminated first, which makes the pass commute with
      :class:`DeadOpElimination` (either order yields the identical
      program).

    Single vectorizable ops are wrapped too: a stage's batched path is
    byte-identical to ``apply`` where the operator's own BLAS-batched
    ``apply_partition`` override may differ in the last ulp.

    ``boundaries`` is an optional set of content keys that must survive
    as addressable slots: an op whose key is a boundary may *end* a
    stage (its value is the stage output, under its own key) but never
    becomes a stage interior.  ``ModelServer.register`` passes the
    serving-cache selection here, so every cache-marked intermediate —
    including prefix ops shared with sibling versions — still
    materializes for the cache to read and write.
    """

    def __init__(self, boundaries=()):
        self.boundaries = frozenset(boundaries)

    def run(self, program: OpProgram) -> OpProgram:
        from repro.core.kernels import KernelStage

        program = program.without_dead_ops()
        refs: Dict[int, int] = {}
        for op in program.ops:
            for parent in op.parents:
                refs[parent] = refs.get(parent, 0) + 1
        for slot in program.root_slots:
            refs[slot] = refs.get(slot, 0) + 1

        def vectorizable(op: Op) -> bool:
            if op.kind != TRANSFORM or len(op.parents) != 1:
                return False
            # Duck-typed: programs may carry ops outside the Transformer
            # hierarchy (tests, custom rewrites); no kernel, no grouping.
            kernel_of = getattr(op.op, "columnar_kernel", None)
            return kernel_of is not None and kernel_of() is not None

        # Maximal runs: ``open_runs`` maps a run's current last slot to
        # the run while that slot still awaits its single consumer.
        open_runs: Dict[int, List[Op]] = {}
        runs: List[List[Op]] = []
        for op in program.ops:
            if not vectorizable(op):
                continue
            parent = op.parents[0]
            run = open_runs.pop(parent, None)
            if run is None:
                run = [op]
                runs.append(run)
            else:
                run.append(op)
            if refs[op.slot] == 1 and op.key not in self.boundaries:
                open_runs[op.slot] = run
        if not runs:
            return program

        last_to_run = {run[-1].slot: run for run in runs}
        interior = {op.slot for run in runs for op in run[:-1]}

        remap: Dict[int, int] = {}
        new_ops: List[Op] = []
        for op in program.ops:
            if op.slot in interior:
                continue
            slot = len(new_ops)
            run = last_to_run.get(op.slot)
            if run is None:
                new_ops.append(
                    Op(
                        slot,
                        op.node_id,
                        op.kind,
                        op.op,
                        tuple(remap[p] for p in op.parents),
                        op.label,
                        op.key,
                    )
                )
            else:
                stage = KernelStage(
                    [o.op for o in run], [o.label for o in run]
                )
                new_ops.append(
                    Op(
                        slot,
                        op.node_id,
                        TRANSFORM,
                        stage,
                        (remap[run[0].parents[0]],),
                        "kernel[" + "+".join(o.label for o in run) + "]",
                        op.key,
                    )
                )
            remap[op.slot] = slot
        return OpProgram(
            new_ops,
            input_slot=remap.get(program.input_slot),
            root_slots=tuple(remap[s] for s in program.root_slots),
        )
