"""Pipeline construction API (paper Section 2).

A :class:`Pipeline` is a function ``A => B`` represented as an operator DAG
with a distinguished *pipeline input* placeholder.  ``and_then`` chains
transformers and estimators (binding training data at construction, exactly
like the Scala API's ``andThen (Est, data, labels)``), and ``gather`` joins
branches.  Calling :meth:`Pipeline.fit` optimizes and trains the DAG,
returning a :class:`FittedPipeline` usable on new data.
"""

from __future__ import annotations

import threading
from typing import Any, Optional, Sequence, Union

from repro.core import graph as g
from repro.core.operators import (
    Estimator,
    LabelEstimator,
    Transformer,
)
from repro.dataset.dataset import Dataset


class Pipeline:
    """An unfitted pipeline: an operator DAG from input placeholder to sink."""

    def __init__(self, input_node: g.OpNode, sink: g.OpNode):
        if not input_node.is_pipeline_input:
            raise ValueError("input_node must be a pipeline-input placeholder")
        self.input_node = input_node
        self.sink = sink

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls) -> "Pipeline":
        node = g.pipeline_input()
        return cls(node, node)

    @classmethod
    def from_transformer(cls, transformer: Transformer) -> "Pipeline":
        inp = g.pipeline_input()
        sink = g.OpNode(g.TRANSFORMER, transformer, (inp,))
        return cls(inp, sink)

    def and_then(self, nxt: Union[Transformer, Estimator, LabelEstimator,
                                  "Pipeline"],
                 data: Optional[Dataset] = None,
                 labels: Optional[Dataset] = None) -> "Pipeline":
        """Chain the next stage onto this pipeline.

        - ``and_then(transformer)`` appends a transformer.
        - ``and_then(estimator, data)`` fits the estimator on this pipeline
          applied to ``data`` and appends the resulting transformer.
        - ``and_then(label_estimator, data, labels)`` additionally provides
          a labels dataset.
        - ``and_then(other_pipeline)`` splices another pipeline after this
          one.
        """
        if isinstance(nxt, Pipeline):
            if data is not None or labels is not None:
                raise TypeError("data/labels are not accepted when chaining "
                                "a Pipeline")
            spliced = g.substitute(nxt.sink, {nxt.input_node.id: self.sink})
            return Pipeline(self.input_node, spliced)

        if isinstance(nxt, Transformer):
            if data is not None or labels is not None:
                raise TypeError("data/labels are not accepted when chaining "
                                "a Transformer")
            sink = g.OpNode(g.TRANSFORMER, nxt, (self.sink,))
            return Pipeline(self.input_node, sink)

        if isinstance(nxt, LabelEstimator):
            if data is None or labels is None:
                raise TypeError(f"{type(nxt).__name__} requires data and "
                                "labels datasets")
            train_flow = g.substitute(
                self.sink, {self.input_node.id: g.source(data)})
            est = g.OpNode(g.ESTIMATOR, nxt,
                           (train_flow, g.source(labels, label="labels")))
            sink = g.OpNode(g.APPLY, None, (est, self.sink),
                            label=f"apply({type(nxt).__name__})")
            return Pipeline(self.input_node, sink)

        if isinstance(nxt, Estimator):
            if data is None:
                raise TypeError(f"{type(nxt).__name__} requires a data "
                                "dataset")
            if labels is not None:
                raise TypeError(f"{type(nxt).__name__} is unsupervised and "
                                "takes no labels")
            train_flow = g.substitute(
                self.sink, {self.input_node.id: g.source(data)})
            est = g.OpNode(g.ESTIMATOR, nxt, (train_flow,))
            sink = g.OpNode(g.APPLY, None, (est, self.sink),
                            label=f"apply({type(nxt).__name__})")
            return Pipeline(self.input_node, sink)

        raise TypeError(f"cannot chain object of type {type(nxt).__name__}")

    def and_then_trained_on(self, est: Union[Estimator, LabelEstimator],
                            train_pipeline: "Pipeline", data: Dataset,
                            labels: Optional[Dataset] = None) -> "Pipeline":
        """Append an estimator trained on a *different* prefix.

        The estimator is fit on ``train_pipeline`` applied to ``data``
        (e.g. the main featurization followed by a ``ColumnSampler``), and
        the fitted transformer is appended to *this* pipeline — the
        branch structure of the paper's Figure 5, where PCA and GMM train
        on sampled descriptor columns while the main flow keeps all
        descriptors.  Shared prefixes merge under CSE.
        """
        train_flow = g.substitute(
            train_pipeline.sink,
            {train_pipeline.input_node.id: g.source(data)})
        if isinstance(est, LabelEstimator):
            if labels is None:
                raise TypeError(f"{type(est).__name__} requires labels")
            est_node = g.OpNode(g.ESTIMATOR, est,
                                (train_flow, g.source(labels, label="labels")))
        elif isinstance(est, Estimator):
            if labels is not None:
                raise TypeError(f"{type(est).__name__} takes no labels")
            est_node = g.OpNode(g.ESTIMATOR, est, (train_flow,))
        else:
            raise TypeError(f"expected an estimator, got {type(est).__name__}")
        sink = g.OpNode(g.APPLY, None, (est_node, self.sink),
                        label=f"apply({type(est).__name__})")
        return Pipeline(self.input_node, sink)

    @staticmethod
    def gather(branches: Sequence["Pipeline"]) -> "Pipeline":
        """Join branch outputs element-wise into a list (paper Figure 4).

        All branches are re-rooted onto a fresh shared input placeholder, so
        branches built from the same prefix keep their shared structure.
        """
        if not branches:
            raise ValueError("gather requires at least one branch")
        common = g.pipeline_input()
        sinks = []
        for b in branches:
            sinks.append(g.substitute(b.sink, {b.input_node.id: common}))
        sink = g.OpNode(g.GATHER, None, tuple(sinks), label="gather")
        return Pipeline(common, sink)

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, **kwargs) -> "FittedPipeline":
        """Optimize and train; see :func:`repro.core.executor.fit_pipeline`.

        Keyword arguments configure optimization (resources, optimization
        level, memory budget, sample sizes, or an explicit ``passes``
        list) and execution (``backend=`` selects an
        :class:`~repro.core.backends.ExecutionBackend` or a name from
        ``repro.core.backends.BACKENDS``; ``fit_store=`` attaches a
        :class:`~repro.incremental.FitStore` so fitted estimator state is
        spliced from / written back to the store — see :meth:`refit`);
        defaults run the full KeystoneML optimization stack on a local
        resource descriptor with serial execution.  For an inspectable
        plan before training, use
        :meth:`repro.core.optimizer.Optimizer.optimize` instead —
        ``fit(level=...)`` is a shim over the same pass pipeline.
        """
        from repro.core.executor import fit_pipeline

        return fit_pipeline(self, **kwargs)

    def refit(self, store, **kwargs) -> "FittedPipeline":
        """Warm retrain against a :class:`~repro.incremental.FitStore`.

        Sugar for :func:`repro.incremental.refit`: estimators whose
        training keys hit the store are spliced in fitted, everything
        else fits cold (and is stored for next time).  ``kwargs`` are
        :meth:`fit` keyword arguments.
        """
        from repro.incremental.refit import refit

        return refit(self, store, **kwargs)

    def __repr__(self) -> str:
        n = len(g.ancestors([self.sink]))
        return f"Pipeline(nodes={n}, sink={self.sink.label!r})"


class FittedPipeline(Transformer):
    """A trained pipeline: transformers only, applicable to new data.

    Also a :class:`Transformer`, so fitted pipelines compose with further
    ``and_then`` chaining (paper Figure 1: "The trained pipeline is used to
    make predictions on new data").
    """

    def __init__(self, input_node: g.OpNode, sink: g.OpNode,
                 training_report: Optional["TrainingReport"] = None,
                 program_passes: Sequence[Any] = ()):
        self.input_node = input_node
        self.sink = sink
        self.training_report = training_report
        #: OpProgram rewrites (repro.core.program.ProgramPass) the
        #: optimizer's LoweringPass registered on the plan; applied by
        #: compile_inference_plan when this pipeline is lowered
        self.program_passes = list(program_passes)
        self._compiled_plan = None
        self._compile_lock = threading.Lock()

    def __getstate__(self):
        # The compiled plan (and its lock) is a cache over the DAG;
        # recompiled on demand after unpickling.
        state = self.__dict__.copy()
        state["_compiled_plan"] = None
        del state["_compile_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Pickles written before the compiled-plan cache (or the
        # lowering-pass list) existed carry neither attribute; default
        # them instead of crashing on apply.
        self.__dict__.setdefault("_compiled_plan", None)
        self.__dict__.setdefault("program_passes", [])
        self._compile_lock = threading.Lock()

    def inference_plan(self):
        """The compiled flat op program for this pipeline (cached).

        Compiled once on first use and reused by every subsequent
        single-item apply — the inference DAG is immutable after fit, so
        the per-request graph walk the recursive path paid is pure
        overhead.  See :mod:`repro.serving.compiler`.
        """
        plan = self._compiled_plan
        if plan is None:
            from repro.serving.compiler import compile_inference_plan

            with self._compile_lock:
                if self._compiled_plan is None:
                    # No content keys: nothing on the plain apply path
                    # reads them, and hashing every operator's fitted
                    # state is not free.  ModelServer.register compiles
                    # its own keyed plan.
                    self._compiled_plan = compile_inference_plan(
                        self, compute_keys=False)
                plan = self._compiled_plan
        return plan

    def apply(self, item: Any, backend=None) -> Any:
        """Apply to one item; ``backend`` selects the execution backend.

        The default path runs the cached compiled
        :class:`~repro.serving.compiler.InferencePlan` — same operators,
        same order, same numerics as the recursive walk, without
        rebuilding the closure and memo per call.
        """
        if backend is None:
            return self.inference_plan().run_item(item)
        from repro.core.backends import resolve_backend

        return resolve_backend(backend).apply_item(self, item)

    def apply_dataset(self, data: Dataset, backend=None) -> Dataset:
        """Batch inference; ``backend`` selects the execution backend.

        The serial default evaluates the inference DAG lazily; the
        pipelined backend materializes output partitions concurrently;
        the sharded backend re-partitions the batch into one shard per
        simulated worker.  All return identical rows.
        """
        from repro.core.backends import resolve_backend

        return resolve_backend(backend).apply_batch(self, data)

    def __repr__(self) -> str:
        n = len(g.ancestors([self.sink]))
        return f"FittedPipeline(nodes={n})"
