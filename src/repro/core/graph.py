"""Operator DAG representation.

A pipeline is a DAG of :class:`OpNode` objects.  Node kinds:

- ``source`` — a bound training dataset, or the special *pipeline input*
  placeholder that test data flows into at apply time.
- ``transformer`` — applies a :class:`~repro.core.operators.Transformer` to
  its single parent.
- ``estimator`` — fits an Estimator/LabelEstimator on its parent(s); its
  output is a fitted Transformer (a pipeline breaker).
- ``apply`` — applies the Transformer produced by an ``estimator`` parent to
  a data parent.
- ``gather`` — element-wise collection of branch outputs into a list
  (the paper's ``Pipeline.gather``).

Nodes are immutable after construction except for physical-operator
substitution performed by the optimizer (``node.op`` swap).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Set, Tuple

_node_ids = itertools.count(1)

SOURCE = "source"
TRANSFORMER = "transformer"
ESTIMATOR = "estimator"
APPLY = "apply"
GATHER = "gather"

KINDS = frozenset({SOURCE, TRANSFORMER, ESTIMATOR, APPLY, GATHER})


class OpNode:
    """One operator occurrence in a pipeline DAG."""

    __slots__ = ("id", "kind", "op", "parents", "label")

    def __init__(self, kind: str, op: Any, parents: Tuple["OpNode", ...] = (),
                 label: str = ""):
        if kind not in KINDS:
            raise ValueError(f"unknown node kind {kind!r}")
        self.id = next(_node_ids)
        self.kind = kind
        self.op = op
        self.parents = tuple(parents)
        self.label = label or self._default_label()

    def _default_label(self) -> str:
        if self.kind == SOURCE:
            return "input" if self.op is None else "data"
        if self.op is None:
            return self.kind
        return type(self.op).__name__

    @property
    def is_pipeline_input(self) -> bool:
        return self.kind == SOURCE and self.op is None

    @property
    def weight(self) -> int:
        """Passes this node makes over its inputs per execution."""
        return int(getattr(self.op, "weight", 1) or 1)

    def __repr__(self) -> str:
        parent_ids = ",".join(str(p.id) for p in self.parents)
        return f"OpNode#{self.id}({self.kind}:{self.label}<-[{parent_ids}])"


def pipeline_input() -> OpNode:
    """The placeholder node that apply-time data flows into."""
    return OpNode(SOURCE, None, label="input")


def source(dataset, label: str = "data") -> OpNode:
    return OpNode(SOURCE, dataset, label=label)


# ----------------------------------------------------------------------
# Traversal utilities
# ----------------------------------------------------------------------

def ancestors(sinks: Iterable[OpNode]) -> List[OpNode]:
    """All nodes reachable from ``sinks`` (inclusive), topologically sorted
    parents-first."""
    order: List[OpNode] = []
    seen: Set[int] = set()

    def visit(node: OpNode) -> None:
        if node.id in seen:
            return
        seen.add(node.id)
        for p in node.parents:
            visit(p)
        order.append(node)

    for s in sinks:
        visit(s)
    return order


def reachable(sinks: Iterable[OpNode],
              kind: str = None) -> List[OpNode]:
    """Reachable nodes parents-first, optionally filtered to one kind.

    The single topological walk behind every DAG consumer that used to
    keep a private copy: program lowering (:mod:`repro.core.program`,
    feeding both the serving compiler and the process backend's shard
    programs) iterates the unfiltered order, and the training session's
    estimator schedule / source rooting use the kind filter.
    """
    order = ancestors(sinks)
    if kind is None:
        return order
    return [node for node in order if node.kind == kind]


def successors_map(sinks: Iterable[OpNode]) -> Dict[int, List[OpNode]]:
    """Map node id -> list of direct successors within the reachable DAG."""
    succ: Dict[int, List[OpNode]] = {}
    for node in ancestors(sinks):
        succ.setdefault(node.id, [])
        for p in node.parents:
            succ.setdefault(p.id, []).append(node)
    return succ


def substitute(sink: OpNode, mapping: Dict[int, OpNode]) -> OpNode:
    """Rebuild the DAG rooted at ``sink`` with some nodes replaced.

    ``mapping`` maps original node ids to replacement nodes.  Shared
    sub-DAGs stay shared in the result (memoized rebuild).  Nodes whose
    ancestry contains no replaced node are reused as-is, preserving object
    identity for common sub-expression detection.
    """
    memo: Dict[int, OpNode] = dict(mapping)

    def rebuild(node: OpNode) -> OpNode:
        if node.id in memo:
            return memo[node.id]
        new_parents = tuple(rebuild(p) for p in node.parents)
        if all(np_ is op_ for np_, op_ in zip(new_parents, node.parents)):
            memo[node.id] = node
            return node
        replacement = OpNode(node.kind, node.op, new_parents, node.label)
        memo[node.id] = replacement
        return replacement

    return rebuild(sink)


def validate_dag(sinks: Iterable[OpNode]) -> None:
    """Raise if the graph is malformed (bad arity for a node kind)."""
    for node in ancestors(sinks):
        if node.kind == SOURCE and node.parents:
            raise ValueError(f"{node}: source nodes take no parents")
        if node.kind == TRANSFORMER and len(node.parents) != 1:
            raise ValueError(f"{node}: transformer nodes take one parent")
        if node.kind == ESTIMATOR and len(node.parents) not in (1, 2):
            raise ValueError(f"{node}: estimator nodes take 1 or 2 parents")
        if node.kind == APPLY:
            if len(node.parents) != 2 or node.parents[0].kind != ESTIMATOR:
                raise ValueError(
                    f"{node}: apply nodes take (estimator, data) parents")
        if node.kind == GATHER and not node.parents:
            raise ValueError(f"{node}: gather nodes need parents")


def _dot_escape(label: str) -> str:
    """Escape a node label for a double-quoted Graphviz string."""
    return (label.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\r\n", "\\n")
                 .replace("\r", "\\n")
                 .replace("\n", "\\n"))


def to_dot(sinks: Iterable[OpNode],
           highlight: Iterable[int] = ()) -> str:
    """Graphviz rendering of the DAG (for docs and debugging).

    Node ids in ``highlight`` (e.g. a plan's cache set) render filled.
    """
    highlighted = set(highlight)
    lines = ["digraph pipeline {", "  rankdir=LR;"]
    for node in ancestors(sinks):
        shape = {"estimator": "box", "source": "ellipse"}.get(node.kind,
                                                              "plaintext")
        attrs = f'label="{_dot_escape(node.label)}" shape={shape}'
        if node.id in highlighted:
            attrs += ' style=filled fillcolor=lightsteelblue'
        lines.append(f"  n{node.id} [{attrs}];")
        for p in node.parents:
            lines.append(f"  n{p.id} -> n{node.id};")
    lines.append("}")
    return "\n".join(lines)


def zip_gather(parents: List[Any]) -> Any:
    """Element-wise gather of aligned datasets into list rows.

    The runtime realization of a GATHER node, shared by training execution
    and fitted-pipeline application.
    """
    acc = parents[0].map(lambda x: [x], name="gather")
    for p in parents[1:]:
        acc = acc.zip(p).map(lambda pair: pair[0] + [pair[1]], name="gather")
    return acc


def zip_rows(parts: List[list]) -> List[list]:
    """Element-wise gather of aligned in-memory partitions into list rows.

    The materialized-partition counterpart of :func:`zip_gather`, shared
    by the serving compiler's micro-batch path and the process backend's
    shard workers.
    """
    if len({len(p) for p in parts}) > 1:
        raise ValueError(
            f"gather partition length mismatch: {[len(p) for p in parts]}")
    return [list(row) for row in zip(*parts)]
