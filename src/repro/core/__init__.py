"""KeystoneML's core: pipeline API, DAG, and the two-level optimizer."""

from repro.core.operators import (
    Estimator,
    FunctionTransformer,
    IdentityTransformer,
    Iterative,
    LabelEstimator,
    Optimizable,
    Transformer,
)
from repro.core.pipeline import FittedPipeline, Pipeline
from repro.core.stats import DataStats, stats_from_rows
from repro.core.executor import (
    LEVEL_FULL,
    LEVEL_NONE,
    LEVEL_PIPE,
    TrainingReport,
    fit_pipeline,
)

__all__ = [
    "DataStats",
    "Estimator",
    "FittedPipeline",
    "FunctionTransformer",
    "IdentityTransformer",
    "Iterative",
    "LabelEstimator",
    "LEVEL_FULL",
    "LEVEL_NONE",
    "LEVEL_PIPE",
    "Optimizable",
    "Pipeline",
    "TrainingReport",
    "Transformer",
    "fit_pipeline",
    "stats_from_rows",
]
