"""KeystoneML's core: pipeline API, DAG, and the two-level optimizer.

The optimizer is a composable pass pipeline: an
:class:`~repro.core.optimizer.Optimizer` runs an ordered registry of
:class:`~repro.core.passes.Pass` objects and returns an inspectable
:class:`~repro.core.plan.PhysicalPlan` (``explain`` / ``to_dot`` /
``execute``).  ``Pipeline.fit(level=...)`` remains the one-call shim over
the same machinery.
"""

from repro.core.operators import (
    Estimator,
    FunctionTransformer,
    IdentityTransformer,
    Iterative,
    LabelEstimator,
    Optimizable,
    Transformer,
)
from repro.core.pipeline import FittedPipeline, Pipeline
from repro.core.stats import DataStats, stats_from_rows
from repro.core.executor import (
    LEVEL_FULL,
    LEVEL_NONE,
    LEVEL_PIPE,
    TrainingReport,
    fit_pipeline,
)
from repro.core.plan import PassDecision, PhysicalPlan, PlanState
from repro.core.passes import (
    CSEPass,
    FusionPass,
    MaterializationPass,
    OperatorSelectionPass,
    Pass,
    ProfilingPass,
)
from repro.core.optimizer import Optimizer, default_passes, passes_for_level

__all__ = [
    "CSEPass",
    "DataStats",
    "Estimator",
    "FittedPipeline",
    "FunctionTransformer",
    "FusionPass",
    "IdentityTransformer",
    "Iterative",
    "LabelEstimator",
    "LEVEL_FULL",
    "LEVEL_NONE",
    "LEVEL_PIPE",
    "MaterializationPass",
    "OperatorSelectionPass",
    "Optimizable",
    "Optimizer",
    "Pass",
    "PassDecision",
    "PhysicalPlan",
    "Pipeline",
    "PlanState",
    "ProfilingPass",
    "TrainingReport",
    "Transformer",
    "default_passes",
    "fit_pipeline",
    "passes_for_level",
    "stats_from_rows",
]
