"""KeystoneML's core: pipeline API, DAG, and the two-level optimizer.

The optimizer is a composable pass pipeline: an
:class:`~repro.core.optimizer.Optimizer` runs an ordered registry of
:class:`~repro.core.passes.Pass` objects and returns an inspectable
:class:`~repro.core.plan.PhysicalPlan` (``explain`` / ``to_dot`` /
``execute``).  ``Pipeline.fit(level=...)`` remains the one-call shim over
the same machinery.

Execution is pluggable (:mod:`repro.core.backends`): the same physical
plan trains serially (``LocalBackend``), with independent branches
overlapped on threads (``PipelinedBackend``), or priced per-shard on a
simulated cluster (``ShardedBackend``) — select with
``plan.execute(backend=...)`` or ``Pipeline.fit(backend=...)``.
"""

from repro.core.operators import (
    Estimator,
    FunctionTransformer,
    IdentityTransformer,
    Iterative,
    LabelEstimator,
    Optimizable,
    Transformer,
)
from repro.core.pipeline import FittedPipeline, Pipeline
from repro.core.stats import DataStats, stats_from_rows
from repro.core.executor import (
    LEVEL_FULL,
    LEVEL_NONE,
    LEVEL_PIPE,
    TrainingReport,
    fit_pipeline,
)
from repro.core.plan import PassDecision, PhysicalPlan, PlanState
from repro.core.program import (
    DeadOpElimination,
    Op,
    OpProgram,
    ProgramPass,
    lower_inference_program,
    lower_training_program,
    structural_fingerprint,
)
from repro.core.passes import (
    CSEPass,
    FusionPass,
    LoweringPass,
    MaterializationPass,
    OperatorSelectionPass,
    Pass,
    ProfilingPass,
    ShardingPass,
)
from repro.core.optimizer import Optimizer, default_passes, passes_for_level
from repro.core.backends import (
    BACKENDS,
    ExecutionBackend,
    LocalBackend,
    PipelinedBackend,
    ProcessPoolBackend,
    ShardedBackend,
    plan_scaling_sweep,
    resolve_backend,
)

__all__ = [
    "BACKENDS",
    "CSEPass",
    "ExecutionBackend",
    "LocalBackend",
    "PipelinedBackend",
    "ProcessPoolBackend",
    "ShardedBackend",
    "ShardingPass",
    "plan_scaling_sweep",
    "resolve_backend",
    "DataStats",
    "Estimator",
    "FittedPipeline",
    "FunctionTransformer",
    "FusionPass",
    "IdentityTransformer",
    "Iterative",
    "LabelEstimator",
    "LEVEL_FULL",
    "LEVEL_NONE",
    "LEVEL_PIPE",
    "LoweringPass",
    "DeadOpElimination",
    "Op",
    "OpProgram",
    "ProgramPass",
    "lower_inference_program",
    "lower_training_program",
    "structural_fingerprint",
    "MaterializationPass",
    "OperatorSelectionPass",
    "Optimizable",
    "Optimizer",
    "Pass",
    "PassDecision",
    "PhysicalPlan",
    "Pipeline",
    "PlanState",
    "ProfilingPass",
    "TrainingReport",
    "Transformer",
    "default_passes",
    "fit_pipeline",
    "passes_for_level",
    "stats_from_rows",
]
