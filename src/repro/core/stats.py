"""Dataset statistics (the ``A_s`` of the cost model).

The operator-level optimizer decides between physical implementations using
numerical properties of the data flowing into each node: record count,
dimensionality, sparsity, record size.  These are exactly the statistics the
paper says conventional optimizers do not consider.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.dataset.sizing import estimate_size


@dataclass(frozen=True)
class DataStats:
    """Statistics of a (possibly extrapolated) dataset at a pipeline point.

    ``n`` is the extrapolated full-scale record count; the remaining fields
    are measured on the profiling sample.  ``k`` is the output dimension of
    the associated labels when the node is a supervised estimator (set by the
    profiler from the labels input).
    """

    n: int
    d: int = 1
    k: int = 1
    sparsity: float = 1.0
    bytes_per_row: float = 8.0

    @property
    def nnz_per_row(self) -> float:
        """Average non-zeros per row (``s`` in the paper's Table 1)."""
        return self.d * self.sparsity

    @property
    def total_bytes(self) -> float:
        return self.n * self.bytes_per_row

    @property
    def is_sparse(self) -> bool:
        return self.sparsity < 0.5

    def with_k(self, k: int) -> "DataStats":
        return replace(self, k=k)

    def with_n(self, n: int) -> "DataStats":
        return replace(self, n=n)


def _row_dim_and_nnz(row) -> Optional[tuple]:
    if sp.issparse(row):
        return int(row.shape[-1]), int(row.nnz)
    arr = np.asarray(row)
    if arr.dtype == object or arr.dtype.kind in "US":
        return None
    size = int(arr.size)
    return size, int(np.count_nonzero(arr))


def stats_from_rows(rows: List, full_n: Optional[int] = None) -> DataStats:
    """Measure statistics from sample rows, extrapolating the count.

    Works for numeric vector rows (dense or sparse); non-numeric rows (raw
    text, images as objects) get ``d=1`` and only sizes are meaningful.
    """
    if not rows:
        return DataStats(n=full_n or 0, d=0, sparsity=0.0, bytes_per_row=0.0)
    n = full_n if full_n is not None else len(rows)
    total_bytes = sum(estimate_size(r) for r in rows)
    bytes_per_row = total_bytes / len(rows)

    dims = 0
    nnz = 0
    numeric_rows = 0
    for row in rows:
        measured = _row_dim_and_nnz(row)
        if measured is None:
            continue
        d_i, nnz_i = measured
        dims = max(dims, d_i)
        nnz += nnz_i
        numeric_rows += 1
    if numeric_rows == 0 or dims == 0:
        return DataStats(n=n, d=1, sparsity=1.0, bytes_per_row=bytes_per_row)
    sparsity = nnz / (numeric_rows * dims)
    return DataStats(n=n, d=dims, sparsity=sparsity,
                     bytes_per_row=bytes_per_row)


def num_label_dims(rows: List) -> int:
    """Output dimension of a labels dataset (1 for scalar class ids)."""
    if not rows:
        return 1
    first = rows[0]
    if sp.issparse(first):
        return int(first.shape[-1])
    arr = np.asarray(first)
    if arr.dtype == object:
        return 1
    return int(arr.size) if arr.ndim else 1
