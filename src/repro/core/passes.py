"""Optimizer passes: the units of the two-level optimizer.

Each :class:`Pass` is a thin adapter over one existing optimization module,
transforming a :class:`~repro.core.plan.PlanState`:

- :class:`CSEPass` — whole-pipeline common sub-expression elimination
  (:mod:`repro.core.cse`, paper §4.2).
- :class:`FusionPass` — pack single-consumer transformer chains into one
  stage (:mod:`repro.core.fusion`, paper §2.3).
- :class:`ProfilingPass` — sample-based profiling of per-node time/size
  (:mod:`repro.core.profiler`, paper §4.1).
- :class:`OperatorSelectionPass` — profiling interleaved with cost-based
  physical operator selection (paper §3; selection needs the input
  statistics that profiling produces, so the two are one pass).
- :class:`MaterializationPass` — choose the cache set under the memory
  budget (:mod:`repro.core.materialization`, paper §4.3).
- :class:`ShardingPass` — partition the training flow across simulated
  workers (paper Figure 12's cluster axis); consumed by
  :class:`~repro.core.backends.ShardedBackend`.

Ordering matters: DAG-rewriting passes (CSE, fusion) must run before
profiling, because the profile is keyed by node identity; the
materialization pass checks for a stale profile and raises.  User-defined
passes subclass :class:`Pass` and drop into
:class:`~repro.core.optimizer.Optimizer` without touching core modules.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Tuple, Union

from repro.core import graph as g
from repro.core import materialization as mat
from repro.core.cse import eliminate_common_subexpressions
from repro.core.fusion import fuse_transformer_chains
from repro.core.plan import PlanState
from repro.core.profiler import profile_pipeline


class Pass:
    """One step of the optimizer: transforms a :class:`PlanState`.

    Subclasses implement :meth:`run`, mutating ``state`` in place (or
    returning a replacement state — remember to carry ``decisions`` over).
    Decision details recorded via ``state.annotate(...)`` show up in
    :meth:`PhysicalPlan.explain`.
    """

    @property
    def name(self) -> str:
        return type(self).__name__

    def run(self, state: PlanState) -> Optional[PlanState]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{self.name}()"


class CSEPass(Pass):
    """Merge structurally identical sub-DAGs (whole-pipeline rewrite)."""

    def run(self, state: PlanState) -> None:
        before = len(g.ancestors([state.sink]))
        state.sink = eliminate_common_subexpressions([state.sink])[0]
        removed = before - len(g.ancestors([state.sink]))
        state.cse_nodes_removed += removed
        state.annotate(nodes_removed=removed)
        g.validate_dag([state.sink])


class FusionPass(Pass):
    """Fuse single-consumer transformer chains into one stage."""

    def run(self, state: PlanState) -> None:
        before = len(g.ancestors([state.sink]))
        state.sink = fuse_transformer_chains([state.sink])[0]
        removed = before - len(g.ancestors([state.sink]))
        state.fused_nodes_removed += removed
        state.annotate(nodes_fused=removed)
        g.validate_dag([state.sink])


class ProfilingPass(Pass):
    """Profile the DAG on data samples; attaches a pipeline profile.

    With ``select_operators`` set, cost-based physical operator selection
    is interleaved with profiling (see :class:`OperatorSelectionPass`).
    """

    def __init__(self, sample_sizes: Tuple[int, int] = (256, 512),
                 select_operators: bool = False):
        self.sample_sizes = tuple(sample_sizes)
        self.select_operators = select_operators

    def run(self, state: PlanState) -> None:
        profile = profile_pipeline([state.sink], state.resources,
                                   sample_sizes=self.sample_sizes,
                                   select_operators=self.select_operators)
        state.profile = profile
        state.selections.update(profile.selections)
        self._annotate(state, profile)

    def _annotate(self, state: PlanState, profile) -> None:
        state.annotate(sample_sizes=self.sample_sizes,
                       profiled_nodes=len(profile.nodes),
                       profiling_seconds=round(profile.profiling_seconds, 3))
        if self.select_operators:
            labels = state.node_labels()
            names = {nid: labels.get(nid, f"#{nid}")
                     for nid in profile.selections}
            counts = Counter(names.values())
            # Same-labeled nodes (e.g. two LinearSolvers on gathered
            # branches) get id suffixes so no selection is shadowed.
            state.annotate(selections={
                (f"{names[nid]}#{nid}" if counts[names[nid]] > 1
                 else names[nid]): phys
                for nid, phys in profile.selections.items()})

    def __repr__(self) -> str:
        return f"{self.name}(sample_sizes={self.sample_sizes})"


class OperatorSelectionPass(ProfilingPass):
    """Profiling + per-operator physical selection (paper Section 3).

    Selection uses the input statistics gathered while profiling, so this
    pass subsumes :class:`ProfilingPass` — use one or the other.  The
    chosen physical operator replaces the logical one on the DAG node, and
    the attached profile reflects the selected implementations.
    """

    def __init__(self, sample_sizes: Tuple[int, int] = (256, 512)):
        super().__init__(sample_sizes, select_operators=True)


class MaterializationPass(Pass):
    """Choose the cache set under the memory budget (Algorithm 1).

    ``strategy`` is one of :data:`repro.core.materialization.STRATEGIES`
    (``greedy``/``lru``/``rule``/``none``/``all``) or ``None`` to default:
    greedy when a profile is available, none otherwise.  Also records the
    memory budget that execution will enforce.
    """

    def __init__(self, strategy: Optional[str] = None,
                 mem_budget_bytes: float = float("inf")):
        if strategy is not None and strategy not in mat.STRATEGIES:
            raise ValueError(f"unknown caching strategy {strategy!r}; "
                             f"expected one of {mat.STRATEGIES}")
        self.strategy = strategy
        self.mem_budget_bytes = mem_budget_bytes

    def run(self, state: PlanState) -> None:
        strategy = self.strategy
        if strategy is None:
            strategy = (mat.GREEDY if state.profile is not None
                        else mat.NONE)
        cache_ids, use_lru = set(), False
        if strategy != mat.NONE and state.profile is not None:
            missing = state.unprofiled_nodes()
            if missing:
                raise ValueError(
                    "profile is stale: the DAG was rewritten after "
                    "profiling; order rewrite passes (CSE, fusion) before "
                    f"ProfilingPass (unprofiled: {missing[:3]})")
            problem = mat.MaterializationProblem([state.sink], state.profile)
            cache_ids, use_lru = mat.choose_cache_set(strategy, problem,
                                                      self.mem_budget_bytes)
        elif strategy in (mat.LRU, mat.ALL):
            # Unprofiled LRU: mark everything cacheable, let the cache
            # decide what stays.
            cache_ids = {n.id for n in g.ancestors([state.sink])
                         if n.kind not in (g.ESTIMATOR,)
                         and not n.is_pipeline_input}
            use_lru = True
        state.cache_ids = set(cache_ids)
        state.use_lru = use_lru
        state.mem_budget_bytes = self.mem_budget_bytes
        state.annotate(strategy=strategy, use_lru=use_lru,
                       cache=state.cache_set_labels())

    def __repr__(self) -> str:
        return (f"{self.name}(strategy={self.strategy!r}, "
                f"mem_budget_bytes={self.mem_budget_bytes})")


class LoweringPass(Pass):
    """Register :class:`~repro.core.program.ProgramPass` rewrites.

    The optimizer's passes rewrite the *DAG*; lowering passes rewrite the
    flat :class:`~repro.core.program.OpProgram` the DAG lowers into —
    after CSE/fusion decisions are already baked in.  This pass only
    records the list on the :class:`~repro.core.plan.PlanState` (the
    handoff point); the rewrites run wherever the plan is lowered: the
    serving compiler (via the fitted pipeline) and the process backend's
    shard programs.  Defaults to dead-op elimination, the reference
    program rewrite.

    Rewrites nothing at the DAG level, so it can run anywhere in the
    pass list.
    """

    def __init__(self, program_passes: Optional[list] = None):
        from repro.core.program import DeadOpElimination, ProgramPass

        if program_passes is None:
            program_passes = [DeadOpElimination()]
        for p in program_passes:
            if not isinstance(p, ProgramPass):
                raise TypeError(
                    f"expected ProgramPass instances, got {type(p).__name__}")
        self.program_passes = list(program_passes)

    def run(self, state: PlanState) -> None:
        state.program_passes = list(self.program_passes)
        state.annotate(
            program_passes=[p.name for p in self.program_passes])

    def __repr__(self) -> str:
        names = [p.name for p in self.program_passes]
        return f"{self.name}(program_passes={names})"


def simulated_node_stages(state: PlanState,
                          roles: Optional[Dict[int, str]] = None,
                          resources=None,
                          compute_scale: float = 1.0,
                          network_scale: float = 1.0):
    """Price every profiled plan node as one simulated cluster stage.

    The shared stage-construction rule behind
    ``ShardingPass(workers="auto")`` and the observability layer's
    :class:`~repro.obs.calibrate.CostModelCalibrator`: each node's
    extrapolated serial seconds calibrate the stage's flops against the
    descriptor's per-node compute rate (so the simulator prices it back
    to those seconds at ``w=1``), and coordinated nodes additionally move
    their profiled output bytes through a ``log2 w`` aggregation tree.

    ``compute_scale``/``network_scale`` are measured correction factors
    (observed / predicted, from :mod:`repro.obs.calibrate`) multiplying
    the profiled compute seconds and coordination bytes respectively.
    Returns ``[(node, SimulatedStage), ...]`` in dependency order;
    raises if the plan is unprofiled or the profile is stale.
    """
    import math

    from repro.cluster.simulator import SimulatedStage
    from repro.cost.profile import CostProfile

    if state.profile is None:
        raise ValueError(
            "pricing simulated stages needs a profiled plan: run "
            "ProfilingPass or OperatorSelectionPass first")
    if state.unprofiled_nodes():
        raise ValueError(
            "profile is stale: the DAG was rewritten after profiling; "
            "order rewrite passes before pricing stages")
    if resources is None:
        resources = state.resources
    profile = state.profile

    def make_stage(node, seconds, coord_bytes):
        flops_total = seconds * compute_scale * resources.cpu_flops
        moved_bytes = coord_bytes * network_scale

        def profile_fn(w: int) -> CostProfile:
            network = 0.0
            if moved_bytes > 0.0 and w > 1:
                network = moved_bytes * math.log2(w)
            return CostProfile(flops=flops_total / w, network=network)

        return SimulatedStage(node.label, profile_fn)

    stages = []
    for node in g.ancestors([state.sink]):
        if node.is_pipeline_input or node.id not in profile.nodes:
            continue
        role = (roles.get(node.id) if roles is not None
                else ShardingPass.role_for(node))
        seconds = profile.t(node.id)
        coord_bytes = (profile.size(node.id)
                       if role == ShardingPass.COORDINATED else 0.0)
        if seconds <= 0.0 and coord_bytes <= 0.0:
            continue
        stages.append((node, make_stage(node, seconds, coord_bytes)))
    return stages


class ShardingPass(Pass):
    """Partition the training flow across N simulated workers.

    Assigns every executable node a role: *data-parallel* nodes (sources,
    transformers, applies) split their work evenly across the workers;
    *coordinated* nodes (estimators, gathers) also shard their compute but
    pay per-worker coordination — the solver aggregation trees of the
    paper's Table 1.  The decision (worker count plus the role of every
    node) is recorded on the :class:`~repro.core.plan.PlanState` and in
    the plan's decision log, so ``explain()`` shows it before execution
    and :class:`~repro.core.backends.ShardedBackend` prices it.

    ``workers`` defaults to the plan's resource descriptor node count.
    With ``workers="auto"`` the count is chosen cost-optimally: every
    profiled node is priced as a simulated stage (compute splits ``1/w``,
    coordinated nodes pay a network term growing with ``log2 w``) and the
    candidate in ``[1, max_workers]`` minimizing total simulated seconds
    wins — the resource budget defaults to the descriptor's node count.
    Auto mode therefore requires a profiled plan (run
    ``ProfilingPass``/``OperatorSelectionPass`` first).

    This pass rewrites nothing, so it can run anywhere in the pass list;
    conventionally it goes last, after MaterializationPass.
    """

    #: role names shared with the sharded backend
    DATA_PARALLEL = "data-parallel"
    COORDINATED = "coordinated"
    AUTO = "auto"
    #: in auto mode, recommend ProcessPoolBackend when the simulated
    #: network (coordination) share of total time is below this fraction
    #: — cheap coordination means multi-process shards pay off; above it
    #: thread-pool overlap (no IPC) is the better real execution
    PROCESS_NETWORK_FRACTION = 0.15

    def __init__(self, workers: Optional[Union[int, str]] = None,
                 max_workers: Optional[int] = None,
                 overhead_per_stage: float = 0.0,
                 calibration=None):
        if isinstance(workers, str):
            if workers != self.AUTO:
                raise ValueError(
                    f"workers must be an int >= 1, None, or "
                    f"{self.AUTO!r}; got {workers!r}")
        elif workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_workers is not None and max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {max_workers}")
        self.workers = workers
        self.max_workers = max_workers
        self.overhead_per_stage = overhead_per_stage
        #: optional :class:`~repro.obs.calibrate.CalibrationResult` (or
        #: any object with ``compute_scale``/``network_scale``): measured
        #: correction factors applied to the simulated stages in auto
        #: mode, closing the loop from observed spans back into the cost
        #: model.
        self.calibration = calibration

    @classmethod
    def role_for(cls, node) -> str:
        """The single classification rule, shared with ShardedBackend's
        fallback for plans optimized without this pass."""
        if node.kind in (g.ESTIMATOR, g.GATHER):
            return cls.COORDINATED
        return cls.DATA_PARALLEL

    def run(self, state: PlanState) -> None:
        labels = state.node_labels()
        roles = {}
        coordinated = []
        for node in g.ancestors([state.sink]):
            if node.is_pipeline_input:
                continue
            roles[node.id] = self.role_for(node)
            if roles[node.id] == self.COORDINATED:
                coordinated.append(labels[node.id])
        if self.workers == self.AUTO:
            workers, simulated, network_fraction = \
                self._choose_workers(state, roles)
            iterative_passes = self._iterative_passes(state)
            state.shard_backend = self._recommend_backend(
                workers, network_fraction, iterative_passes)
            state.annotate(auto=True,
                           budget=self.max_workers
                           or state.resources.num_nodes,
                           simulated_seconds=round(simulated, 4),
                           network_fraction=round(network_fraction, 4),
                           iterative_passes=iterative_passes,
                           recommended_backend=state.shard_backend)
        else:
            workers = self.workers or state.resources.num_nodes
        state.shard_workers = workers
        state.shard_roles = roles
        state.annotate(
            workers=workers,
            data_parallel=sum(1 for r in roles.values()
                              if r == self.DATA_PARALLEL),
            coordinated=sorted(set(coordinated)))

    def _recommend_backend(self, workers: int, network_fraction: float,
                           iterative_passes: int = 1) -> str:
        """Map the auto decision onto a *real* execution backend.

        One worker: serial.  Iterative workload: persistent actors pay
        the shard movement once, not once per pass, so the network share
        is judged *amortized* over the passes
        (:func:`~repro.cluster.simulator.amortized_profile`) — a plan too
        coordination-heavy for stateless process shards can still be a
        clear actor win.  Otherwise: cheap coordination means worker
        processes (featurization dominates, shards independent);
        expensive coordination stays in-process with thread overlap.
        """
        from repro.cluster.simulator import amortized_profile
        from repro.cost.profile import CostProfile

        if workers <= 1:
            return "local"
        if iterative_passes > 1:
            amortized = amortized_profile(
                CostProfile(network=network_fraction),
                iterative_passes).network
            if amortized <= self.PROCESS_NETWORK_FRACTION:
                return "actors"
        if network_fraction <= self.PROCESS_NETWORK_FRACTION:
            return "process"
        return "pipelined"

    @staticmethod
    def _iterative_passes(state: PlanState) -> int:
        """Most passes any pass-based solver makes over its input.

        Counts only :class:`~repro.core.operators.
        IterativeShardableEstimator` heads — the solvers the actor
        runtime actually iterates in-worker; other iterative operators
        re-featurize regardless of runtime, so they do not amortize.
        """
        from repro.core.operators import IterativeShardableEstimator

        passes = 1
        for node in g.ancestors([state.sink]):
            if (not node.is_pipeline_input
                    and isinstance(node.op, IterativeShardableEstimator)):
                passes = max(passes, int(getattr(node.op, "weight", 1)))
        return passes

    def _choose_workers(self, state: PlanState, roles: Dict[int, str]
                        ) -> Tuple[int, float, float]:
        """Minimize simulated seconds over worker counts in the budget.

        Each profiled node becomes one simulated stage: its extrapolated
        serial time calibrates the stage's flops against the descriptor's
        per-node compute rate; coordinated nodes additionally move their
        profiled output bytes through a ``log2 w`` aggregation tree.
        Ties break toward fewer workers (cheapest cluster that achieves
        the optimum).  Also returns the network share of the optimum's
        simulated time, which drives the backend recommendation.
        """
        from repro.cluster.simulator import ClusterSimulator

        resources = state.resources
        budget = self.max_workers or resources.num_nodes
        compute_scale = network_scale = 1.0
        if self.calibration is not None:
            compute_scale = getattr(self.calibration, "compute_scale", 1.0)
            network_scale = getattr(self.calibration, "network_scale", 1.0)
        stages = [stage for _, stage in simulated_node_stages(
            state, roles, resources,
            compute_scale=compute_scale, network_scale=network_scale)]

        best_w, best_seconds = 1, float("inf")
        for w in range(1, budget + 1):
            sim = ClusterSimulator(resources.with_nodes(w),
                                   self.overhead_per_stage)
            seconds = sim.total_seconds(stages)
            if seconds < best_seconds - 1e-12:
                best_w, best_seconds = w, seconds
        network_seconds = sum(
            stage.profile_fn(best_w).network
            for stage in stages) / resources.network_bandwidth
        network_fraction = (network_seconds / best_seconds
                            if best_seconds > 0 else 0.0)
        return best_w, best_seconds, network_fraction

    def __repr__(self) -> str:
        return f"{self.name}(workers={self.workers!r})"
