"""LocalBackend: the serial depth-first reference execution.

This is the training semantics the original ``fit_pipeline`` monolith (and
then ``PhysicalPlan.execute``) hardwired, extracted behind the
:class:`~repro.core.backends.base.ExecutionBackend` protocol: estimators
are fitted one at a time in dependency order, each pulling its training
flow through the lazy dataset DAG under the plan's caching policy.  Every
other backend is defined by producing byte-identical predictions to this
one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.backends.base import ExecutionBackend, TrainingSession
from repro.dataset.context import Context

if TYPE_CHECKING:
    from repro.core.pipeline import FittedPipeline
    from repro.core.plan import PhysicalPlan


class LocalBackend(ExecutionBackend):
    """Serial in-process execution (the default)."""

    name = "local"

    def execute(self, plan: "PhysicalPlan",
                ctx: Optional[Context] = None) -> "FittedPipeline":
        session = TrainingSession(plan, ctx, backend_name=self.name)
        session.run_serial()
        return session.finish()
