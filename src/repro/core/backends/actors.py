"""ActorBackend: training on the persistent actor runtime.

The process backend re-ships every shard for every estimator and
degrades iterative solvers to gather-and-fit in the parent — "parallel
featurization", not a cluster runtime.  This backend executes the same
lowered shard programs on :class:`~repro.runtime.pool.ActorPool`
workers that *keep* what they compute:

- programs are lowered with content-addressed keys (sources keyed by
  dataset content), so a featurized shard cached in a worker is reused
  by every later estimator and every later fit sharing the flow prefix
  — the parent's mirror of each worker's cache lets it skip shipping
  data the worker already holds;
- estimators implementing
  :class:`~repro.core.operators.IterativeShardableEstimator` (k-means,
  GMM, L-BFGS logistic) run their per-pass sufficient-stat reductions
  *in-worker*: the featurized shard stays staged in the pool, and only
  the broadcast payload and the per-partition statistics cross the
  process boundary — never the data;
- one-shot :class:`~repro.core.operators.ShardableEstimator` fits merge
  worker statistics exactly like the process backend; everything else
  gathers featurized rows and fits in the parent;
- partitions ship zero-copy (:mod:`repro.runtime.transport`); worker
  deaths respawn bounded, and restarts / cache hit rates / bytes
  shipped vs. mapped land in the :class:`~repro.core.executor.TrainingReport`.

Byte-identity holds by the same construction as every other backend:
workers run the identical ``apply_partition`` chains over the identical
partition boundaries, one-shot merges replay the estimator's serial
reduction, and iterative fits drive the exact
:meth:`~repro.core.operators.IterativeShardableEstimator.fit_via_passes`
state machine with per-partition statistics computed on identical rows.
"""

from __future__ import annotations

import itertools
import pickle
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core import graph as g
from repro.core import program as prog
from repro.core.backends.base import ExecutionBackend, TrainingSession
from repro.core.backends.process import _SHIP_ERRORS, _lower_shard_program
from repro.core.operators import IterativeShardableEstimator
from repro.core.program import UnshippableFlow
from repro.dataset.context import Context
from repro.dataset.dataset import Dataset, _StoredPartitions
from repro.obs import trace as obs_trace
from repro.runtime import transport
from repro.runtime.pool import ActorPool, _Msg, shared_actor_pool
from repro.runtime.worker import DEFAULT_STATE_BUDGET, live_slots

if TYPE_CHECKING:
    from repro.core.pipeline import FittedPipeline
    from repro.core.plan import PhysicalPlan

#: unique task ids across every backend instance sharing a pool
_TASK_IDS = itertools.count(1)


def _make_run_builder(
    task_id: int,
    blob: bytes,
    ops,
    targets: Sequence[int],
    sources: Dict[int, Dataset],
    chunk: Tuple[int, int],
    mode: str,
    shm_threshold: int,
):
    """Builder for a "run" message; evaluated against the actor's mirror.

    Ships only the source partitions the worker will actually read:
    the same backward liveness walk the worker runs
    (:func:`~repro.runtime.worker.live_slots`), with the parent-side
    mirror standing in for the cache — a source whose downstream
    transform is already held ships nothing at all.
    """
    start, stop = chunk
    source_ops = [op for op in ops if op.kind == prog.SOURCE]

    def builder(actor) -> _Msg:
        needed, compute = live_slots(
            ops, targets, lambda k: (k, start, stop) in actor.holds
        )
        ship = {}
        for op in source_ops:
            if op.slot in compute:
                ship[op.node_id] = [
                    sources[op.node_id].partition(i) for i in range(start, stop)
                ]
        packed = transport.pack(ship, shm_threshold=shm_threshold)
        produced = [
            (op.key, start, stop)
            for op in ops
            if op.slot in needed and op.key and op.kind != prog.GATHER
        ]
        # The trailing trace flag is appended only while tracing is
        # active (builders re-evaluate at send time, so a retry after a
        # respawn stays consistent); untraced runs keep the original
        # wire format.
        payload = ("run", task_id, blob, chunk, packed.payload, mode)
        if obs_trace.enabled():
            payload += (True,)
        return _Msg(
            payload,
            ships=[packed],
            produced=produced,
            shipped_bytes=len(blob) + packed.shipped_bytes,
            mapped_bytes=packed.mapped_bytes,
        )

    return builder


def _make_pass_builder(task_id: int, payload):
    def builder(actor) -> _Msg:
        msg = ("pass", task_id, payload)
        if obs_trace.enabled():
            msg += (True,)
        return _Msg(msg)

    return builder


class ActorBackend(ExecutionBackend):
    """Execute training on a pool of persistent stateful workers.

    ``workers`` resolves like the process backend's (explicit, then the
    plan's :class:`~repro.core.passes.ShardingPass` decision, then the
    CPU count); ``workers=1`` degenerates to the serial reference
    execution.  ``task_timeout`` bounds each message round-trip;
    ``max_restarts`` bounds respawns per worker; ``state_budget_bytes``
    caps each worker's shard-state cache.  ``reuse_pool=True`` (the
    default) shares pools per configuration across instances — the
    cross-fit cache requires the same workers to serve both fits.
    """

    name = "actors"

    def __init__(
        self,
        workers: Optional[int] = None,
        task_timeout: Optional[float] = None,
        start_method: str = "spawn",
        max_restarts: int = 2,
        state_budget_bytes: int = DEFAULT_STATE_BUDGET,
        merge_stats: bool = True,
        reuse_pool: bool = True,
        shm_threshold: int = transport.SHM_THRESHOLD,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.task_timeout = task_timeout
        self.start_method = start_method
        self.max_restarts = max_restarts
        self.state_budget_bytes = state_budget_bytes
        self.merge_stats = merge_stats
        self.reuse_pool = reuse_pool
        self.shm_threshold = shm_threshold
        self._private_pool: Optional[ActorPool] = None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _pool(self, workers: int) -> ActorPool:
        if self.reuse_pool:
            return shared_actor_pool(
                workers,
                start_method=self.start_method,
                task_timeout=self.task_timeout,
                max_restarts=self.max_restarts,
                state_budget_bytes=self.state_budget_bytes,
            )
        if self._private_pool is None:
            self._private_pool = ActorPool(
                workers,
                start_method=self.start_method,
                task_timeout=self.task_timeout,
                max_restarts=self.max_restarts,
                state_budget_bytes=self.state_budget_bytes,
            )
        return self._private_pool

    def close(self) -> None:
        """Shut down the private pool (shared pools stay warm)."""
        if self._private_pool is not None:
            self._private_pool.shutdown()
            self._private_pool = None

    def __enter__(self) -> "ActorBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _resolve_workers(self, plan: "PhysicalPlan") -> int:
        if self.workers is not None:
            return self.workers
        if plan.state.shard_workers is not None:
            return plan.state.shard_workers
        import os

        return os.cpu_count() or 1

    def execute(
        self, plan: "PhysicalPlan", ctx: Optional[Context] = None
    ) -> "FittedPipeline":
        workers = self._resolve_workers(plan)
        session = TrainingSession(
            plan, ctx, backend_name=f"{self.name}[workers={workers}]"
        )
        session.report.process_workers = workers
        if workers <= 1:
            session.run_serial()
            return session.finish()
        pool = self._pool(workers)
        snapshot = dict(pool.counters)
        materialized: Dict[int, Dataset] = {}
        dataset_memo: Dict[int, str] = {}
        try:
            for node in session.estimator_nodes():
                self._fit_parallel(
                    session, pool, node, materialized, dataset_memo, workers
                )
        finally:
            report = session.report
            deltas = {k: v - snapshot[k] for k, v in pool.counters.items()}
            report.worker_restarts += deltas["restarts"]
            report.shard_state_hits += deltas["hits"]
            report.shard_state_misses += deltas["misses"]
            report.bytes_shipped += deltas["shipped_bytes"]
            report.bytes_mapped += deltas["mapped_bytes"]
        return session.finish()

    def _fit_parallel(
        self,
        session: TrainingSession,
        pool: ActorPool,
        node: g.OpNode,
        materialized: Dict[int, Dataset],
        dataset_memo: Dict[int, str],
        workers: int,
    ) -> None:
        report = session.report
        if node.id in session.fitted:
            # Spliced from the session's FitStore by training key (warm
            # retrain): nothing to ship, no wave to run.
            return
        op = node.op
        roots = list(node.parents)
        try:
            program, sources = _lower_shard_program(
                roots,
                session=session,
                materialized=materialized,
                compute_keys=True,
                dataset_memo=dataset_memo,
            )
        except UnshippableFlow as exc:
            session.fit_estimator(node)
            report.process_fallback.append(f"{node.label}: {exc}")
            return

        if not any(step.kind == prog.TRANSFORM for step in program):
            # Pure-source flow: nothing to parallelize, no IPC to pay.
            session.fit_estimator(node)
            return

        iterative_ok = isinstance(op, IterativeShardableEstimator)
        stats_ok = (
            self.merge_stats
            and hasattr(op, "partition_stats")
            and hasattr(op, "fit_from_stats")
        )
        # Only shipping work may fall back: an error raised by the
        # estimator's own math must surface as-is (ship-shaped errors
        # from in-worker fits re-raise identically from the serial
        # fallback, mirroring the process backend's semantics).
        model = None
        fallback = None
        try:
            if iterative_ok:
                with obs_trace.span(
                    f"fit:{node.label}",
                    cat="fit",
                    args={"node_id": node.id},
                ):
                    model = self._fit_iterative(
                        session, pool, node, program, sources, roots, workers
                    )
            elif stats_ok:
                spec = (node.id, op, tuple(program.slot_of(r.id) for r in roots))
                result = self._run_wave(
                    session, pool, program, sources, [], spec, workers, "stats"
                )
            else:
                outputs = [
                    (str(r.id), r)
                    for r in roots
                    if r.kind != g.SOURCE and r.id not in materialized
                ]
                result = None
                if outputs:
                    out_slots = [(name, program.slot_of(r.id)) for name, r in outputs]
                    result = self._run_wave(
                        session,
                        pool,
                        program,
                        sources,
                        out_slots,
                        None,
                        workers,
                        "collect",
                    )
        except (UnshippableFlow,) + _SHIP_ERRORS as exc:
            fallback = type(exc).__name__
        if fallback is not None:
            session.fit_estimator(node)
            report.process_fallback.append(f"{node.label}: {fallback}")
            return

        if model is not None:
            with session._lock:
                session.fitted[node.id] = model
                report.estimator_seconds[node.id] = session.timer.times[node.id]
                session.store_fit(node, model)
            report.actor_iterative.append(node.label)
            return
        if stats_ok:
            with obs_trace.span(
                f"fit:{node.label}", cat="fit", args={"node_id": node.id}
            ):
                with session.timer.time_block(node.id):
                    model = op.fit_from_stats(result["stats"])
            with session._lock:
                session.fitted[node.id] = model
                report.estimator_seconds[node.id] = session.timer.times[node.id]
                session.store_fit(node, model)
            report.process_stat_merged.append(node.label)
            return
        if result is not None:
            for name, root in outputs:
                rows = result["rows"][name]
                ds = Dataset(
                    session.ctx,
                    len(rows),
                    _StoredPartitions(rows),
                    name=f"actors({root.label})",
                )
                with session._lock:
                    session.env[root.id] = ds
                materialized[root.id] = ds
        session.fit_estimator(node)
        report.process_gathered.append(node.label)

    # ------------------------------------------------------------------
    # Iterative fits: passes in-worker, state in the driver
    # ------------------------------------------------------------------
    def _fit_iterative(
        self,
        session: TrainingSession,
        pool: ActorPool,
        node: g.OpNode,
        program: prog.OpProgram,
        sources,
        roots: List[g.OpNode],
        workers: int,
    ):
        """Drive ``fit_via_passes``'s state machine over staged workers.

        The featurized shard is staged in-worker by the "init" wave and
        never moves again: every pass broadcasts
        ``pass_payload(state)`` and reduces the per-partition
        statistics, flattened in chunk order — which *is* partition
        order, chunks being contiguous and ascending — through
        ``update_from_stats`` exactly as the serial driver does.
        """
        op = node.op
        chunks, _ = _plan_chunks(sources, workers)
        stat_slots = tuple(program.slot_of(r.id) for r in roots)
        blob = pickle.dumps(
            (program.ops, [], (node.id, op, stat_slots)),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        task_id = next(_TASK_IDS)
        indices = list(range(len(chunks)))

        def init_builder(chunk):
            return _make_run_builder(
                task_id,
                blob,
                program.ops,
                stat_slots,
                sources,
                chunk,
                "init",
                self.shm_threshold,
            )

        builders = [(i, init_builder(chunk)) for i, chunk in enumerate(chunks)]
        state = None
        timer = session.timer
        wave_key = program.ops[stat_slots[-1]].key if stat_slots else None
        try:
            with obs_trace.span(
                "actors.wave[init]",
                cat="wave",
                key=wave_key or None,
                args={"shards": len(chunks), "node_id": node.id},
            ):
                replies = pool.wave(builders, setup=True)
            self._absorb_times(session, replies)
            partials = [s for result, _meta in replies for s in result["stats"]]
            with timer.time_block(node.id):
                state = op.init_state(partials)
                done = op.converged(state)
                payload = None if done else op.pass_payload(state)
            pass_no = 0
            while not done:
                pass_no += 1
                pass_builders = [
                    (i, _make_pass_builder(task_id, payload)) for i in indices
                ]
                with obs_trace.span(
                    "actors.wave[pass]",
                    cat="wave",
                    key=wave_key or None,
                    args={"node_id": node.id, "pass": pass_no},
                ):
                    replies = pool.wave(pass_builders)
                self._absorb_times(session, replies)
                partials = [s for result, _meta in replies for s in result]
                with timer.time_block(node.id):
                    state = op.update_from_stats(state, partials)
                    done = op.converged(state)
                    payload = None if done else op.pass_payload(state)
            with timer.time_block(node.id):
                model = op.finalize(state)
            state = None
            return model
        except BaseException:
            if state is not None:
                try:
                    op.abort_state(state)
                except Exception:
                    pass
            raise
        finally:
            pool.end_task(task_id, indices)

    # ------------------------------------------------------------------
    # One-shot waves (stats / collect)
    # ------------------------------------------------------------------
    def _run_wave(
        self,
        session: TrainingSession,
        pool: ActorPool,
        program: prog.OpProgram,
        sources,
        out_slots,
        stats_spec,
        workers: int,
        mode: str,
    ):
        chunks, _ = _plan_chunks(sources, workers)
        blob = pickle.dumps(
            (program.ops, out_slots, stats_spec),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        task_id = next(_TASK_IDS)
        targets = [slot for _name, slot in out_slots]
        if stats_spec is not None:
            targets.extend(stats_spec[2])

        def run_builder(chunk):
            return _make_run_builder(
                task_id,
                blob,
                program.ops,
                targets,
                sources,
                chunk,
                mode,
                self.shm_threshold,
            )

        builders = [(i, run_builder(chunk)) for i, chunk in enumerate(chunks)]
        wave_key = program.ops[targets[-1]].key if targets else None
        with obs_trace.span(
            f"actors.wave[{mode}]",
            cat="wave",
            key=wave_key or None,
            args={"shards": len(chunks)},
        ):
            replies = pool.wave(builders)
        self._absorb_times(session, replies)
        merged = {"rows": {name: [] for name, _ in out_slots}, "stats": []}
        for result, _meta in replies:
            for name, parts in result.get("rows", {}).items():
                merged["rows"][name].extend(parts)
            merged["stats"].extend(result.get("stats", []))
        return merged

    def _absorb_times(self, session: TrainingSession, replies) -> None:
        for _result, meta in replies:
            for node_id, seconds in meta.get("times", {}).items():
                session.timer.add(node_id, seconds)
            # Worker span buffers piggyback on reply meta; the recording
            # process name ("repro-actor-N") is the worker attribution.
            obs_trace.absorb(meta.get("spans"))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(workers={self.workers}, "
            f"task_timeout={self.task_timeout}, "
            f"max_restarts={self.max_restarts})"
        )


def _plan_chunks(sources, workers: int):
    """Contiguous partition chunks (the process backend's shard shapes)."""
    counts = {ds.num_partitions for ds in sources.values()}
    if len(counts) != 1:
        raise UnshippableFlow(f"sources disagree on partitioning: {sorted(counts)}")
    num_partitions = counts.pop()
    shards = min(workers, num_partitions)
    bounds = [round(j * num_partitions / shards) for j in range(shards + 1)]
    chunks = [(lo, hi) for lo, hi in zip(bounds, bounds[1:]) if lo < hi]
    return chunks, num_partitions
