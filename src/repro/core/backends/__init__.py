"""Pluggable execution backends for :meth:`PhysicalPlan.execute`.

One logical plan, several execution strategies — the KeystoneML premise
(and SparkCL's: one programming model lowered onto heterogeneous engines).
The protocol lives in :mod:`repro.core.backends.base`; four backends
ship:

- :class:`LocalBackend` — serial depth-first training (the default; the
  reference semantics every other backend must reproduce byte-for-byte).
- :class:`PipelinedBackend` — thread-pool scheduling that overlaps
  featurization of independent branches with solver iterations.
- :class:`ShardedBackend` — partitions the training flow across N
  simulated workers and prices per-shard stage times through the cluster
  simulator, opening the strong-scaling axis to *real* plans.
- :class:`ProcessPoolBackend` — actually executes shards in separate
  worker processes (spawn-safe, GIL-free), merging per-shard sufficient
  statistics where estimators support it and gathering featurized shards
  otherwise.
- :class:`ActorBackend` — the persistent-worker runtime
  (:mod:`repro.runtime`): long-lived actors cache content-addressed
  shard state across estimators and fits, run iterative solvers
  in-worker, and recover from worker deaths with bounded respawn.

Selection threads through the public API: ``plan.execute(backend=...)``,
``Pipeline.fit(backend=...)`` and ``FittedPipeline.apply`` /
``apply_dataset`` all accept an instance, a registry name from
:data:`BACKENDS` (``"local" | "pipelined" | "sharded" | "process" |
"actors"``), or ``None`` for the default.
``plan.execute(backend="auto")`` additionally honours the backend a
``ShardingPass(workers="auto")`` recommended.
"""

from repro.core.backends.actors import ActorBackend
from repro.core.backends.base import (
    ExecutionBackend,
    TrainingSession,
    recursive_apply_item,
)
from repro.core.backends.local import LocalBackend
from repro.core.backends.pipelined import PipelinedBackend
from repro.core.backends.process import (
    ProcessPoolBackend,
    shutdown_worker_pools,
)
from repro.core.backends.sharded import ShardedBackend, plan_scaling_sweep
from repro.runtime.pool import shutdown_actor_pools

#: registry of backend names accepted wherever ``backend=`` is
BACKENDS = {
    LocalBackend.name: LocalBackend,
    PipelinedBackend.name: PipelinedBackend,
    ShardedBackend.name: ShardedBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
    ActorBackend.name: ActorBackend,
}


#: stateless default shared by every ``backend=None`` call site
_DEFAULT_BACKEND = LocalBackend()


def resolve_backend(backend=None) -> ExecutionBackend:
    """Turn a ``backend=`` argument into an :class:`ExecutionBackend`.

    Accepts ``None`` (the default :class:`LocalBackend`), a backend
    instance, or a registry name from :data:`BACKENDS`.
    """
    if backend is None:
        return _DEFAULT_BACKEND
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, str):
        try:
            return BACKENDS[backend]()
        except KeyError:
            raise ValueError(f"unknown backend {backend!r}; expected one "
                             f"of {sorted(BACKENDS)}") from None
    raise TypeError("backend must be None, a backend name, or an "
                    f"ExecutionBackend instance; got {type(backend).__name__}")


__all__ = [
    "ActorBackend",
    "BACKENDS",
    "ExecutionBackend",
    "LocalBackend",
    "PipelinedBackend",
    "ProcessPoolBackend",
    "ShardedBackend",
    "TrainingSession",
    "plan_scaling_sweep",
    "recursive_apply_item",
    "resolve_backend",
    "shutdown_actor_pools",
    "shutdown_worker_pools",
]
