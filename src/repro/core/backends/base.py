"""The ExecutionBackend protocol and the shared training machinery.

A backend owns *how* an optimized :class:`~repro.core.plan.PhysicalPlan`
turns into a trained :class:`~repro.core.pipeline.FittedPipeline`, and how a
fitted pipeline is applied to batches of new data.  The plan owns *what* to
execute (the rewritten DAG, the cache set, the memory budget); backends must
not change the semantics — every backend trains to identical predictions.

The protocol is three methods:

- :meth:`ExecutionBackend.execute` — train the plan's DAG, fill the
  :class:`~repro.core.executor.TrainingReport`, return a ``FittedPipeline``.
- :meth:`ExecutionBackend.apply_batch` — apply a fitted pipeline to a
  :class:`~repro.dataset.dataset.Dataset` (batch inference).
- :meth:`ExecutionBackend.apply_item` — apply a fitted pipeline to one item.

:class:`TrainingSession` holds the depth-first training semantics shared by
every backend (estimators are pipeline breakers; the plan's caching policy
is honoured; an :class:`~repro.core.executor.ExclusiveTimer` attributes
per-node wall time).  Backends differ only in *scheduling*: the serial
backend fits estimators one by one, the pipelined backend fits independent
estimators concurrently, and the sharded backend additionally prices the
measured stage times on a simulated cluster.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.core import graph as g
from repro.core import program as prog
from repro.core.executor import ExclusiveTimer, TrainingReport
from repro.obs import trace as obs_trace
from repro.core.operators import Transformer
from repro.dataset.cache import AdmissionControlledLRUPolicy, PinnedPolicy
from repro.dataset.context import Context
from repro.dataset.dataset import Dataset

if TYPE_CHECKING:
    from repro.core.pipeline import FittedPipeline
    from repro.core.plan import PhysicalPlan


class ExecutionBackend:
    """How a physical plan executes: train the DAG, apply fitted pipelines.

    Subclasses override :meth:`execute` (and optionally the apply methods);
    the base class provides serial reference implementations of batch and
    single-item inference so a new backend only has to say how *training*
    is scheduled.
    """

    #: registry key; also recorded in ``TrainingReport.backend``
    name: str = "backend"

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def execute(self, plan: "PhysicalPlan",
                ctx: Optional[Context] = None) -> "FittedPipeline":
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def apply_batch(self, fitted: "FittedPipeline", data: Dataset) -> Dataset:
        """Apply a fitted pipeline to a dataset (lazy, partition-wise)."""
        memo: Dict[int, Dataset] = {fitted.input_node.id: data}

        def eval_node(node: g.OpNode) -> Dataset:
            if node.id in memo:
                return memo[node.id]
            if node.kind == g.TRANSFORMER:
                value = node.op.apply_dataset(eval_node(node.parents[0]))
            elif node.kind == g.GATHER:
                parents = [eval_node(p) for p in node.parents]
                value = g.zip_gather(parents)
            else:
                raise ValueError(f"unexpected node kind {node.kind} in "
                                 "fitted pipeline")
            memo[node.id] = value
            return value

        return eval_node(fitted.sink)

    def apply_item(self, fitted: "FittedPipeline", item: Any) -> Any:
        """Apply a fitted pipeline to a single item.

        Runs the pipeline's cached compiled
        :class:`~repro.serving.compiler.InferencePlan` instead of
        re-walking the DAG with a fresh closure and memo per request —
        same operators in the same order, so results are byte-identical
        to :func:`recursive_apply_item` (the reference semantics).
        """
        return fitted.inference_plan().run_item(item)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def recursive_apply_item(fitted: "FittedPipeline", item: Any) -> Any:
    """Reference single-item inference: recursive DAG walk, fresh memo.

    This was the hot path before inference plans were compiled; it is kept
    as the executable specification the compiled path must match
    byte-for-byte (the serving tests enforce it) and as the naive baseline
    ``benchmarks/bench_serving.py`` measures against.
    """
    memo: Dict[int, Any] = {fitted.input_node.id: item}

    def eval_node(node: g.OpNode) -> Any:
        if node.id in memo:
            return memo[node.id]
        if node.kind == g.TRANSFORMER:
            value = node.op.apply(eval_node(node.parents[0]))
        elif node.kind == g.GATHER:
            value = [eval_node(p) for p in node.parents]
        elif node.kind == g.SOURCE:
            raise ValueError("fitted pipeline contains an unbound source")
        else:
            raise ValueError(f"unexpected node kind {node.kind} in "
                             "fitted pipeline")
        memo[node.id] = value
        return value

    return eval_node(fitted.sink)


class TrainingSession:
    """One training execution of a physical plan: shared backend machinery.

    Owns the execution context, the caching policy, the per-node timer and
    the report.  Backends call :meth:`fit_estimator` for every estimator
    reachable from the sink (in any dependency-respecting order, from any
    number of threads) and then :meth:`finish` to extract the
    inference-only DAG.

    Thread-safety contract: graph-to-dataset construction is serialized
    under an internal lock (it is cheap — datasets are lazy); the heavy
    work (``op.fit`` and the partition computations it triggers) runs
    outside the lock.  Callers scheduling estimators concurrently must
    ensure an estimator's estimator-ancestors are fitted before it starts
    (:class:`~repro.core.backends.pipelined.PipelinedBackend` does this via
    future dependencies) — ``fit_estimator`` itself does not deduplicate
    concurrent fits of the *same* node.
    """

    def __init__(self, plan: "PhysicalPlan", ctx: Optional[Context],
                 backend_name: str = "local"):
        state = plan.state
        self.plan = plan
        self.sink = state.sink
        self.cache_ids = state.cache_ids
        self.use_lru = state.use_lru

        stale = self.cache_ids - {n.id for n in g.ancestors([self.sink])}
        if stale:
            raise ValueError(
                "cache set is stale: the DAG was rewritten after "
                "MaterializationPass, so the chosen cache set no longer "
                "matches any node; order rewrite passes before "
                f"MaterializationPass (unmatched ids: {sorted(stale)[:5]})")

        report = TrainingReport(level=plan.level)
        report.backend = backend_name
        report.cse_nodes_removed = state.cse_nodes_removed
        report.fused_nodes_removed = state.fused_nodes_removed
        report.selections = dict(state.selections)
        report.profile = state.profile
        report.cache_set = set(self.cache_ids)
        report.cache_set_labels = plan.cache_set_labels
        report.optimize_seconds = plan.optimize_seconds
        report.passes = plan.passes
        self.report = report

        self._exec_start = time.perf_counter()
        if ctx is None:
            ctx = Context(cache_budget_bytes=state.mem_budget_bytes)
        if self.use_lru:
            ctx.set_policy(AdmissionControlledLRUPolicy(),
                           state.mem_budget_bytes)
        else:
            ctx.set_policy(PinnedPolicy(set()), state.mem_budget_bytes)
        self.ctx = ctx

        self.timer = ExclusiveTimer()
        self.env: Dict[int, Dataset] = {}
        self.fitted: Dict[int, Transformer] = {}
        self._lock = threading.RLock()
        # Root every source now, while still single-threaded: re-rooting a
        # foreign dataset collects it eagerly, which must not happen under
        # the session lock once backend threads are running.
        for node in g.reachable([self.sink], g.SOURCE):
            if not node.is_pipeline_input:
                self._dataset_of(node)

        # Incremental training (repro.incremental): with a FitStore on the
        # plan, key the training DAG by content and splice stored fitted
        # state for every estimator whose key hits — all backends then skip
        # those fits through the ``self.fitted`` memo.  Key computation
        # hashes the bound datasets; any failure degrades to a cold fit
        # (the store must never turn a working fit into a crash).
        self.fit_store = getattr(state, "fit_store", None)
        self.training_key: Dict[int, str] = {}
        if self.fit_store is not None:
            try:
                self.training_key = prog.training_keys([self.sink], {})
            except Exception:
                self.fit_store = None
            else:
                for node in g.reachable([self.sink], g.ESTIMATOR):
                    model = self.fit_store.get_fit(self.training_key[node.id])
                    if model is not None:
                        self.fitted[node.id] = model
                        report.reused_ops.append(node.label)

    # ------------------------------------------------------------------
    # DAG -> datasets
    # ------------------------------------------------------------------
    def dataset_of(self, node: g.OpNode) -> Dataset:
        """Lazy dataset realizing ``node``'s training flow (memoized)."""
        with self._lock:
            return self._dataset_of(node)

    def _dataset_of(self, node: g.OpNode) -> Dataset:
        if node.id in self.env:
            return self.env[node.id]
        ctx, timer = self.ctx, self.timer
        if node.kind == g.SOURCE:
            if node.is_pipeline_input:
                raise ValueError(
                    "training execution reached the pipeline input "
                    "placeholder; estimator training data must be "
                    "bound via and_then(est, data)")
            ds = node.op
            if ds.ctx is not ctx:
                # Re-root foreign datasets into the execution context so
                # the caching policy applies uniformly.
                ds = ctx.parallelize(ds.collect(), ds.num_partitions)
        elif node.kind == g.TRANSFORMER:
            parent = self._dataset_of(node.parents[0])
            ds = parent.map_partitions(
                obs_trace.instrument(
                    node.label,
                    timer.wrap(node.id, node.op.apply_partition),
                    node_id=node.id),
                name=node.label)
        elif node.kind == g.APPLY:
            est_node, data_node = node.parents
            model = self.fit_estimator(est_node)
            parent = self._dataset_of(data_node)
            ds = parent.map_partitions(
                obs_trace.instrument(
                    node.label,
                    timer.wrap(node.id, model.apply_partition),
                    node_id=node.id),
                name=node.label)
        elif node.kind == g.GATHER:
            ds = g.zip_gather([self._dataset_of(p) for p in node.parents])
        else:
            raise ValueError(f"cannot execute node kind {node.kind}")
        if node.id in self.cache_ids:
            ds.cache()
            if not self.use_lru:
                ctx.cache.policy.cache_set.add(ds.id)
        self.env[node.id] = ds
        return ds

    # ------------------------------------------------------------------
    # Estimator fitting
    # ------------------------------------------------------------------
    def fit_estimator(self, node: g.OpNode) -> Transformer:
        """Fit one estimator node (memoized); the pipeline-breaker step."""
        with self._lock:
            if node.id in self.fitted:
                return self.fitted[node.id]
            data = self._dataset_of(node.parents[0])
            labels = (self._dataset_of(node.parents[1])
                      if len(node.parents) == 2 else None)
        # Heavy work outside the lock: op.fit pulls its training flow
        # through the lazy datasets (possibly concurrently with other
        # estimators on other threads).
        with obs_trace.span(f"fit:{node.label}", cat="fit",
                            key=self.training_key.get(node.id),
                            args={"node_id": node.id}):
            model = self._fit_streaming(node, data, labels)
            if model is None:
                with self.timer.time_block(node.id):
                    if labels is not None:
                        model = node.op.fit(data, labels)
                    else:
                        model = node.op.fit(data)
        with self._lock:
            self.fitted[node.id] = model
            self.report.estimator_seconds[node.id] = self.timer.times[node.id]
            self.store_fit(node, model)
        return model

    def store_fit(self, node: g.OpNode, model: Transformer) -> None:
        """Record a freshly fitted model in the FitStore (if attached).

        Called under the session lock by every path that fits an
        estimator this run (``fit_estimator`` and the process backend's
        stat-merge path); also the single place ``refit_ops`` is
        recorded.
        """
        self.report.refit_ops.append(node.label)
        if self.fit_store is not None and node.id in self.training_key:
            self.fit_store.put_fit(self.training_key[node.id], model)

    def _fit_streaming(self, node: g.OpNode, data: Dataset,
                       labels: Optional[Dataset]):
        """Fit a shardable estimator through stored per-partition stats.

        Returns the fitted model, or ``None`` to fall through to the
        plain ``op.fit`` path (no store attached, the estimator is not
        shardable, or the flow cannot be keyed partition-wise).  Each
        partition's sufficient statistic is keyed by the partition's
        content flow (:func:`repro.core.program.partition_flow_keys`):
        stats hit in the store skip pulling and featurizing that
        partition entirely — a refit with appended partitions computes
        only the new ones — and the final merge runs the estimator's own
        ``fit_from_stats`` (the serial reduction order), so the model is
        byte-identical to a cold fit by the
        :class:`~repro.core.operators.ShardableEstimator` contract.
        """
        store, op = self.fit_store, node.op
        if (store is None or not hasattr(op, "partition_stats")
                or not hasattr(op, "fit_from_stats")):
            return None
        if labels is not None and labels.num_partitions != data.num_partitions:
            return None
        roots = list(node.parents)
        pkeys = []
        try:
            for i in range(data.num_partitions):
                flow_keys = prog.partition_flow_keys(
                    roots, i, model_of=lambda n: self.fitted.get(n.id))
                pkeys.append(prog.op_key(
                    "pstats", op, tuple(flow_keys[r.id] for r in roots)))
        except Exception:
            # Unkeyable flow (unbound input, partition-count mismatch
            # between raw sources and the featurized view, unfitted
            # upstream): cold fit, never a crash.
            return None
        reused = computed = 0
        with self.timer.time_block(node.id):
            partials = []
            for i, pkey in enumerate(pkeys):
                stat = store.get_stats(pkey)
                if stat is None:
                    if labels is None:
                        stat = op.partition_stats(data.partition(i))
                    else:
                        stat = op.partition_stats(data.partition(i),
                                                  labels.partition(i))
                    store.put_stats(pkey, stat)
                    computed += 1
                else:
                    reused += 1
                partials.append(stat)
            model = op.fit_from_stats(partials)
        with self._lock:
            self.report.stat_partitions_reused += reused
            self.report.stat_partitions_computed += computed
        return model

    def estimator_nodes(self) -> list:
        """Estimators reachable from the sink, dependency order first."""
        return g.reachable([self.sink], g.ESTIMATOR)

    def run_serial(self) -> None:
        """Reference schedule: fit every estimator depth-first, in order."""
        for node in self.estimator_nodes():
            self.fit_estimator(node)

    # ------------------------------------------------------------------
    # Wrap-up
    # ------------------------------------------------------------------
    def finish(self) -> "FittedPipeline":
        """Close the report and extract the inference-only pipeline."""
        from repro.core.pipeline import FittedPipeline

        state = self.plan.state
        report = self.report
        report.execute_seconds = time.perf_counter() - self._exec_start
        report.node_seconds = dict(self.timer.times)
        report.node_labels = state.node_labels()
        report.recomputations = self.ctx.stats.total_computations()

        fitted = self.fitted

        def inference_node(node: g.OpNode,
                           memo: Dict[int, g.OpNode]) -> g.OpNode:
            if node.id in memo:
                return memo[node.id]
            if node.kind == g.APPLY:
                data_parent = inference_node(node.parents[1], memo)
                out = g.OpNode(g.TRANSFORMER, fitted[node.parents[0].id],
                               (data_parent,), label=node.label)
            elif node.kind == g.TRANSFORMER:
                out = g.OpNode(g.TRANSFORMER, node.op,
                               (inference_node(node.parents[0], memo),),
                               label=node.label)
            elif node.kind == g.GATHER:
                out = g.OpNode(g.GATHER, None,
                               tuple(inference_node(p, memo)
                                     for p in node.parents), label="gather")
            elif node.is_pipeline_input:
                out = node
            else:
                raise ValueError(
                    f"node {node} cannot appear on the inference path")
            memo[node.id] = out
            return out

        memo: Dict[int, g.OpNode] = {}
        inference_sink = inference_node(self.sink, memo)
        new_input = memo.get(state.input_node.id, state.input_node)
        return FittedPipeline(new_input, inference_sink,
                              training_report=report,
                              program_passes=state.program_passes)
