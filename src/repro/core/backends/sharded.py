"""ShardedBackend: simulated-cluster execution of a real physical plan.

We cannot run a real cluster, but the paper's scaling results (Figure 12,
Table 6) only need per-stage times as a function of worker count — which
the cost model already expresses.  The backend therefore trains the plan
in-process with the exact :class:`LocalBackend` semantics (so predictions
are byte-identical), treats the measured serial time of each executed node
as the work of *one* worker's shard, and prices the whole plan on an
``N``-worker simulated cluster via
:class:`~repro.cluster.simulator.ClusterSimulator`:

- data-parallel nodes (transformers, applies) split their measured work
  across the ``N`` shards — per-shard time is ``t / N``;
- coordinated nodes (estimators, and anything a
  :class:`~repro.core.passes.ShardingPass` marked ``coordinated``) also
  split compute but pay a network term that grows with ``log2 N`` — the
  aggregation tree / solver coordination of the paper's Eq. 1, sized by
  the profiled output bytes when the plan carries a profile.

With ``workers=1`` and zero per-stage overhead the simulated time equals
the measured serial time exactly, anchoring the simulation to reality.
The per-stage list is kept on the training report
(``report.simulated_stages``) so :func:`plan_scaling_sweep` can re-price
the *same trained plan* at many cluster sizes without retraining — this is
what ``benchmarks/bench_fig12_scalability.py`` sweeps.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cluster.resources import ResourceDescriptor
from repro.cluster.simulator import (
    ClusterSimulator,
    SimulatedStage,
    scaling_sweep,
)
from repro.core import graph as g
from repro.core.backends.base import ExecutionBackend, TrainingSession
from repro.core.passes import ShardingPass
from repro.cost.profile import CostProfile
from repro.dataset.context import Context
from repro.dataset.dataset import Dataset

if TYPE_CHECKING:
    from repro.core.executor import TrainingReport
    from repro.core.pipeline import FittedPipeline
    from repro.core.plan import PhysicalPlan

#: node roles recorded by ShardingPass and consumed here
DATA_PARALLEL = ShardingPass.DATA_PARALLEL
COORDINATED = ShardingPass.COORDINATED

_CATEGORIES = {g.ESTIMATOR: "Model Solve", g.SOURCE: "Loading"}


def _stage_for_node(node: g.OpNode, seconds: float, role: str,
                    coord_bytes: float,
                    resources: ResourceDescriptor) -> SimulatedStage:
    """Price one executed node as a simulated stage.

    The measured serial ``seconds`` calibrate the stage's flops against the
    descriptor's per-node compute rate, so at ``w=1`` the simulator returns
    the measurement exactly; the descriptor choice cancels for the compute
    term and only shapes the network/overhead terms.
    """
    flops_total = seconds * resources.cpu_flops

    def profile_fn(w: int) -> CostProfile:
        network = 0.0
        if role == COORDINATED and coord_bytes > 0.0 and w > 1:
            network = coord_bytes * math.log2(w)
        return CostProfile(flops=flops_total / w, network=network)

    category = _CATEGORIES.get(node.kind, "Featurization")
    return SimulatedStage(node.label, profile_fn, category)


class ShardedBackend(ExecutionBackend):
    """Train in-process, price per-shard stage times on N simulated workers.

    ``workers`` defaults to the plan's :class:`~repro.core.passes.
    ShardingPass` decision (``state.shard_workers``) and falls back to the
    plan's resource descriptor node count.  ``resources`` overrides the
    descriptor used for pricing (default: the plan's).
    """

    name = "sharded"

    def __init__(self, workers: Optional[int] = None,
                 resources: Optional[ResourceDescriptor] = None,
                 overhead_per_stage: float = 0.0):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.resources = resources
        self.overhead_per_stage = overhead_per_stage

    def _resolve_workers(self, plan: "PhysicalPlan") -> int:
        if self.workers is not None:
            return self.workers
        if plan.state.shard_workers is not None:
            return plan.state.shard_workers
        return plan.state.resources.num_nodes

    def execute(self, plan: "PhysicalPlan",
                ctx: Optional[Context] = None) -> "FittedPipeline":
        workers = self._resolve_workers(plan)
        session = TrainingSession(
            plan, ctx, backend_name=f"{self.name}[workers={workers}]")
        session.run_serial()
        fitted = session.finish()

        report = fitted.training_report
        resources = self.resources or plan.state.resources
        stages = self._build_stages(plan, report, resources)
        sim = ClusterSimulator(resources.with_nodes(workers),
                               self.overhead_per_stage)
        report.simulated_workers = workers
        report.simulated_resources = resources
        report.simulated_overhead_per_stage = self.overhead_per_stage
        report.simulated_stages = stages
        # run() memoizes, so these two price each stage exactly once.
        report.simulated_seconds = sim.total_seconds(stages)
        report.simulated_breakdown = sim.breakdown(stages)
        return fitted

    def _build_stages(self, plan: "PhysicalPlan", report: "TrainingReport",
                      resources: ResourceDescriptor) -> List[SimulatedStage]:
        """One simulated stage per executed node of the plan.

        Timed nodes (transformers, applies, estimators) price their
        measured compute; untimed *coordinated* nodes (gathers — realized
        as zero-copy zips locally) still get a compute-free stage so their
        network term is paid at ``w > 1``.  Sources are not priced: their
        load time is not separately measurable in-process.
        """
        nodes = {n.id: n for n in g.ancestors([plan.sink])}
        roles = plan.state.shard_roles
        profile = plan.state.profile
        stages: List[SimulatedStage] = []
        # ancestors() order keeps the stage list in execution order.
        for nid, node in nodes.items():
            seconds = report.node_seconds.get(nid, 0.0)
            role = roles.get(nid) or ShardingPass.role_for(node)
            coord_bytes = 0.0
            if role == COORDINATED and profile is not None \
                    and nid in profile.nodes:
                # Coordination moves the node's output through the tree:
                # a fitted model for solvers, merged partials elsewhere.
                coord_bytes = profile.size(nid)
            if nid not in report.node_seconds and coord_bytes == 0.0:
                continue  # nothing measurable and nothing to coordinate
            stages.append(_stage_for_node(node, seconds, role, coord_bytes,
                                          resources))
        return stages

    def apply_batch(self, fitted: "FittedPipeline", data: Dataset) -> Dataset:
        """Batch inference over worker-count shards.

        Re-partitions the input into one contiguous shard per simulated
        worker (order-preserving, so results stay byte-identical) and
        evaluates the inference DAG shard-wise.  With ``workers=None``
        the count comes from the sharded training run recorded on the
        fitted pipeline's report, if any.
        """
        shards = self.workers
        if shards is None:
            report = getattr(fitted, "training_report", None)
            shards = getattr(report, "simulated_workers", None) or 1
        if shards > 1 and data.num_partitions != shards:
            data = data.ctx.parallelize(data.collect(), shards)
        return super().apply_batch(fitted, data)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(workers={self.workers}, "
                f"overhead_per_stage={self.overhead_per_stage})")


def plan_scaling_sweep(fitted_or_report, node_counts: List[int],
                       overhead_per_stage: Optional[float] = None
                       ) -> Dict[int, Dict[str, float]]:
    """Re-price a sharded-trained plan at several cluster sizes.

    Takes the :class:`~repro.core.pipeline.FittedPipeline` (or its
    training report) produced by a :class:`ShardedBackend` execution and
    returns ``{nodes: {category: seconds}}`` — the Figure 12 sweep, driven
    by a *real* plan's measured stages instead of hand-built ones.
    """
    report = getattr(fitted_or_report, "training_report", fitted_or_report)
    stages = getattr(report, "simulated_stages", None)
    if not stages:
        raise ValueError(
            "no simulated stages on this report: train the plan with "
            "plan.execute(backend=ShardedBackend(...)) first")
    overhead = (report.simulated_overhead_per_stage
                if overhead_per_stage is None else overhead_per_stage)
    return scaling_sweep(stages, report.simulated_resources, node_counts,
                         overhead_per_stage=overhead)
