"""ProcessPoolBackend: true multi-process sharded training execution.

The sharded backend *prices* shards on a simulated cluster while training
serially in-process; this backend actually executes them.  The training
data is partitioned into contiguous shards (one chunk of partitions per
worker), the training flow feeding each estimator is lowered into a
picklable *shard program* — the same :class:`~repro.core.program.OpProgram`
IR the serving compiler executes, lowered by the same
:func:`repro.core.program.lower_training_program` walk, aimed at training
instead of inference — and worker processes run the program over their
shard, dodging the GIL for the numpy-light featurization operators that
dominate the paper's pipelines.

Two merge strategies, chosen per estimator:

- **stat-merge** — estimators implementing the
  :class:`~repro.core.operators.ShardableEstimator` protocol (common
  feature selection, standard scaling, distributed PCA/QR) have workers
  compute per-partition sufficient statistics; the parent merges them
  with the estimator's own serial reduction order, so only counters /
  moment sums / R factors cross the process boundary.
- **gather-and-fit** — everything else (iterative solvers: L-BFGS,
  k-means, block coordinate) has workers compute and return the
  *featurized* shard rows; the parent registers them as materialized
  partitions and runs the unmodified serial fit over them.

Both reproduce :class:`~repro.core.backends.local.LocalBackend`
predictions byte-for-byte: workers execute the identical
``apply_partition`` chain over the identical partition boundaries, and
stat merges replay the identical reduction tree
(``tests/test_backends.py`` enforces this across every registry
workload).

Everything shipped must pickle — worker entry points are module-level
(spawn-safe), shard inputs are pickled in per-shard chunks, and operators
carrying small user functions pack them via :mod:`repro.core.serde`.  An
estimator whose flow cannot be pickled falls back to serial in-parent
execution (recorded in ``TrainingReport.process_fallback``) rather than
failing the run.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.core import graph as g
from repro.core import program as prog
from repro.core.backends.base import ExecutionBackend, TrainingSession
from repro.core.program import UnshippableFlow
from repro.dataset.context import Context
from repro.obs import trace as obs_trace
from repro.dataset.dataset import Dataset, _StoredPartitions

if TYPE_CHECKING:
    from repro.core.pipeline import FittedPipeline
    from repro.core.plan import PhysicalPlan

#: errors that mean "this flow cannot cross the process boundary" — the
#: backend degrades to serial in-parent execution instead of failing
_SHIP_ERRORS = (pickle.PicklingError, TypeError, AttributeError)


# ----------------------------------------------------------------------
# Shard programs
# ----------------------------------------------------------------------
#
# A shard program is an OpProgram (repro.core.program) lowered from the
# flow feeding the estimator(s) being fitted: a topologically ordered
# list of ops, op i's output living in slot i.  Source ops are fed
# per-partition from the parent; transform ops cover transformer nodes
# and apply nodes (whose op is the already-fitted model).  Estimator
# nodes never ship.  Materialized intermediates are re-shipped (instead
# of recomputed) only when the optimizer's materialization pass chose to
# cache them — the cache-set decision doubles as the ship-vs-recompute
# policy.


def _lower_shard_program(roots: List[g.OpNode], *, session=None,
                         materialized=None, virtual_sources=None,
                         program_passes=None, compute_keys=False,
                         dataset_memo=None):
    """Lower the flow feeding ``roots`` through the shared OpProgram IR.

    Returns ``(program, sources)``; any lowering passes registered on
    the plan (:class:`~repro.core.passes.LoweringPass`) — or passed
    explicitly via ``program_passes`` for sessionless inference — are
    applied before the program ships, and ``sources`` is re-filtered to
    the ops that survived them.  With ``compute_keys=True`` ops carry
    content-addressed keys; passing a ``dataset_memo`` dict additionally
    keys claimed sources by dataset *content* (the fingerprint memo is
    shared across estimators of one run), which is what lets the actor
    runtime re-address cached shard state from a later fit.
    """
    materialized = materialized or {}
    virtual_sources = virtual_sources or {}
    cache_ids = session.cache_ids if session is not None else set()

    def source_of(node: g.OpNode) -> Optional[Dataset]:
        if node.id in virtual_sources:
            return virtual_sources[node.id]
        if (node.kind == g.SOURCE and not node.is_pipeline_input
                and session is not None):
            return session.dataset_of(node)
        if node.id in materialized and node.id in cache_ids:
            return materialized[node.id]
        return None

    def model_of(est_node: g.OpNode):
        return session.fitted.get(est_node.id) if session is not None \
            else None

    source_key_of = None
    if dataset_memo is not None:
        def source_key_of(node: g.OpNode) -> str:
            return prog.op_key(
                "source", None,
                (prog.dataset_fingerprint(source_of(node), dataset_memo),))

    program, sources = prog.lower_training_program(
        roots, source_of=source_of, model_of=model_of,
        compute_keys=compute_keys, source_key_of=source_key_of)
    if program_passes is None and session is not None:
        program_passes = session.plan.state.program_passes
    if program_passes:
        program = prog.run_program_passes(program, program_passes)
        sources = {nid: ds for nid, ds in sources.items()
                   if nid in program.node_ids}
    return program, sources


def _execute_shard(blob: bytes, source_parts: Dict[int, List[list]],
                   num_partitions: int,
                   traced: bool = False) -> Dict[str, Any]:
    """Worker entry point: run a shard program over one partition chunk.

    Module-level (spawn-safe); ``blob`` is the pickled ``(ops,
    out_slots, stats_spec)`` triple — the ops being the lowered
    :class:`~repro.core.program.Op` list — shared by every shard of a
    wave.  Returns computed partitions per requested output,
    per-partition sufficient statistics when a stats spec is present,
    and per-node compute seconds for the training report.  With
    ``traced`` a local span buffer rides back on the result
    (``"spans"``), keyed by op content key where the program carries
    keys.
    """
    ops, out_slots, stats_spec = pickle.loads(blob)
    tracer = obs_trace.Tracer() if traced else None
    rows_out: Dict[str, List[list]] = {name: [] for name, _ in out_slots}
    stats_out: List[Any] = []
    times: Dict[int, float] = {}
    for idx in range(num_partitions):
        env: Dict[int, list] = {}
        for op in ops:
            if op.kind == prog.SOURCE:
                env[op.slot] = source_parts[op.node_id][idx]
            elif op.kind == prog.TRANSFORM:
                start = time.perf_counter()
                env[op.slot] = op.op.apply_partition(env[op.parents[0]])
                elapsed = time.perf_counter() - start
                times[op.node_id] = times.get(op.node_id, 0.0) + elapsed
                if tracer is not None:
                    tracer.record(op.label, seconds=elapsed,
                                  key=op.key or None,
                                  args={"node_id": op.node_id})
            else:  # gather: element-wise zip into list rows
                env[op.slot] = g.zip_rows([env[s] for s in op.parents])
        for name, slot in out_slots:
            rows_out[name].append(env[slot])
        if stats_spec is not None:
            est_id, est_op, stat_slots = stats_spec
            start = time.perf_counter()
            stats_out.append(
                est_op.partition_stats(*(env[s] for s in stat_slots)))
            elapsed = time.perf_counter() - start
            times[est_id] = times.get(est_id, 0.0) + elapsed
            if tracer is not None:
                tracer.record(f"stats:{type(est_op).__name__}",
                              seconds=elapsed, args={"node_id": est_id})
    out = {"rows": rows_out, "stats": stats_out, "times": times}
    if tracer is not None:
        out["spans"] = tracer.drain()
    return out


# ----------------------------------------------------------------------
# Worker pools
# ----------------------------------------------------------------------

_POOL_LOCK = threading.Lock()
_POOLS: Dict[Tuple[str, int], ProcessPoolExecutor] = {}


def _shared_pool(start_method: str, workers: int) -> ProcessPoolExecutor:
    """Process pools are expensive (interpreter + numpy import per spawn);
    share them per (start method, size) across backend instances."""
    import multiprocessing

    key = (start_method, workers)
    with _POOL_LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context(start_method))
            _POOLS[key] = pool
        return pool


def _discard_shared_pool(start_method: str, workers: int) -> None:
    with _POOL_LOCK:
        pool = _POOLS.pop((start_method, workers), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_worker_pools() -> None:
    """Shut down every shared worker pool (tests, interpreter teardown)."""
    with _POOL_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)


class ProcessPoolBackend(ExecutionBackend):
    """Execute training shards in separate worker processes.

    ``workers`` defaults to the plan's
    :class:`~repro.core.passes.ShardingPass` decision, falling back to
    the machine's CPU count.  ``workers=1`` degenerates to the serial
    reference execution (no pool).  ``task_timeout`` bounds every wave of
    shard tasks — a wedged worker raises instead of hanging the fit.
    ``merge_stats=False`` disables the sufficient-statistics path (every
    estimator then gathers and fits in the parent).  ``start_method``
    defaults to ``"spawn"``: fork-safety is not assumed anywhere, and
    spawn keeps worker state disjoint from the parent's locks.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None,
                 task_timeout: Optional[float] = None,
                 merge_stats: bool = True,
                 start_method: str = "spawn",
                 reuse_pool: bool = True):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.task_timeout = task_timeout
        self.merge_stats = merge_stats
        self.start_method = start_method
        self.reuse_pool = reuse_pool
        self._private_pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _pool(self, workers: int) -> ProcessPoolExecutor:
        if self.reuse_pool:
            return _shared_pool(self.start_method, workers)
        if self._private_pool is None:
            import multiprocessing

            self._private_pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context(self.start_method))
        return self._private_pool

    def _drop_pool(self, workers: int) -> None:
        if self.reuse_pool:
            _discard_shared_pool(self.start_method, workers)
        elif self._private_pool is not None:
            self._private_pool.shutdown(wait=False, cancel_futures=True)
            self._private_pool = None

    def close(self) -> None:
        """Release the private pool (shared pools stay warm)."""
        if self._private_pool is not None:
            self._private_pool.shutdown(wait=True, cancel_futures=True)
            self._private_pool = None

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _resolve_workers(self, plan: "PhysicalPlan") -> int:
        if self.workers is not None:
            return self.workers
        if plan.state.shard_workers is not None:
            return plan.state.shard_workers
        return os.cpu_count() or 1

    def execute(self, plan: "PhysicalPlan",
                ctx: Optional[Context] = None) -> "FittedPipeline":
        workers = self._resolve_workers(plan)
        session = TrainingSession(
            plan, ctx, backend_name=f"{self.name}[workers={workers}]")
        session.report.process_workers = workers
        if workers <= 1:
            session.run_serial()
            return session.finish()
        materialized: Dict[int, Dataset] = {}
        for node in session.estimator_nodes():
            self._fit_parallel(session, node, materialized, workers)
        return session.finish()

    def _fit_parallel(self, session: TrainingSession, node: g.OpNode,
                      materialized: Dict[int, Dataset],
                      workers: int) -> None:
        report = session.report
        if node.id in session.fitted:
            # Spliced from the session's FitStore by training key (warm
            # retrain): nothing to ship, no wave to run.
            return
        op = node.op
        roots = [p for p in node.parents]
        try:
            # Content keys are only computed when tracing is active:
            # spans then correlate by op key across backends, and the
            # hashing cost stays off the default path.
            program, sources = _lower_shard_program(
                roots, session=session, materialized=materialized,
                compute_keys=obs_trace.enabled())
        except UnshippableFlow as exc:
            session.fit_estimator(node)
            report.process_fallback.append(f"{node.label}: {exc}")
            return

        if not any(step.kind == prog.TRANSFORM for step in program):
            # Pure-source flow: nothing to parallelize, no IPC to pay.
            session.fit_estimator(node)
            return

        stats_ok = (self.merge_stats
                    and hasattr(op, "partition_stats")
                    and hasattr(op, "fit_from_stats"))
        # Only the *shipping* work lives in the try: an error raised by
        # the estimator's own fit must surface as-is, not be relabelled
        # "unshippable" and re-run from scratch.
        fallback = None
        try:
            if stats_ok:
                spec = (node.id, op,
                        tuple(program.slot_of(r.id) for r in roots))
                result = self._run_wave(session, program, sources, [],
                                        spec, workers)
            else:
                outputs = [(str(r.id), r) for r in roots
                           if r.kind != g.SOURCE
                           and r.id not in materialized]
                result = None
                if outputs:
                    result = self._run_wave(
                        session, program, sources,
                        [(name, program.slot_of(r.id))
                         for name, r in outputs],
                        None, workers)
        except (UnshippableFlow,) + _SHIP_ERRORS as exc:
            fallback = type(exc).__name__
        except BrokenProcessPool:
            self._drop_pool(workers)
            fallback = "broken pool"
        except CancelledError:
            # The pool was shut down mid-wave (e.g. global teardown);
            # don't drop it here — the shutter already owns its fate.
            fallback = "pool cancelled"
        if fallback is not None:
            session.fit_estimator(node)
            report.process_fallback.append(f"{node.label}: {fallback}")
            return

        if stats_ok:
            with obs_trace.span(f"fit:{node.label}", cat="fit",
                                args={"node_id": node.id}):
                with session.timer.time_block(node.id):
                    model = op.fit_from_stats(result["stats"])
            with session._lock:
                session.fitted[node.id] = model
                report.estimator_seconds[node.id] = \
                    session.timer.times[node.id]
                session.store_fit(node, model)
            report.process_stat_merged.append(node.label)
            return
        if result is not None:
            for name, root in outputs:
                ds = Dataset(session.ctx, len(result["rows"][name]),
                             _StoredPartitions(result["rows"][name]),
                             name=f"process({root.label})")
                with session._lock:
                    session.env[root.id] = ds
                materialized[root.id] = ds
        session.fit_estimator(node)
        report.process_gathered.append(node.label)

    # ------------------------------------------------------------------
    # Wave execution
    # ------------------------------------------------------------------
    def _run_wave(self, session: Optional[TrainingSession],
                  program: prog.OpProgram, sources,
                  out_slots, stats_spec, workers: int) -> Dict[str, Any]:
        """Run one program over all partitions, sharded across workers."""
        counts = {ds.num_partitions for ds in sources.values()}
        if len(counts) != 1:
            raise UnshippableFlow(
                f"sources disagree on partitioning: {sorted(counts)}")
        num_partitions = counts.pop()
        blob = pickle.dumps((program.ops, out_slots, stats_spec),
                            protocol=pickle.HIGHEST_PROTOCOL)
        shards = min(workers, num_partitions)
        bounds = [round(j * num_partitions / shards)
                  for j in range(shards + 1)]
        chunks = [range(bounds[j], bounds[j + 1]) for j in range(shards)
                  if bounds[j] < bounds[j + 1]]
        pool = self._pool(workers)
        traced = obs_trace.enabled()
        wave_span = obs_trace.span(
            "process.wave", cat="wave",
            key=(program.ops[-1].key or None) if program.ops else None,
            args={"shards": len(chunks), "partitions": num_partitions})
        with wave_span:
            futures = []
            for chunk in chunks:
                src = {nid: [ds.partition(i) for i in chunk]
                       for nid, ds in sources.items()}
                futures.append(pool.submit(_execute_shard, blob, src,
                                           len(chunk), traced))
            deadline = (None if self.task_timeout is None
                        else time.monotonic() + self.task_timeout)
            results = []
            for future in futures:
                remaining = (None if deadline is None
                             else max(0.0, deadline - time.monotonic()))
                try:
                    results.append(future.result(timeout=remaining))
                except FutureTimeoutError:
                    for f in futures:
                        f.cancel()
                    # A shared pool may be serving other backends: leave
                    # it alive (the wedged worker frees itself
                    # eventually); only a private pool is torn down.
                    if not self.reuse_pool:
                        self._drop_pool(workers)
                    raise RuntimeError(
                        f"process backend wave timed out after "
                        f"{self.task_timeout}s "
                        f"({len(results)}/{len(futures)} "
                        "shards finished); raise task_timeout or check "
                        "for a wedged operator") from None
            merged: Dict[str, Any] = {
                "rows": {name: [] for name, _ in out_slots},
                "stats": [],
            }
            for shard_idx, result in enumerate(results):
                for name, parts in result["rows"].items():
                    merged["rows"][name].extend(parts)
                merged["stats"].extend(result["stats"])
                if session is not None:
                    for node_id, seconds in result["times"].items():
                        session.timer.add(node_id, seconds)
                obs_trace.absorb(result.get("spans"),
                                 worker=f"shard{shard_idx}")
        return merged

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def apply_batch(self, fitted: "FittedPipeline", data: Dataset) -> Dataset:
        """Batch inference with partitions computed in worker processes.

        Falls back to the serial reference path for single-partition
        inputs, ``workers=1``, or unshippable pipelines; results are
        byte-identical either way (same ``apply_partition`` chain over
        the same partitions).
        """
        workers = self.workers or os.cpu_count() or 1
        if workers <= 1 or data.num_partitions < 2:
            return super().apply_batch(fitted, data)
        try:
            program, sources = _lower_shard_program(
                [fitted.sink],
                virtual_sources={fitted.input_node.id: data},
                program_passes=getattr(fitted, "program_passes", ()))
            if not any(step.kind == prog.TRANSFORM for step in program):
                return super().apply_batch(fitted, data)
            result = self._run_wave(
                None, program, sources,
                [("out", program.slot_of(fitted.sink.id))],
                None, workers)
        except BrokenProcessPool:
            self._drop_pool(workers)
            return super().apply_batch(fitted, data)
        except CancelledError:
            return super().apply_batch(fitted, data)
        except (UnshippableFlow,) + _SHIP_ERRORS:
            return super().apply_batch(fitted, data)
        return Dataset(data.ctx, data.num_partitions,
                       _StoredPartitions(result["rows"]["out"]),
                       name=f"process({data.name})")

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(workers={self.workers}, "
                f"task_timeout={self.task_timeout})")
