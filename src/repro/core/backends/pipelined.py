"""PipelinedBackend: thread-pool execution of independent pipeline stages.

Estimators are the pipeline breakers, so the unit of useful concurrency is
the estimator fit: while one branch's solver iterates, another branch's
featurization (which runs lazily inside *its* solver's fit) can proceed on
a different thread.  The backend builds the estimator-level dependency
graph (estimator B must finish before estimator A when B is an ancestor of
A — e.g. A's training flow applies B's fitted transformer) and schedules
each estimator as a future that first waits on its dependencies.

Scheduling is deadlock-free by construction: estimators are submitted in
topological order and ``ThreadPoolExecutor`` starts tasks FIFO, so the set
of started tasks is always a prefix of submission order; a started task
only waits on strictly earlier tasks, hence the earliest unfinished task
never waits.  Determinism: every estimator still consumes exactly the same
training flow as under :class:`~repro.core.backends.local.LocalBackend`,
so predictions are byte-identical — only wall-clock attribution changes,
which is why :class:`~repro.core.executor.ExclusiveTimer` keeps per-thread
inner-time stacks.

Batch inference overlaps too: output partitions are materialized
concurrently (partition computations are independent and deterministic).
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core import graph as g
from repro.core.backends.base import ExecutionBackend, TrainingSession
from repro.dataset.context import Context
from repro.dataset.dataset import Dataset

if TYPE_CHECKING:
    from repro.core.pipeline import FittedPipeline
    from repro.core.plan import PhysicalPlan


class PipelinedBackend(ExecutionBackend):
    """Overlap independent estimator fits on a thread pool."""

    name = "pipelined"

    def __init__(self, max_workers: int = 4):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers

    def execute(self, plan: "PhysicalPlan",
                ctx: Optional[Context] = None) -> "FittedPipeline":
        session = TrainingSession(plan, ctx, backend_name=self.name)
        estimators = session.estimator_nodes()  # topological order

        deps: Dict[int, List[int]] = {}
        for node in estimators:
            deps[node.id] = [p.id for p in g.ancestors([node])
                             if p.kind == g.ESTIMATOR and p.id != node.id]

        futures: Dict[int, Future] = {}

        def run_one(node: g.OpNode):
            for dep in deps[node.id]:
                futures[dep].result()
            return session.fit_estimator(node)

        pool = ThreadPoolExecutor(max_workers=self.max_workers)
        try:
            for node in estimators:
                futures[node.id] = pool.submit(run_one, node)
            # Collect in topological order so the root cause of a failed
            # chain surfaces first.
            for node in estimators:
                futures[node.id].result()
        finally:
            # Fail fast: drop still-queued fits when one estimator raised
            # (no-op on the success path).
            pool.shutdown(wait=True, cancel_futures=True)
        return session.finish()

    def apply_batch(self, fitted: "FittedPipeline", data: Dataset) -> Dataset:
        out = super().apply_batch(fitted, data)
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            parts = list(pool.map(out.partition, range(out.num_partitions)))

        def compute(i: int) -> list:
            # Copy on every pull: consumers may mutate partitions in place.
            return list(parts[i])

        return Dataset(out.ctx, out.num_partitions, compute, (out,),
                       name=f"pipelined({out.name})")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_workers={self.max_workers})"
