"""Columnar kernels: batch-invariant vectorized execution of op chains.

The interpreter executes a lowered :class:`~repro.core.program.OpProgram`
op by op, batch by batch, through Python-level ``apply_partition`` calls.
That per-op dispatch (and, for text, the per-item ``csr_matrix``
construction) dominates serving cost long before BLAS does.  This module
is the second lowering target behind the :class:`ProgramPass` hook
(ROADMAP open item 1): ``VectorizePass`` groups runs of fusable
transform ops into a single :class:`KernelStage` whose
``apply_partition`` executes the whole micro-batch as a handful of numpy
calls over one columnar block.

**Batch invariance is the contract.**  Every kernel computes each row's
result via the *same floating-point reduction order* as the per-item
``op.apply`` path, so vectorized batched outputs are byte-identical to
``fitted.apply`` — not just ulp-close.  Concretely:

- sparse ``csr @ dense`` GEMM reduces each row's dot products over the
  stored indices exactly like the per-row product, so sparse matmuls
  batch freely;
- dense ``(B, d) @ (d, k)`` GEMM re-associates the reduction (blocked
  SIMD), so dense matmul kernels run a per-row GEMV loop into a
  preallocated output block instead — the loop is over rows, not
  elements, and is still far cheaper than per-op dispatch;
- row-wise reductions that BLAS would re-associate (``p.sum()``,
  ``np.linalg.norm``) run per row; elementwise broadcasting, comparisons
  (``max``/``argmax``) and structural ops (stack, slice, hstack) are
  exact and batch freely.

A kernel that cannot preserve this contract for some input form returns
``None`` from :meth:`Kernel.run`, and the whole stage falls back to the
per-item member chain — never to the members' BLAS-batched
``apply_partition`` overrides, which are exactly the ulp-divergent paths
vectorization retires.

Operators opt in by overriding ``Transformer.columnar_kernel()``
(:mod:`repro.core.operators`) to return a :class:`Kernel`; see
``nodes/numeric.py``, ``nodes/text.py`` and ``nodes/learning/*`` for the
implementations.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.operators import Transformer
from repro.obs import trace as obs_trace

#: columnar block forms flowing between kernels inside one stage
ROWS = "rows"  #: plain per-item list (dicts, ints, unliftable rows)
DENSE = "dense"  #: one C-contiguous float64 (B, d) block
SPARSE = "sparse"  #: one (B, d) CSR block

Block = Tuple[str, Any]


def _lift_rows(rows: Sequence[Any]) -> Optional[Block]:
    """Promote a homogeneous list of rows to one columnar block.

    Returns ``None`` when the rows are not uniformly liftable (mixed
    types, per-item descriptor matrices, non-float dtypes) — the stage
    then offers the kernels the raw ``ROWS`` form instead.
    """
    first = rows[0]
    if sp.issparse(first):
        if first.shape[0] != 1:
            return None
        for r in rows:
            if not sp.issparse(r) or r.shape != first.shape:
                return None
        return (SPARSE, sp.vstack(rows).tocsr())
    if (
        isinstance(first, np.ndarray)
        and first.ndim == 1
        and first.dtype == np.float64
    ):
        n = first.shape[0]
        for r in rows:
            if (
                not isinstance(r, np.ndarray)
                or r.ndim != 1
                or r.dtype != np.float64
                or r.shape[0] != n
            ):
                return None
        return (DENSE, np.vstack(rows))
    return None


def _block_rows(form: str, value: Any) -> List[Any]:
    """Split a columnar block back into independent per-item rows.

    Dense rows are copied out of the block so downstream consumers (the
    serving cache in particular) never pin the whole batch buffer
    through a row view.
    """
    if form == DENSE:
        return [row.copy() for row in value]
    if form == SPARSE:
        return [value[i] for i in range(value.shape[0])]
    return list(value)


def _batch_matmul(form: str, value: Any, weights: np.ndarray) -> Optional[np.ndarray]:
    """``block @ weights`` with rows byte-identical to per-row products.

    Sparse blocks use one CSR GEMM (each row reduces over its stored
    indices, exactly the per-item order).  Dense blocks run a per-row
    GEMV loop into a preallocated output: a single (B, d) @ (d, k) GEMM
    re-associates the reduction and its rows are *not* bit-equal to the
    per-item ``row @ weights``.
    """
    if form == SPARSE:
        return np.asarray(value @ weights)
    if form == DENSE:
        out = np.empty(
            (value.shape[0], weights.shape[1]),
            dtype=np.result_type(value.dtype, weights.dtype),
        )
        for i in range(value.shape[0]):
            np.matmul(value[i], weights, out=out[i])
        return out
    return None


class Kernel:
    """One vectorized op over a columnar block.

    ``run`` maps ``(form, value)`` to a new ``(form, value)`` whose rows
    are byte-identical to the member op's per-item ``apply``, or returns
    ``None`` when the contract cannot be preserved for this input form
    (the stage then falls back to the per-item chain).
    """

    def run(self, form: str, value: Any) -> Optional[Block]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ElementwiseKernel(Kernel):
    """A row-elementwise function applied to the dense (B, d) block.

    Broadcast arithmetic is elementwise per row, so any per-item
    ``fn(as_dense_row(row))`` of this shape is byte-identical batched.
    Sparse blocks densify first — ``toarray`` rows are exact copies of
    the per-item ``todense``.
    """

    def __init__(self, fn):
        self.fn = fn

    def run(self, form: str, value: Any) -> Optional[Block]:
        if form == SPARSE:
            return (DENSE, self.fn(value.toarray()))
        if form == DENSE:
            return (DENSE, self.fn(value))
        return None


class LinearMapKernel(Kernel):
    """``row @ weights + intercept`` over the whole block."""

    def __init__(self, weights: np.ndarray, intercept: np.ndarray):
        self.weights = weights
        self.intercept = intercept

    def run(self, form: str, value: Any) -> Optional[Block]:
        block = _batch_matmul(form, value, self.weights)
        if block is None:
            return None
        return (DENSE, block + self.intercept)


class RandomFeaturesKernel(Kernel):
    """``scale * cos(row @ w + b)`` over the whole block."""

    def __init__(self, w: np.ndarray, b: np.ndarray, scale: float):
        self.w = w
        self.b = b
        self.scale = scale

    def run(self, form: str, value: Any) -> Optional[Block]:
        block = _batch_matmul(form, value, self.w)
        if block is None:
            return None
        return (DENSE, self.scale * np.cos(block + self.b))


class LogisticKernel(Kernel):
    """Softmax head: logits via the batch matmul, per-row normalization.

    The row max is comparison-based (exact); the probability sum runs
    per row because a (B, k)-axis reduction would re-associate it.
    """

    def __init__(self, weights: np.ndarray):
        self.weights = weights

    def run(self, form: str, value: Any) -> Optional[Block]:
        logits = _batch_matmul(form, value, self.weights)
        if logits is None:
            return None
        logits = logits - logits.max(axis=1, keepdims=True)
        p = np.exp(logits)
        sums = np.empty((p.shape[0], 1), dtype=p.dtype)
        for i in range(p.shape[0]):
            sums[i, 0] = p[i].sum()
        return (DENSE, p / sums)


class PCAKernel(Kernel):
    """``(row - mean) @ components`` for dense 1-D rows.

    Sparse rows return ``None``: the per-item path densifies them to a
    2-D ``(1, k)`` matrix, a shape the columnar block cannot represent.
    """

    def __init__(self, components: np.ndarray, mean: np.ndarray):
        self.components = components
        self.mean = mean

    def run(self, form: str, value: Any) -> Optional[Block]:
        if form != DENSE:
            return None
        centered = value - self.mean
        out = np.empty(
            (centered.shape[0], self.components.shape[1]),
            dtype=np.result_type(centered.dtype, self.components.dtype),
        )
        for i in range(centered.shape[0]):
            np.matmul(centered[i], self.components, out=out[i])
        return (DENSE, out)


class NormalizerKernel(Kernel):
    """L2 row normalization; norms run per row (BLAS would re-associate).

    Dense 1-D rows only: the per-item op treats sparse rows and 2-D
    descriptor matrices through different formulas.
    """

    def __init__(self, eps: float):
        self.eps = eps

    def run(self, form: str, value: Any) -> Optional[Block]:
        if form != DENSE:
            return None
        norms = np.empty((value.shape[0], 1), dtype=value.dtype)
        for i in range(value.shape[0]):
            norms[i, 0] = np.linalg.norm(value[i])
        return (DENSE, value / (norms + self.eps))


class SparseVectorizeKernel(Kernel):
    """``{term: weight}`` rows -> one (B, dim) CSR block in one build.

    The per-item path pays a ``csr_matrix`` construction per request —
    the dominant cost of text serving.  One COO->CSR build for the whole
    batch produces rows byte-identical to the per-item matrices: vocab
    indices are unique per row, and CSR canonicalization sorts each
    row's columns exactly like the single-row build.
    """

    def __init__(self, vocabulary, dim: int):
        self.vocabulary = vocabulary
        self.dim = dim

    def run(self, form: str, value: Any) -> Optional[Block]:
        if form != ROWS:
            return None
        rows_idx: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        get = self.vocabulary.get
        for i, term_weights in enumerate(value):
            if not isinstance(term_weights, dict):
                return None
            for term, weight in term_weights.items():
                idx = get(term)
                if idx is not None:
                    rows_idx.append(i)
                    cols.append(idx)
                    vals.append(weight)
        block = sp.csr_matrix(
            (
                np.asarray(vals, dtype=np.float64),
                (
                    np.asarray(rows_idx, dtype=np.int32),
                    np.asarray(cols, dtype=np.int32),
                ),
            ),
            shape=(len(value), self.dim),
        )
        return (SPARSE, block)


class MaxClassKernel(Kernel):
    """Score block -> argmax class ids (comparison-based: exact)."""

    def run(self, form: str, value: Any) -> Optional[Block]:
        if form == SPARSE:
            value = value.toarray()
        elif form != DENSE:
            return None
        return (ROWS, [int(i) for i in np.argmax(value, axis=1)])


class DensifyKernel(Kernel):
    """Sparse block -> dense block (``toarray`` rows are exact copies)."""

    def run(self, form: str, value: Any) -> Optional[Block]:
        if form == SPARSE:
            return (DENSE, value.toarray())
        if form == DENSE:
            return (DENSE, value)
        return None


class InterceptKernel(Kernel):
    """Append the constant 1.0 bias column (structural: exact)."""

    def run(self, form: str, value: Any) -> Optional[Block]:
        if form == DENSE:
            ones = np.ones((value.shape[0], 1))
            return (DENSE, np.hstack([value, ones]))
        if form == SPARSE:
            ones = sp.csr_matrix(np.ones((value.shape[0], 1)))
            return (SPARSE, sp.hstack([value, ones]).tocsr())
        return None


class FeatureSelectorKernel(Kernel):
    """Keep the given column indices (structural: exact)."""

    def __init__(self, indices: np.ndarray):
        self.indices = indices

    def run(self, form: str, value: Any) -> Optional[Block]:
        if form == DENSE:
            return (DENSE, value[:, self.indices])
        if form == SPARSE:
            return (SPARSE, value.tocsr()[:, self.indices])
        return None


class ChainKernel(Kernel):
    """Sequential composition (a fused stage's members, in order)."""

    def __init__(self, kernels: Sequence[Kernel]):
        self.kernels = list(kernels)

    def run(self, form: str, value: Any) -> Optional[Block]:
        for kernel in self.kernels:
            out = kernel.run(form, value)
            if out is None:
                return None
            form, value = out
        return (form, value)


class KernelStage(Transformer):
    """A run of transform ops grouped by ``VectorizePass`` into one op.

    A plain :class:`Transformer`, so every existing consumer — the
    serving interpreter, replica workers, ``profile_ops``, pickling —
    handles it with zero dispatch changes:

    - :meth:`apply` chains the members' per-item ``apply`` (the exact
      reference numerics);
    - :meth:`apply_partition` lifts the batch into a columnar block and
      runs the members' kernels over it; if any kernel declines the
      input form, the *whole stage* falls back to the per-item chain —
      never to the members' BLAS-batched overrides — so vectorized
      plans are batch-invariant unconditionally.

    Kernels are built lazily from the members and dropped on pickling
    (replica workers rebuild them on first batch).
    """

    def __init__(self, members: Sequence[Transformer], labels: Sequence[str]):
        if not members:
            raise ValueError("KernelStage requires at least one member")
        self.members = list(members)
        #: original op labels, in execution order (for describe()/explain())
        self.member_labels = list(labels)
        self.weight = max(getattr(m, "weight", 1) for m in self.members)
        self._kernels: Optional[List[Kernel]] = None

    def kernels(self) -> List[Kernel]:
        """The members' kernels, built once; empty when any member lacks one."""
        if self._kernels is None:
            kernels: List[Kernel] = []
            for member in self.members:
                kernel = member.columnar_kernel()
                if kernel is None:
                    kernels = []
                    break
                kernels.append(kernel)
            self._kernels = kernels
        return self._kernels

    def apply(self, item: Any) -> Any:
        for member in self.members:
            item = member.apply(item)
        return item

    def apply_partition(self, items: List[Any]) -> List[Any]:
        if not items:
            return []
        if not obs_trace.enabled():
            return self._run_partition(items)
        with obs_trace.span(
            "kernel.stage",
            cat="serving",
            args={
                "members": "+".join(self.member_labels),
                "batch": len(items),
            },
        ):
            return self._run_partition(items)

    def _run_partition(self, items: List[Any]) -> List[Any]:
        kernels = self.kernels()
        if kernels:
            block = _lift_rows(items) or (ROWS, items)
            form, value = block
            for kernel in kernels:
                out = kernel.run(form, value)
                if out is None:
                    break
                form, value = out
            else:
                return _block_rows(form, value)
        # Fallback: the per-item member chain.  Not the members'
        # apply_partition — those BLAS-batched overrides are the
        # ulp-divergent paths this stage exists to retire.
        return [self.apply(x) for x in items]

    def columnar_kernel(self) -> Optional[Kernel]:
        kernels = self.kernels()
        return ChainKernel(kernels) if kernels else None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_kernels"] = None  # kernels hold no fitted state; rebuild
        return state

    def __repr__(self) -> str:
        names = "+".join(type(m).__name__ for m in self.members)
        return f"KernelStage({names})"
