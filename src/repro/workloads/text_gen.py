"""Synthetic Amazon-Reviews-like text classification workload.

Documents are drawn from class-conditional unigram mixtures over a Zipfian
vocabulary: a shared background distribution plus class-specific sentiment
words.  The result matches what the optimizer sees on the real dataset —
highly sparse bag-of-n-grams features with a learnable binary signal.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.workloads.base import Workload

_POSITIVE = ["great", "excellent", "love", "perfect", "amazing", "best",
             "wonderful", "fantastic", "happy", "recommend"]
_NEGATIVE = ["terrible", "awful", "hate", "broken", "worst", "refund",
             "disappointed", "waste", "poor", "return"]


def _vocabulary(size: int) -> List[str]:
    return [f"word{i:05d}" for i in range(size)]


def _zipf_probs(size: int) -> np.ndarray:
    ranks = np.arange(1, size + 1, dtype=np.float64)
    probs = 1.0 / ranks
    return probs / probs.sum()


def _make_documents(n: int, vocab: List[str], probs: np.ndarray,
                    doc_len_mean: int, num_classes: int, signal: float,
                    rng: np.random.Generator) -> Tuple[List[str], List[int]]:
    class_words = [_POSITIVE, _NEGATIVE]
    docs, labels = [], []
    vocab_arr = np.asarray(vocab, dtype=object)
    for _ in range(n):
        label = int(rng.integers(num_classes))
        length = max(int(rng.poisson(doc_len_mean)), 3)
        words = list(vocab_arr[rng.choice(len(vocab), size=length, p=probs)])
        n_signal = rng.binomial(length, signal)
        pool = class_words[label % len(class_words)]
        for _ in range(n_signal):
            words[int(rng.integers(length))] = pool[int(rng.integers(len(pool)))]
        docs.append(" ".join(words))
        labels.append(label)
    return docs, labels


def amazon_reviews(num_train: int = 2000, num_test: int = 500,
                   vocab_size: int = 5000, doc_len_mean: int = 40,
                   num_classes: int = 2, signal: float = 0.15,
                   seed: int = 0) -> Workload:
    """Generate the synthetic Amazon-style review workload.

    Defaults are laptop scale; the paper's full dataset has 65M training
    reviews and 100k sparse features (Table 3).
    """
    rng = np.random.default_rng(seed)
    vocab = _vocabulary(vocab_size)
    probs = _zipf_probs(vocab_size)
    train_docs, train_labels = _make_documents(
        num_train, vocab, probs, doc_len_mean, num_classes, signal, rng)
    test_docs, test_labels = _make_documents(
        num_test, vocab, probs, doc_len_mean, num_classes, signal, rng)
    return Workload(
        name="amazon", train_items=train_docs, train_labels=train_labels,
        test_items=test_docs, test_labels=test_labels,
        num_classes=num_classes,
        metadata={"vocab_size": vocab_size, "doc_len_mean": doc_len_mean,
                  "type": "text",
                  "paper_scale": {"num_train": 65_000_000,
                                  "solve_features": 100_000,
                                  "sparsity": 0.001}})
