"""Dataset characteristics registry (paper Table 3).

``PAPER_DATASETS`` records the characteristics the paper reports;
``measured_characteristics`` computes the same row for a generated
workload, so the Table 3 bench can print paper-vs-generated side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.dataset.sizing import estimate_size
from repro.workloads.base import Workload


@dataclass(frozen=True)
class DatasetCharacteristics:
    """One row of Table 3."""

    name: str
    train_size_gb: float
    num_train: int
    test_size_gb: float
    num_test: int
    classes: int
    data_type: str
    solve_features: int
    solve_density: float  # fraction of non-zeros in the solve input
    solve_size_gb: float


PAPER_DATASETS: Dict[str, DatasetCharacteristics] = {
    "amazon": DatasetCharacteristics(
        "Amazon", 13.97, 65_000_000, 3.88, 18_091_702, 2, "text",
        100_000, 0.001, 89.1),
    "timit": DatasetCharacteristics(
        "TIMIT", 7.5, 2_251_569, 0.39, 115_934, 147, "440-dim vector",
        528_000, 1.0, 8857.0),
    "imagenet": DatasetCharacteristics(
        "ImageNet", 74.0, 1_281_167, 3.3, 50_000, 1000, "10k pixels image",
        262_144, 1.0, 2502.0),
    "voc": DatasetCharacteristics(
        "VOC", 0.428, 5000, 0.420, 5000, 20, "260k pixels image",
        40_960, 1.0, 1.52),
    "cifar10": DatasetCharacteristics(
        "CIFAR-10", 0.500, 500_000, 0.001, 10_000, 10, "1024 pixels image",
        135_168, 1.0, 62.9),
    "youtube8m": DatasetCharacteristics(
        "Youtube8m", 22.07, 5_786_881, 6.3, 1_652_167, 4800,
        "1024-dim vector", 1024, 1.0, 44.15),
}


def _items_gb(items) -> float:
    return estimate_size(items) / 1e9


def measured_characteristics(workload: Workload,
                             solve_features: Optional[int] = None,
                             solve_density: Optional[float] = None
                             ) -> DatasetCharacteristics:
    """Compute a Table-3 row for a generated workload.

    ``solve_features``/``solve_density`` describe the featurized solve
    input when known (they depend on the pipeline, not the raw data);
    when omitted they are estimated from the raw items.
    """
    first = workload.train_items[0]
    if solve_features is None:
        if sp.issparse(first):
            solve_features = int(first.shape[-1])
        else:
            arr = np.asarray(first)
            solve_features = int(arr.size) if arr.dtype != object else 0
    if solve_density is None:
        if sp.issparse(first):
            solve_density = first.nnz / max(first.shape[-1], 1)
        else:
            solve_density = 1.0
    solve_gb = (workload.num_train * solve_features * 8.0
                * solve_density) / 1e9
    return DatasetCharacteristics(
        name=workload.name,
        train_size_gb=_items_gb(workload.train_items),
        num_train=workload.num_train,
        test_size_gb=_items_gb(workload.test_items),
        num_test=workload.num_test,
        classes=workload.num_classes,
        data_type=workload.metadata.get("type", "unknown"),
        solve_features=solve_features,
        solve_density=solve_density,
        solve_size_gb=solve_gb)
