"""Synthetic image classification workloads (VOC / ImageNet / CIFAR stand-ins).

Images are class-conditional textures: each class has a characteristic set
of oriented gratings (spatial frequencies and orientations) blended with
noise.  Oriented structure is exactly what gradient-histogram descriptors
(SIFT) and learned convolution filters pick up, so the image pipelines
recover real class signal.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.workloads.base import Workload


def _grating(h: int, w: int, freq: float, theta: float,
             phase: float) -> np.ndarray:
    ys, xs = np.mgrid[0:h, 0:w]
    proj = xs * np.cos(theta) + ys * np.sin(theta)
    return np.sin(2 * np.pi * freq * proj / max(h, w) + phase)


def _class_texture(h: int, w: int, channels: int, label: int,
                   rng: np.random.Generator, noise: float) -> np.ndarray:
    # Two class-specific orientations/frequencies, fixed per label.
    spec = np.random.default_rng(label + 1000)
    img = np.zeros((h, w, channels))
    for _ in range(2):
        freq = spec.uniform(2, 8)
        theta = spec.uniform(0, np.pi)
        phase = rng.uniform(0, 2 * np.pi)
        pattern = _grating(h, w, freq, theta, phase)
        weights = spec.uniform(0.3, 1.0, size=channels)
        img += pattern[:, :, None] * weights
    img += noise * rng.standard_normal((h, w, channels))
    img -= img.min()
    peak = img.max()
    return img / peak if peak > 0 else img


def _make_images(n: int, h: int, w: int, channels: int, num_classes: int,
                 noise: float, rng: np.random.Generator
                 ) -> Tuple[List[np.ndarray], List[int]]:
    items, labels = [], []
    for _ in range(n):
        label = int(rng.integers(num_classes))
        items.append(_class_texture(h, w, channels, label, rng, noise))
        labels.append(label)
    return items, labels


def voc_images(num_train: int = 120, num_test: int = 60, size: int = 64,
               num_classes: int = 5, noise: float = 0.4,
               seed: int = 0) -> Workload:
    """VOC-2007-like: few, larger images, many descriptors per image."""
    rng = np.random.default_rng(seed)
    train_items, train_labels = _make_images(
        num_train, size, size, 3, num_classes, noise, rng)
    test_items, test_labels = _make_images(
        num_test, size, size, 3, num_classes, noise, rng)
    return Workload(
        name="voc", train_items=train_items, train_labels=train_labels,
        test_items=test_items, test_labels=test_labels,
        num_classes=num_classes,
        metadata={"size": size, "type": "image",
                  "paper_scale": {"num_train": 5000, "classes": 20,
                                  "solve_features": 40_960}})


def imagenet_images(num_train: int = 200, num_test: int = 80, size: int = 64,
                    num_classes: int = 10, noise: float = 0.4,
                    seed: int = 0) -> Workload:
    """ImageNet-like: more images and classes than the VOC stand-in."""
    rng = np.random.default_rng(seed)
    train_items, train_labels = _make_images(
        num_train, size, size, 3, num_classes, noise, rng)
    test_items, test_labels = _make_images(
        num_test, size, size, 3, num_classes, noise, rng)
    return Workload(
        name="imagenet", train_items=train_items, train_labels=train_labels,
        test_items=test_items, test_labels=test_labels,
        num_classes=num_classes,
        metadata={"size": size, "type": "image",
                  "paper_scale": {"num_train": 1_281_167, "classes": 1000,
                                  "solve_features": 262_144}})


def cifar10_images(num_train: int = 300, num_test: int = 100, size: int = 32,
                   num_classes: int = 10, noise: float = 0.35,
                   seed: int = 0) -> Workload:
    """CIFAR-10-like: small 32x32x3 images, 10 classes."""
    rng = np.random.default_rng(seed)
    train_items, train_labels = _make_images(
        num_train, size, size, 3, num_classes, noise, rng)
    test_items, test_labels = _make_images(
        num_test, size, size, 3, num_classes, noise, rng)
    return Workload(
        name="cifar10", train_items=train_items, train_labels=train_labels,
        test_items=test_items, test_labels=test_labels,
        num_classes=num_classes,
        metadata={"size": size, "type": "image",
                  "paper_scale": {"num_train": 500_000, "classes": 10,
                                  "solve_features": 135_168}})
