"""Common workload container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from repro.dataset.context import Context
from repro.dataset.dataset import Dataset


@dataclass
class Workload:
    """A train/test split of raw items plus integer class labels."""

    name: str
    train_items: List[Any]
    train_labels: List[int]
    test_items: List[Any]
    test_labels: List[int]
    num_classes: int
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def num_train(self) -> int:
        return len(self.train_items)

    @property
    def num_test(self) -> int:
        return len(self.test_items)

    def train_data(self, ctx: Context, partitions: int = 4) -> Dataset:
        return ctx.parallelize(self.train_items, partitions)

    def train_label_vectors(self, ctx: Context, partitions: int = 4,
                            negative: float = -1.0) -> Dataset:
        """One-hot (+1/negative) label rows aligned with ``train_data``."""
        return ctx.parallelize(
            [_one_hot(y, self.num_classes, negative)
             for y in self.train_labels], partitions)

    def test_data(self, ctx: Context, partitions: int = 4) -> Dataset:
        return ctx.parallelize(self.test_items, partitions)


def _one_hot(label: int, num_classes: int, negative: float) -> np.ndarray:
    vec = np.full(num_classes, negative)
    vec[int(label)] = 1.0
    return vec
