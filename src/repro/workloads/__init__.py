"""Synthetic workload generators standing in for the paper's datasets.

The paper evaluates on Amazon Reviews (65M docs), TIMIT (2.2M frames),
ImageNet (1.28M images), VOC 2007, CIFAR-10 and YouTube-8M.  None are
available offline, so each generator produces a scaled-down synthetic
dataset matched on the statistics the optimizer actually consumes —
record counts, dimensionality, sparsity, record size, class structure —
with genuinely learnable class signal so accuracy-versus-time experiments
converge.
"""

from repro.workloads.text_gen import amazon_reviews
from repro.workloads.speech_gen import timit_frames
from repro.workloads.image_gen import (
    cifar10_images,
    imagenet_images,
    voc_images,
)
from repro.workloads.vector_gen import dense_vectors, sparse_vectors, youtube8m
from repro.workloads.base import Workload
from repro.workloads.registry import (
    PAPER_DATASETS,
    DatasetCharacteristics,
    measured_characteristics,
)

__all__ = [
    "DatasetCharacteristics",
    "PAPER_DATASETS",
    "Workload",
    "amazon_reviews",
    "cifar10_images",
    "dense_vectors",
    "imagenet_images",
    "measured_characteristics",
    "sparse_vectors",
    "timit_frames",
    "voc_images",
    "youtube8m",
]
