"""Generic dense/sparse vector workloads and the YouTube-8M stand-in.

These back the solver micro-benchmarks (Figures 6 and 8): dense vectors
reproduce the (binary) TIMIT solve inputs, sparse vectors reproduce the
Amazon bag-of-n-grams solve inputs, with the feature dimension swept by the
benchmark harness.
"""

from __future__ import annotations


import numpy as np
import scipy.sparse as sp

from repro.workloads.base import Workload


def dense_vectors(num_train: int = 1000, num_test: int = 200, dim: int = 512,
                  num_classes: int = 2, class_separation: float = 1.5,
                  seed: int = 0) -> Workload:
    """Dense Gaussian class clusters (binary-TIMIT-like solve input)."""
    rng = np.random.default_rng(seed)
    directions = rng.standard_normal((num_classes, dim))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)

    def make(n):
        labels = rng.integers(num_classes, size=n)
        x = rng.standard_normal((n, dim)) \
            + class_separation * directions[labels]
        return [row for row in x], [int(y) for y in labels]

    train_items, train_labels = make(num_train)
    test_items, test_labels = make(num_test)
    return Workload("dense", train_items, train_labels, test_items,
                    test_labels, num_classes,
                    metadata={"dim": dim, "type": "dense-vector"})


def sparse_vectors(num_train: int = 1000, num_test: int = 200,
                   dim: int = 10_000, nnz_per_row: int = 20,
                   num_classes: int = 2, signal: float = 2.0,
                   seed: int = 0) -> Workload:
    """Sparse rows with class-informative support (Amazon-like solve input)."""
    rng = np.random.default_rng(seed)
    # Each class prefers a distinct slice of the feature space.
    class_support = [rng.choice(dim, size=dim // 10, replace=False)
                     for _ in range(num_classes)]

    def make_row(label: int) -> sp.csr_matrix:
        k = max(nnz_per_row, 1)
        n_class = rng.binomial(k, 0.4)
        cols_class = rng.choice(class_support[label],
                                size=min(n_class, len(class_support[label])),
                                replace=False)
        cols_rand = rng.choice(dim, size=k - len(cols_class), replace=False)
        cols = np.unique(np.concatenate([cols_class, cols_rand]))
        vals = np.abs(rng.standard_normal(len(cols))) + 0.1
        vals[np.isin(cols, class_support[label])] *= signal
        return sp.csr_matrix((vals, (np.zeros(len(cols), dtype=int), cols)),
                             shape=(1, dim))

    def make(n):
        labels = [int(rng.integers(num_classes)) for _ in range(n)]
        return [make_row(y) for y in labels], labels

    train_items, train_labels = make(num_train)
    test_items, test_labels = make(num_test)
    return Workload("sparse", train_items, train_labels, test_items,
                    test_labels, num_classes,
                    metadata={"dim": dim, "nnz_per_row": nnz_per_row,
                              "type": "sparse-vector"})


def youtube8m(num_train: int = 2000, num_test: int = 500, dim: int = 1024,
              num_classes: int = 25, seed: int = 0) -> Workload:
    """YouTube-8M-like: pre-featurized dense 1024-d vectors, many classes.

    The real benchmark has 4800 (multi-label) classes over 5.8M videos;
    we flatten to single-label at reduced scale.
    """
    rng = np.random.default_rng(seed)
    means = rng.standard_normal((num_classes, dim)) * 1.2

    def make(n):
        labels = rng.integers(num_classes, size=n)
        x = means[labels] + rng.standard_normal((n, dim))
        return [row for row in x], [int(y) for y in labels]

    train_items, train_labels = make(num_train)
    test_items, test_labels = make(num_test)
    return Workload("youtube8m", train_items, train_labels, test_items,
                    test_labels, num_classes,
                    metadata={"dim": dim, "type": "dense-vector",
                              "paper_scale": {"num_train": 5_786_881,
                                              "classes": 4800}})
