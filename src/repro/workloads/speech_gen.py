"""Synthetic TIMIT-like phoneme-frame workload.

TIMIT frames are dense 440-dimensional acoustic feature vectors with 147
phoneme classes.  We generate dense Gaussian class clusters with a shared
low-rank covariance structure — dense, moderately separable vectors, which
is what the kernel-approximation pipeline (random cosine features + linear
solve) consumes.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Workload


def timit_frames(num_train: int = 2000, num_test: int = 500,
                 dim: int = 440, num_classes: int = 20,
                 class_separation: float = 2.0, seed: int = 0) -> Workload:
    """Dense frame vectors with Gaussian class structure.

    ``num_classes`` defaults to a scaled-down 20 (paper: 147) to keep the
    one-hot label matrix small at laptop scale.
    """
    rng = np.random.default_rng(seed)
    # Class means on a low-dimensional latent structure lifted to `dim`.
    latent = 16
    lift = rng.standard_normal((latent, dim)) / np.sqrt(latent)
    means = rng.standard_normal((num_classes, latent)) * class_separation

    def make(n):
        labels = rng.integers(num_classes, size=n)
        z = means[labels] + rng.standard_normal((n, latent))
        x = z @ lift + 0.5 * rng.standard_normal((n, dim))
        return [row for row in x], [int(y) for y in labels]

    train_items, train_labels = make(num_train)
    test_items, test_labels = make(num_test)
    return Workload(
        name="timit", train_items=train_items, train_labels=train_labels,
        test_items=test_items, test_labels=test_labels,
        num_classes=num_classes,
        metadata={"dim": dim, "type": "dense-vector",
                  "paper_scale": {"num_train": 2_251_569,
                                  "solve_features": 528_000,
                                  "classes": 147}})
