"""Incremental training: reuse fitted state across fits, sweeps, and data.

PR 5 gave every lowered op a content-addressed key; this package lifts
that to the training loop (ROADMAP open item 4), making "what actually
changed" a computed property instead of a human guess.  One primitive,
three consumers:

- :class:`FitStore` — a byte-budgeted, pickle-backed store of fitted
  operator state (and per-partition sufficient statistics) keyed by
  training key.
- :func:`refit` — warm retrain: splice stored state for the unchanged
  prefix of a modified pipeline, re-fit only downstream of the change.
- :class:`SweepPlanner` — deduped hyperparameter sweeps: merge a grid's
  candidate DAGs into one union program by key, execute each shared op
  once (``GridSearch(incremental=True)`` routes through it).
- streaming refit rides inside :func:`refit`: shardable estimators merge
  stored per-partition statistics with statistics of appended partitions
  instead of replaying old data (see
  :meth:`repro.core.backends.base.TrainingSession._fit_streaming`).

Byte-identity to a cold :class:`~repro.core.backends.local.LocalBackend`
fit is the acceptance bar throughout: keys hash content, stored state
round-trips through pickle exactly, and stat merges replay the serial
reduction order.
"""

from repro.incremental.fitstore import FitStore
from repro.incremental.refit import RefitDiff, diff_pipelines, refit
from repro.incremental.sweep import SweepPlanner, SweepReport

__all__ = [
    "FitStore",
    "RefitDiff",
    "SweepPlanner",
    "SweepReport",
    "diff_pipelines",
    "refit",
]
