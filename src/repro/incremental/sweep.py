"""Deduped hyperparameter sweeps: one union program, each shared op once.

The paper's Section 7 future work points hyperparameter search at the
optimizer (citing TuPAQ): candidate configurations of one pipeline share
most of their work, and a system that sees the whole grid can execute the
shared prefix once instead of once per trial.  :class:`SweepPlanner` does
exactly that with training keys (:func:`repro.core.program.training_keys`):

1. build every candidate pipeline from the grid,
2. key every node of every training DAG by content,
3. merge the DAGs into one *union* DAG with one canonical node per
   distinct key (the sweep-level common-subexpression elimination —
   stronger than the optimizer's structural CSE, because content
   addressing also merges nodes built independently by different
   ``builder`` calls over equal data),
4. gather the trial sinks under one union sink and fit that single
   pipeline once, on any execution backend,
5. slice one :class:`~repro.core.pipeline.FittedPipeline` per trial back
   out of the fitted union.

A sweep over solver hyperparameters thus featurizes and fits the shared
prefix once, and only the estimators actually distinguished by the grid
fit per trial — with predictions byte-identical to fitting every
configuration independently, because the union executes the identical
operators over the identical data and merging was *by content key*.

``GridSearch(incremental=True)`` (:mod:`repro.core.tuning`) routes
through this planner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import graph as g
from repro.core import program as prog
from repro.core.pipeline import FittedPipeline, Pipeline


@dataclass
class SweepReport:
    """What deduplication bought: op counts and measured execution time."""

    #: the configurations, in trial order
    configs: List[Dict[str, Any]] = field(default_factory=list)
    #: sum over trials of each trial's distinct training keys — the op
    #: count independent fits would execute
    total_ops: int = 0
    #: distinct training keys across the whole sweep — the op count the
    #: union program executes
    unique_ops: int = 0
    #: wall-clock seconds of the single union fit (optimize + execute)
    fit_seconds: float = 0.0

    @property
    def shared_ops(self) -> int:
        """Ops the union executes once that independent fits would repeat."""
        return self.total_ops - self.unique_ops

    @property
    def dedup_ratio(self) -> float:
        """``total_ops / unique_ops`` (1.0 means nothing was shared)."""
        return self.total_ops / self.unique_ops if self.unique_ops else 1.0


class SweepPlanner:
    """Plan and execute a deduplicated sweep over pipeline configurations.

    ``builder(params) -> Pipeline`` constructs one candidate per
    configuration — the same contract as
    :class:`~repro.core.tuning.GridSearch`.  Sharing across trials is by
    training key, so a builder that binds the *same* dataset objects (or
    rebuilds equal content) shares its featurization prefix; operators
    built from lambdas must come from a shared factory to key equal (the
    ``core/serde.py`` caveat).

    ``fit_kwargs`` configure the single union fit exactly like
    :meth:`Pipeline.fit`; pass ``backend=`` / ``fit_store=`` to
    :meth:`run` (a store makes the sweep *also* warm across calls).
    """

    def __init__(
        self,
        builder: Callable[[Dict[str, Any]], Pipeline],
        configs: Sequence[Dict[str, Any]],
        fit_kwargs: Optional[Dict[str, Any]] = None,
    ):
        self.builder = builder
        self.configs = [dict(c) for c in configs]
        self.fit_kwargs = dict(fit_kwargs or {})

    # ------------------------------------------------------------------
    # Union construction
    # ------------------------------------------------------------------
    def union_pipeline(self) -> Tuple[Pipeline, SweepReport]:
        """Merge every configuration's DAG into one key-deduped pipeline.

        The union pipeline's sink is a GATHER over one inference sink per
        trial (in configuration order); at fit time the gather is inert —
        only the estimators reachable through it train — and after fit it
        is where :meth:`run` slices the per-trial pipelines back out.
        """
        if not self.configs:
            raise ValueError("sweep requires at least one configuration")
        dataset_memo: Dict[int, str] = {}
        union_input = g.pipeline_input()
        canon: Dict[str, g.OpNode] = {prog.INPUT_KEY: union_input}
        trial_sinks: List[g.OpNode] = []
        total_ops = 0
        for params in self.configs:
            pipeline = self.builder(params)
            keys = prog.training_keys([pipeline.sink], dataset_memo)
            total_ops += len(set(keys.values()))
            for node in g.reachable([pipeline.sink]):
                key = keys[node.id]
                if key in canon:
                    continue
                parents = tuple(canon[keys[p.id]] for p in node.parents)
                canon[key] = g.OpNode(node.kind, node.op, parents, node.label)
            trial_sinks.append(canon[keys[pipeline.sink.id]])
        sink = g.OpNode(g.GATHER, None, tuple(trial_sinks), label="sweep")
        report = SweepReport(
            configs=[dict(c) for c in self.configs],
            total_ops=total_ops,
            unique_ops=len(canon),
        )
        return Pipeline(union_input, sink), report

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self, backend=None, fit_store=None, ctx=None
    ) -> Tuple[List[FittedPipeline], SweepReport]:
        """Fit the union once; return one fitted pipeline per trial.

        Every backend works — shared ops fit exactly once regardless of
        scheduling, because they are one node in the union DAG.  The
        per-trial pipelines share fitted operator objects and all carry
        the union fit's :class:`~repro.core.executor.TrainingReport`.
        """
        union, report = self.union_pipeline()
        kwargs = dict(self.fit_kwargs)
        if backend is not None:
            kwargs["backend"] = backend
        if fit_store is not None:
            kwargs["fit_store"] = fit_store
        if ctx is not None:
            kwargs["ctx"] = ctx
        fitted = union.fit(**kwargs)
        training_report = fitted.training_report
        if training_report is not None:
            report.fit_seconds = training_report.total_seconds
        trials = [
            FittedPipeline(
                fitted.input_node,
                trial_sink,
                training_report=training_report,
                program_passes=fitted.program_passes,
            )
            for trial_sink in fitted.sink.parents
        ]
        return trials, report
