"""Warm retrain: re-fit a pipeline, splicing unchanged state from a store.

``refit(pipeline, store)`` is ``pipeline.fit(fit_store=store)`` with a
name that says what happens: the training session keys the (optimized)
training DAG with :func:`repro.core.program.training_keys` — estimator
keys digest the unfitted operator, the featurization chain above it, and
the *content* of every bound dataset — probes the store for each
estimator's key, splices stored fitted state for every hit, and re-fits
only what changed (storing the new state back).  A hyperparameter change
re-keys exactly the changed estimator and everything downstream of its
output; the unchanged prefix rides in from the store.  The returned
pipeline's :class:`~repro.core.executor.TrainingReport` records the split
in ``reused_ops`` / ``refit_ops``.

Shardable estimators (:class:`~repro.core.operators.ShardableEstimator`)
additionally refit *streaming*: per-partition sufficient statistics are
keyed by partition content (:func:`~repro.core.program.partition_flow_keys`),
so a refit after appending partitions to a source merges stored
statistics for the old partitions with freshly computed ones for the new
— the estimator's own ``fit_from_stats`` reduction order — without
replaying old data.

Everything spliced is byte-identical to a cold fit: training keys hash
content (not identity), stored state round-trips through pickle exactly,
and the stats merge is the serial reduction by contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core import graph as g
from repro.core import program as prog
from repro.core.pipeline import FittedPipeline, Pipeline

from repro.incremental.fitstore import FitStore


def refit(pipeline: Pipeline, store: FitStore, **fit_kwargs) -> FittedPipeline:
    """Fit ``pipeline``, reusing (and extending) ``store``.

    ``fit_kwargs`` are :func:`repro.core.executor.fit_pipeline` keyword
    arguments (``level``, ``backend``, ``sample_sizes``, ...).  The first
    call against an empty store is a cold fit that populates it;
    subsequent calls splice every estimator whose training key still
    hits.  Reuse requires *content-stable* keys across builds: operators
    that pack captured lambdas via ``core/serde.py`` marshal them *with*
    source location, so two textually identical lambdas on different
    source lines key differently — build pipelines through a shared
    factory (the caveat is pinned in ``tests/test_program.py``).
    """
    return pipeline.fit(fit_store=store, **fit_kwargs)


@dataclass
class RefitDiff:
    """Which of a new pipeline's estimators an old one already covers.

    Computed on the *unoptimized* DAGs, so it previews reuse before any
    fit (the session keys the optimizer-rewritten DAG; for pipelines
    where the optimizer substitutes physical operators the preview is
    conservative in label terms but the split logic is the same).
    """

    #: estimator labels of the new pipeline whose training keys also
    #: occur in the old pipeline (a warm retrain would splice these)
    reusable: List[str]
    #: estimator labels whose keys are new (a warm retrain re-fits these)
    stale: List[str]


def diff_pipelines(old: Pipeline, new: Pipeline) -> RefitDiff:
    """Key both training DAGs and report ``new``'s estimator-level diff.

    Hashes the bound datasets of both pipelines (content addressing is
    what makes the diff trustworthy), so this costs a pass over the
    training data — use it for observability, not in inner loops.
    """
    memo: dict = {}
    old_keys = set(prog.training_keys([old.sink], memo).values())
    new_keys = prog.training_keys([new.sink], memo)
    reusable, stale = [], []
    for node in g.reachable([new.sink], g.ESTIMATOR):
        if new_keys[node.id] in old_keys:
            reusable.append(node.label)
        else:
            stale.append(node.label)
    return RefitDiff(reusable=reusable, stale=stale)
