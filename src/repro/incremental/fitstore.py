"""FitStore: a byte-budgeted, pickle-backed store of fitted operator state.

The primitive under every consumer in :mod:`repro.incremental`: a
key-value store whose keys are the content-addressed *training keys* of
:func:`repro.core.program.training_keys` (fitted models, namespace
``fit:``) and the per-partition flow keys of
:func:`repro.core.program.partition_flow_keys` (sufficient statistics,
namespace ``pstats:``).  Because the keys digest operator structure and
training-data content, a hit is valid by construction — there is no
invalidation protocol, only lookup misses when anything upstream changed.

Values are stored as pickle blobs, not object references: the blob length
gives the exact byte cost charged against the budget, a ``get`` returns a
fresh unpickled copy (so a consumer mutating a fitted model or a merge
mutating a statistic can never corrupt the store), and persistence
(:meth:`save` / :meth:`load`) is the same bytes written to disk.  Budgeted
LRU eviction reuses the dataset layer's
:class:`~repro.dataset.cache.CacheManager` machinery: an over-budget
insert evicts least-recently-used entries first.

Degradation contract: a corrupt entry or a truncated/garbage store file
is *never* an error — a bad entry reads as a miss (and is dropped), a bad
file loads as an empty store — so the worst case of incremental training
is always a cold fit, never a crash or a stale splice.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Any, Iterator, List, Optional, Tuple, Union

from repro.dataset.cache import CacheManager, LRUPolicy

PathLike = Union[str, Path]

#: on-disk format version written by :meth:`FitStore.save`
_FORMAT = 1

#: key namespaces: whole fitted models vs per-partition statistics
FIT_PREFIX = "fit:"
STATS_PREFIX = "pstats:"


class FitStore:
    """Byte-budgeted store of fitted operator state, keyed by training key.

    ``budget_bytes`` bounds the total pickled bytes retained; inserting
    past the budget evicts least-recently-used entries (an entry larger
    than the whole budget is rejected outright).  Thread-safe via the
    underlying :class:`~repro.dataset.cache.CacheManager` — the pipelined
    backend probes it from several threads.
    """

    def __init__(self, budget_bytes: float = float("inf")):
        if budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be > 0, got {budget_bytes}")
        self.manager = CacheManager(budget_bytes, LRUPolicy())

    # ------------------------------------------------------------------
    # Generic keyed access (pickle-blob values)
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Any]:
        """Return a fresh copy of the stored value, or ``None`` on miss.

        An entry whose blob no longer unpickles is dropped and reported
        as a miss — corruption degrades to recomputation, never to an
        error or a stale result.
        """
        boxed = self.manager.get(key)
        if boxed is None:
            return None
        try:
            return pickle.loads(boxed[0])
        except Exception:
            self.manager.invalidate(lambda k: k == key)
            return None

    def put(self, key: str, value: Any) -> bool:
        """Store ``value`` under ``key``; returns True when admitted.

        A value that cannot pickle is refused (returns False): the store
        only holds state it can also persist and copy out safely.
        """
        try:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        return self.manager.put(key, [blob], len(blob))

    def __contains__(self, key: str) -> bool:
        return self.manager.contains(key)

    # ------------------------------------------------------------------
    # Namespaced views: fitted models and per-partition statistics
    # ------------------------------------------------------------------
    def get_fit(self, training_key: str) -> Optional[Any]:
        """Stored fitted transformer for an estimator's training key."""
        return self.get(FIT_PREFIX + training_key)

    def put_fit(self, training_key: str, model: Any) -> bool:
        return self.put(FIT_PREFIX + training_key, model)

    def get_stats(self, partition_key: str) -> Optional[Any]:
        """Stored per-partition sufficient statistic (streaming refit)."""
        return self.get(STATS_PREFIX + partition_key)

    def put_stats(self, partition_key: str, stat: Any) -> bool:
        return self.put(STATS_PREFIX + partition_key, stat)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> None:
        """Write every entry to ``path`` (LRU order preserved)."""
        with self.manager._lock:
            entries = [
                (entry.key, entry.value[0])
                for entry in self.manager.entries.values()
            ]
            budget = self.manager.budget
        doc = {"format": _FORMAT, "budget_bytes": budget, "entries": entries}
        with open(path, "wb") as f:
            pickle.dump(doc, f, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path: PathLike, budget_bytes: Optional[float] = None) -> "FitStore":
        """Load a store saved by :meth:`save`; degrade to empty on damage.

        A missing, truncated or garbage file — or a file of the wrong
        shape entirely — returns an *empty* store (the caller's fits go
        cold), never raises.  Individual entries with non-string keys or
        non-bytes blobs are skipped.  ``budget_bytes`` overrides the
        saved budget.
        """
        entries: List[Tuple[str, bytes]] = []
        saved_budget: float = float("inf")
        try:
            with open(path, "rb") as f:
                doc = pickle.load(f)
            if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
                raise ValueError("unrecognized fit-store format")
            saved_budget = float(doc["budget_bytes"])
            for key, blob in doc["entries"]:
                if isinstance(key, str) and isinstance(blob, bytes):
                    entries.append((key, blob))
        except Exception:
            entries = []
            saved_budget = float("inf")
        store = cls(budget_bytes if budget_bytes is not None else saved_budget)
        for key, blob in entries:
            store.manager.put(key, [blob], len(blob))
        return store

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        with self.manager._lock:
            return iter(list(self.manager.entries))

    @property
    def hits(self) -> int:
        return self.manager.hits

    @property
    def misses(self) -> int:
        return self.manager.misses

    @property
    def evictions(self) -> int:
        return self.manager.evictions

    @property
    def used_bytes(self) -> int:
        return self.manager.used

    @property
    def budget_bytes(self) -> float:
        return self.manager.budget

    def __len__(self) -> int:
        return len(self.manager)

    def __repr__(self) -> str:
        return (
            f"FitStore(entries={len(self)}, used={self.used_bytes}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )
