"""Row-partitioned matrix over a :class:`~repro.dataset.Dataset`.

Rows may be dense 1-D numpy arrays or scipy sparse row vectors.  Operations
are organized so per-partition work is a local BLAS call and cross-partition
combination happens through an aggregation tree — the access pattern the
paper's solver cost models (Table 1) describe.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.dataset.dataset import Dataset
from repro.linalg.tsqr import tsqr_r, tsqr_solve


def _partition_to_block(rows: List) -> np.ndarray:
    """Stack a partition's rows into a dense 2-D block."""
    if not rows:
        return np.zeros((0, 0))
    if sp.issparse(rows[0]):
        return sp.vstack(rows).toarray()
    return np.vstack([np.asarray(r).reshape(1, -1) for r in rows])


def _partition_to_sparse_block(rows: List) -> sp.csr_matrix:
    if not rows:
        return sp.csr_matrix((0, 0))
    if sp.issparse(rows[0]):
        return sp.vstack(rows).tocsr()
    return sp.csr_matrix(np.vstack(rows))


class RowMatrix:
    """An ``n x d`` matrix whose rows live in a dataset."""

    def __init__(self, data: Dataset, num_cols: Optional[int] = None):
        self.data = data
        self._num_cols = num_cols

    @property
    def num_cols(self) -> int:
        if self._num_cols is None:
            first = self.data.first()
            self._num_cols = (first.shape[1] if sp.issparse(first)
                              else int(np.asarray(first).size))
        return self._num_cols

    def num_rows(self) -> int:
        return self.data.count()

    # ------------------------------------------------------------------
    # Block access
    # ------------------------------------------------------------------
    def dense_blocks(self) -> List[np.ndarray]:
        """Materialize each partition as a dense block (skips empties)."""
        blocks = []
        for i in range(self.data.num_partitions):
            block = _partition_to_block(self.data.partition(i))
            if block.size:
                blocks.append(block)
        return blocks

    def sparse_blocks(self) -> List[sp.csr_matrix]:
        blocks = []
        for i in range(self.data.num_partitions):
            rows = self.data.partition(i)
            if rows:
                blocks.append(_partition_to_sparse_block(rows))
        return blocks

    def to_dense(self) -> np.ndarray:
        blocks = self.dense_blocks()
        if not blocks:
            return np.zeros((0, self._num_cols or 0))
        return np.vstack(blocks)

    # ------------------------------------------------------------------
    # Communication-avoiding primitives
    # ------------------------------------------------------------------
    def gram(self) -> np.ndarray:
        """``A^T A`` via per-partition syrk + combining tree."""
        d = self.num_cols

        def seq(acc: np.ndarray, row) -> np.ndarray:
            raise RuntimeError("gram aggregates whole partitions")

        # Aggregate per partition to keep the inner loop in BLAS.
        partials = []
        for i in range(self.data.num_partitions):
            block = _partition_to_block(self.data.partition(i))
            if block.size:
                partials.append(block.T @ block)
        result = np.zeros((d, d))
        for p in partials:
            result += p
        return result

    def t_times(self, other: "RowMatrix") -> np.ndarray:
        """``A^T B`` where B is row-aligned with A (same partitioning)."""
        if other.data.num_partitions != self.data.num_partitions:
            raise ValueError("t_times requires aligned partitioning")
        result: Optional[np.ndarray] = None
        for i in range(self.data.num_partitions):
            a = _partition_to_block(self.data.partition(i))
            b = _partition_to_block(other.data.partition(i))
            if a.size == 0:
                continue
            term = a.T @ b
            result = term if result is None else result + term
        if result is None:
            raise ValueError("t_times over an empty matrix")
        return result

    def times(self, x: np.ndarray) -> Dataset:
        """Row-wise product ``A x`` (x is ``d`` or ``d x k``)."""
        def apply_row(row):
            if sp.issparse(row):
                return np.asarray(row @ x).ravel()
            return np.asarray(row) @ x

        return self.data.map(apply_row, name="times")

    def qr_r(self) -> np.ndarray:
        """R factor of A via TSQR."""
        return tsqr_r(self.dense_blocks())

    def solve_least_squares(self, labels: "RowMatrix",
                            l2_reg: float = 0.0) -> np.ndarray:
        """``argmin_X ||A X - B||_F^2 + l2 ||X||_F^2`` via TSQR."""
        a_blocks = self.dense_blocks()
        b_blocks = labels.dense_blocks()
        return tsqr_solve(a_blocks, b_blocks, l2_reg)

    def column_means(self) -> np.ndarray:
        d = self.num_cols
        total = np.zeros(d)
        count = 0
        for i in range(self.data.num_partitions):
            block = _partition_to_block(self.data.partition(i))
            if block.size:
                total += block.sum(axis=0)
                count += block.shape[0]
        if count == 0:
            raise ValueError("column_means over an empty matrix")
        return total / count
