"""Distributed-style linear algebra over :class:`~repro.dataset.Dataset`.

Row-partitioned matrices with the communication-avoiding primitives the
KeystoneML solvers need: Gram matrices and cross-products via aggregation
trees, and TSQR (tall-skinny QR) factorization.
"""

from repro.linalg.rowmatrix import RowMatrix
from repro.linalg.tsqr import tsqr_r, tsqr_solve

__all__ = ["RowMatrix", "tsqr_r", "tsqr_solve"]
