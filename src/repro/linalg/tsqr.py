"""TSQR: communication-avoiding QR for tall-skinny matrices.

Demmel et al.'s TSQR computes the R factor of a row-partitioned matrix by
taking a local QR of each block and combining R factors pairwise up a tree.
KeystoneML's exact distributed solver is built on it (paper Table 1,
"Dist. QR").
"""

from __future__ import annotations

from typing import List

import numpy as np


def tsqr_combine(factors: List[np.ndarray]) -> np.ndarray:
    """Combine per-block local R factors up the binary TSQR tree.

    ``factors`` are the level-0 local QRs (``np.linalg.qr(block,
    mode="r")``), which may be computed anywhere — including in worker
    processes — as long as they arrive in block order; the tree shape is
    what makes the distributed result bit-identical to :func:`tsqr_r`.
    """
    if not factors:
        raise ValueError("tsqr_combine requires at least one factor")
    level = list(factors)
    while len(level) > 1:
        nxt = []
        for j in range(0, len(level), 2):
            if j + 1 < len(level):
                stacked = np.vstack([level[j], level[j + 1]])
                nxt.append(np.linalg.qr(stacked, mode="r"))
            else:
                nxt.append(level[j])
        level = nxt
    r = level[0]
    d = r.shape[1]
    # Pad to square when the total row count is below d.
    if r.shape[0] < d:
        r = np.vstack([r, np.zeros((d - r.shape[0], d))])
    return r[:d, :]


def tsqr_r(blocks: List[np.ndarray]) -> np.ndarray:
    """R factor of ``vstack(blocks)`` via a binary combining tree.

    Each block must have at least as many... columns as the stack is wide;
    blocks with fewer rows than columns are allowed (their local R is just
    rectangular and still combines correctly).
    """
    if not blocks:
        raise ValueError("tsqr_r requires at least one block")
    return tsqr_combine([np.linalg.qr(b, mode="r") for b in blocks])


def tsqr_solve(a_blocks: List[np.ndarray], b_blocks: List[np.ndarray],
               l2_reg: float = 0.0) -> np.ndarray:
    """Least-squares solve ``min ||A X - B||_F`` via TSQR on ``[A | B]``.

    Factoring the augmented matrix gives ``R = [[R_a, Q^T B], [0, *]]``, so
    the solution is a ``d x k`` triangular solve without ever forming Q —
    the standard communication-avoiding least-squares trick.
    """
    if len(a_blocks) != len(b_blocks):
        raise ValueError("A and B must have matching block lists")
    d = a_blocks[0].shape[1]
    k = b_blocks[0].shape[1]
    factors = [np.linalg.qr(np.hstack([a, b]), mode="r")
               for a, b in zip(a_blocks, b_blocks)]
    return tsqr_solve_from_factors(factors, d, k, l2_reg)


def tsqr_solve_from_factors(factors: List[np.ndarray], d: int, k: int,
                            l2_reg: float = 0.0) -> np.ndarray:
    """Finish a TSQR least-squares solve from per-block local R factors.

    ``factors`` are local QRs of the augmented ``[A_i | B_i]`` blocks in
    block order; the regularization rows are appended here so workers
    computing block factors never see the solver configuration.
    """
    factors = list(factors)
    if l2_reg > 0:
        # Append sqrt(lambda) * I rows: solves the ridge-regularized problem.
        reg_block = np.hstack([np.sqrt(l2_reg) * np.eye(d), np.zeros((d, k))])
        factors.append(np.linalg.qr(reg_block, mode="r"))
    r = tsqr_combine(factors)
    r_a = r[:d, :d]
    qtb = r[:d, d:]
    return np.linalg.solve(r_a + 1e-12 * np.eye(d), qtb)
