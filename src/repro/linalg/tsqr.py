"""TSQR: communication-avoiding QR for tall-skinny matrices.

Demmel et al.'s TSQR computes the R factor of a row-partitioned matrix by
taking a local QR of each block and combining R factors pairwise up a tree.
KeystoneML's exact distributed solver is built on it (paper Table 1,
"Dist. QR").
"""

from __future__ import annotations

from typing import List

import numpy as np


def tsqr_r(blocks: List[np.ndarray]) -> np.ndarray:
    """R factor of ``vstack(blocks)`` via a binary combining tree.

    Each block must have at least as many... columns as the stack is wide;
    blocks with fewer rows than columns are allowed (their local R is just
    rectangular and still combines correctly).
    """
    if not blocks:
        raise ValueError("tsqr_r requires at least one block")
    level = [np.linalg.qr(b, mode="r") for b in blocks]
    while len(level) > 1:
        nxt = []
        for j in range(0, len(level), 2):
            if j + 1 < len(level):
                stacked = np.vstack([level[j], level[j + 1]])
                nxt.append(np.linalg.qr(stacked, mode="r"))
            else:
                nxt.append(level[j])
        level = nxt
    r = level[0]
    d = r.shape[1]
    # Pad to square when the total row count is below d.
    if r.shape[0] < d:
        r = np.vstack([r, np.zeros((d - r.shape[0], d))])
    return r[:d, :]


def tsqr_solve(a_blocks: List[np.ndarray], b_blocks: List[np.ndarray],
               l2_reg: float = 0.0) -> np.ndarray:
    """Least-squares solve ``min ||A X - B||_F`` via TSQR on ``[A | B]``.

    Factoring the augmented matrix gives ``R = [[R_a, Q^T B], [0, *]]``, so
    the solution is a ``d x k`` triangular solve without ever forming Q —
    the standard communication-avoiding least-squares trick.
    """
    if len(a_blocks) != len(b_blocks):
        raise ValueError("A and B must have matching block lists")
    d = a_blocks[0].shape[1]
    k = b_blocks[0].shape[1]
    augmented = [np.hstack([a, b]) for a, b in zip(a_blocks, b_blocks)]
    if l2_reg > 0:
        # Append sqrt(lambda) * I rows: solves the ridge-regularized problem.
        reg_block = np.hstack([np.sqrt(l2_reg) * np.eye(d), np.zeros((d, k))])
        augmented.append(reg_block)
    r = tsqr_r(augmented)
    r_a = r[:d, :d]
    qtb = r[:d, d:]
    return np.linalg.solve(r_a + 1e-12 * np.eye(d), qtb)
