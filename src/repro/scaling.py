"""Cluster-scaling stage models for the paper's workloads (Figure 12).

Each builder returns the :class:`~repro.cluster.simulator.SimulatedStage`
list for one end-to-end pipeline at paper scale, expressing per-stage
cost profiles as functions of the worker count:

- data loading: disk-bound, embarrassingly parallel;
- featurization: compute-bound, embarrassingly parallel — except the
  Amazon pipeline's common-feature selection, which ends in an aggregation
  tree whose cost grows with ``log w`` (the paper's stated reason Amazon
  stops scaling);
- model solve: compute shrinks with ``w`` but coordination grows with
  ``log w`` (Table 1's network terms) — the paper's stated reason TIMIT
  stops scaling.

Constants come from Table 3 (dataset sizes, solve dimensionality) and the
operator cost models; they set the *ratios* between stages, which is what
the scaling shapes depend on.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.cluster.resources import ResourceDescriptor, r3_4xlarge
from repro.cluster.simulator import SimulatedStage, scaling_sweep
from repro.cost.profile import CostProfile


def _tree(w: int) -> float:
    return max(math.log2(w), 1.0) if w > 1 else 1.0


def _load_stage(name: str, total_bytes: float) -> SimulatedStage:
    def profile(w: int) -> CostProfile:
        # Disk-bound: modeled as memory traffic at disk bandwidth ratio
        # (~1/50 of memory bandwidth on r3.4xlarge); expressed in bytes.
        return CostProfile(bytes=50.0 * total_bytes / w)

    return SimulatedStage(name, profile, "Loading")


def _featurize_stage(name: str, total_flops: float,
                     tree_bytes: float = 0.0) -> SimulatedStage:
    def profile(w: int) -> CostProfile:
        return CostProfile(flops=total_flops / w,
                           network=tree_bytes * _tree(w))

    return SimulatedStage(name, profile, "Featurization")


def _solve_stage(name: str, n: float, d: float, k: float, passes: float,
                 sparsity: float = 1.0) -> SimulatedStage:
    def profile(w: int) -> CostProfile:
        s = d * sparsity
        return CostProfile(
            flops=6.0 * passes * n * s * k / w,
            bytes=8.0 * passes * n * s / w,
            network=8.0 * passes * d * k * _tree(w))

    return SimulatedStage(name, profile, "Model Solve")


def _eval_stage(name: str, n_test: float, d: float, k: float) -> SimulatedStage:
    def profile(w: int) -> CostProfile:
        return CostProfile(flops=2.0 * n_test * d * k / w)

    return SimulatedStage(name, profile, "Model Eval")


def amazon_stages() -> List[SimulatedStage]:
    """Amazon text pipeline: featurization dominated, aggregation-tree bound."""
    n, d, k = 65e6, 100e3, 2
    return [
        _load_stage("load-train", 14e9),
        # Tokenization + n-grams ~ 2 MFLOP-equivalent per document, plus the
        # common-features aggregation tree moving ~200 MB of term counts.
        _featurize_stage("featurize", n * 2e6, tree_bytes=2e8),
        _solve_stage("solve", n, d, k, passes=20, sparsity=0.001),
        _load_stage("load-test", 4e9),
        _eval_stage("eval", 18e6, d * 0.001, k),
    ]


def timit_stages() -> List[SimulatedStage]:
    """TIMIT kernel pipeline: solve dominated (dense 65k features)."""
    n, d, k = 2.25e6, 65_536, 147
    return [
        _load_stage("load-train", 7.5e9),
        _featurize_stage("featurize", n * 2.0 * 440 * d / 8),
        _solve_stage("solve", n, d, k, passes=10),
        _load_stage("load-test", 0.4e9),
        _eval_stage("eval", 116e3, d, k),
    ]


def imagenet_stages() -> List[SimulatedStage]:
    """ImageNet pipeline: featurization dominated, embarrassingly parallel."""
    n, d, k = 1.28e6, 16_384, 1000
    return [
        _load_stage("load-train", 74e9),
        # SIFT + Fisher vectors ~ 20 GFLOP per image.
        _featurize_stage("featurize", n * 20e9),
        _solve_stage("solve", n, d, k, passes=8),
        _load_stage("load-test", 3.3e9),
        _eval_stage("eval", 50e3, d, k),
    ]


PIPELINE_STAGES = {
    "amazon": amazon_stages,
    "timit": timit_stages,
    "imagenet": imagenet_stages,
}


def pipeline_scaling(pipeline: str, node_counts: List[int],
                     base: ResourceDescriptor = None
                     ) -> Dict[int, Dict[str, float]]:
    """Stage-category breakdown (seconds) per cluster size for a pipeline."""
    if pipeline not in PIPELINE_STAGES:
        raise ValueError(f"unknown pipeline {pipeline!r}; expected one of "
                         f"{sorted(PIPELINE_STAGES)}")
    stages = PIPELINE_STAGES[pipeline]()
    return scaling_sweep(stages, base or r3_4xlarge(), node_counts,
                         overhead_per_stage=5.0)
