"""Learning estimators: solvers, decompositions, mixtures, encoders."""

from repro.nodes.learning.fisher import FisherVector, FisherVectorEstimator
from repro.nodes.learning.filter_learning import ConvolutionalFilterLearner
from repro.nodes.learning.gmm import GaussianMixtureModel, GMMEstimator
from repro.nodes.learning.kmeans import (
    ClusterAssigner,
    KMeansEstimator,
    kmeans_fit_array,
)
from repro.nodes.learning.linear import (
    BlockCoordinateSolver,
    BlockSolverCostModel,
    DistributedQRCostModel,
    DistributedQRSolver,
    LBFGSCostModel,
    LBFGSSolver,
    LinearMapper,
    LinearSolver,
    LocalQRCostModel,
    LocalQRSolver,
    SGDCostModel,
    SGDSolver,
)
from repro.nodes.learning.logistic import (
    LogisticModel,
    LogisticRegressionEstimator,
)
from repro.nodes.learning.pca import (
    DistributedSVD,
    DistributedTSVD,
    LocalSVD,
    LocalTSVD,
    PCAEstimator,
    PCATransformer,
)
from repro.nodes.learning.random_features import (
    CosineRandomFeatures,
    RandomFeaturesTransformer,
)

__all__ = [
    "BlockCoordinateSolver",
    "ConvolutionalFilterLearner",
    "FisherVectorEstimator",
    "BlockSolverCostModel",
    "ClusterAssigner",
    "CosineRandomFeatures",
    "DistributedQRCostModel",
    "DistributedQRSolver",
    "DistributedSVD",
    "DistributedTSVD",
    "FisherVector",
    "GMMEstimator",
    "GaussianMixtureModel",
    "KMeansEstimator",
    "LBFGSCostModel",
    "LBFGSSolver",
    "LinearMapper",
    "LinearSolver",
    "LocalQRCostModel",
    "LocalQRSolver",
    "LocalSVD",
    "LocalTSVD",
    "LogisticModel",
    "LogisticRegressionEstimator",
    "PCAEstimator",
    "PCATransformer",
    "RandomFeaturesTransformer",
    "SGDCostModel",
    "SGDSolver",
    "kmeans_fit_array",
]
