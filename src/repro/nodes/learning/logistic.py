"""Logistic regression (softmax, L-BFGS) over dataset partitions.

Used by the Amazon text pipeline and the YouTube-8M replication.  Like the
linear solvers, each objective evaluation streams the feature dataset once.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.optimize import minimize
from scipy.special import logsumexp

from repro.core.operators import (
    Iterative,
    IterativeShardableEstimator,
    LabelEstimator,
    Transformer,
)
from repro.dataset.dataset import Dataset
from repro.nodes.learning._util import rows_to_block


class LogisticModel(Transformer):
    """Applies fitted softmax weights; output is class probabilities."""

    def __init__(self, weights: np.ndarray):
        self.weights = np.asarray(weights)  # (d, k)

    def scores(self, row) -> np.ndarray:
        if sp.issparse(row):
            return np.asarray(row @ self.weights).ravel()
        return np.asarray(row, dtype=np.float64) @ self.weights

    def apply(self, row) -> np.ndarray:
        logits = self.scores(row)
        logits = logits - logits.max()
        p = np.exp(logits)
        return p / p.sum()

    def apply_partition(self, items: List) -> List[np.ndarray]:
        if not items:
            return []
        if sp.issparse(items[0]):
            logits = np.asarray((sp.vstack(items) @ self.weights))
        else:
            logits = np.vstack([np.asarray(r).reshape(1, -1)
                                for r in items]) @ self.weights
        logits -= logits.max(axis=1, keepdims=True)
        p = np.exp(logits)
        p /= p.sum(axis=1, keepdims=True)
        return list(p)

    def columnar_kernel(self):
        from repro.core.kernels import LogisticKernel

        return LogisticKernel(self.weights)


def _class_indices(b: np.ndarray) -> np.ndarray:
    """One-hot (or +1/-1 indicator) label rows -> integer class ids."""
    return np.argmax(b, axis=1)


#: sentinel fed to a parked objective evaluation to unwind the driver
_ABORT = object()


class _AbortPass(Exception):
    """Internal: unwind scipy's optimizer thread on fit abort."""


class _LbfgsDriver:
    """Runs ``scipy.optimize.minimize`` inverted into a pass state machine.

    scipy's L-BFGS-B is a callback-driven black box: it *calls* the
    objective, while the pass protocol needs the objective to be *fed*
    merged partials one pass at a time.  The driver runs ``minimize`` on
    a daemon thread whose objective parks on a queue: each objective
    evaluation surfaces as ``pending`` (the point to evaluate), and
    :meth:`feed` hands back the merged ``(loss, grad)`` and advances to
    the next evaluation or the final ``result``.  The exact same scipy
    code path runs as before — only the transport of objective values
    changed — so fitted weights are byte-identical to the historical
    in-line ``minimize`` call.
    """

    def __init__(self, d: int, k: int, max_iter: int, tol: float):
        self.evals = 0
        self.pending: Optional[np.ndarray] = None
        self.result: Optional[np.ndarray] = None
        self._requests: "queue.SimpleQueue" = queue.SimpleQueue()
        self._responses: "queue.SimpleQueue" = queue.SimpleQueue()
        self._thread = threading.Thread(
            target=self._optimize, args=(d, k, max_iter, tol),
            name="lbfgs-driver", daemon=True)
        self._thread.start()
        self._advance()

    def _objective(self, x_flat: np.ndarray) -> Tuple[float, np.ndarray]:
        self._requests.put(("eval", np.array(x_flat, copy=True)))
        response = self._responses.get()
        if response is _ABORT:
            raise _AbortPass
        return response

    def _optimize(self, d: int, k: int, max_iter: int, tol: float) -> None:
        try:
            result = minimize(self._objective, np.zeros(d * k), jac=True,
                              method="L-BFGS-B", tol=tol,
                              options={"maxiter": max_iter})
        except _AbortPass:
            return
        except BaseException as exc:  # surfaced to the driving fit
            self._requests.put(("error", exc))
            return
        self._requests.put(("done", result.x))

    def _advance(self) -> None:
        kind, value = self._requests.get()
        if kind == "eval":
            self.pending = value
        elif kind == "done":
            self.pending, self.result = None, value
        else:
            self.pending = None
            raise value

    def feed(self, loss: float, grad_flat: np.ndarray) -> None:
        """Answer the pending objective evaluation with merged partials."""
        self.evals += 1
        self._responses.put((loss, grad_flat))
        self._advance()

    def abort(self) -> None:
        """Unblock and retire the optimizer thread (failed fit cleanup)."""
        if self.pending is not None:
            self.pending = None
            self._responses.put(_ABORT)


@dataclass
class _LogisticState:
    """Driver-side solver state; never crosses a process boundary."""

    driver: _LbfgsDriver
    d: int
    k: int
    n: int


class LogisticRegressionEstimator(LabelEstimator, Iterative,
                                  IterativeShardableEstimator):
    """Multinomial logistic regression fit by L-BFGS.

    Labels must be indicator rows (see
    :class:`repro.nodes.numeric.ClassLabelIndicator`).

    Implements :class:`~repro.core.operators.IterativeShardableEstimator`:
    each objective evaluation is one pass broadcasting the current
    weight vector and reducing per-partition ``(loss, grad)``
    contributions; the L-BFGS line search itself stays in the driver
    (:class:`_LbfgsDriver`), so only weights and gradients ever cross a
    process boundary.
    """

    def __init__(self, max_iter: int = 50, l2_reg: float = 1e-6,
                 tol: float = 1e-7):
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.max_iter = max_iter
        self.l2_reg = l2_reg
        self.tol = tol
        self.weight = max_iter
        self.iterations_run = 0

    # -- IterativeShardableEstimator protocol ---------------------------
    def init_stats(self, rows: List, label_rows=None):
        if not rows:
            return None
        first = rows[0]
        d = (int(first.shape[-1]) if sp.issparse(first)
             else int(np.asarray(first).shape[-1]))
        label_arr = np.asarray(label_rows[0])
        k = int(label_arr.size) if label_arr.ndim else 1
        return (len(rows), d, k)

    def init_state(self, partials: List) -> _LogisticState:
        n, d, k = 0, None, None
        for partial in partials:
            if partial is None:
                continue
            count, part_d, part_k = partial
            n += count
            if d is None:
                d, k = part_d, part_k
        if d is None:
            raise ValueError("dataset is empty")
        self.iterations_run = 0
        return _LogisticState(
            _LbfgsDriver(d, k, self.max_iter, self.tol), d, k, n)

    def pass_payload(self, state: _LogisticState
                     ) -> Tuple[np.ndarray, int, int]:
        return (state.driver.pending, state.d, state.k)

    def partition_pass_stats(self, payload, rows: List, label_rows=None
                             ) -> Optional[Tuple[float, np.ndarray]]:
        if not rows:
            return None
        x_flat, d, k = payload
        x = x_flat.reshape(d, k)
        a = rows_to_block(rows, prefer_sparse=True)
        b = np.asarray(rows_to_block(label_rows))
        logits = np.asarray(a @ x)
        y = _class_indices(np.asarray(b))
        norm = logsumexp(logits, axis=1)
        loss = float(np.sum(norm - logits[np.arange(len(y)), y]))
        p = np.exp(logits - norm[:, None])
        p[np.arange(len(y)), y] -= 1.0
        return (loss, np.asarray(a.T @ p))

    def update_from_stats(self, state: _LogisticState,
                          partials: List) -> _LogisticState:
        x = state.driver.pending.reshape(state.d, state.k)
        loss = 0.0
        grad = np.zeros((state.d, state.k))
        for partial in partials:
            if partial is None:
                continue
            loss += partial[0]
            grad += partial[1]
        loss = loss / state.n + 0.5 * self.l2_reg * float(np.sum(x * x))
        grad = grad / state.n + self.l2_reg * x
        state.driver.feed(loss, grad.ravel())
        self.iterations_run = state.driver.evals
        return state

    def converged(self, state: _LogisticState) -> bool:
        return state.driver.result is not None

    def finalize(self, state: _LogisticState) -> LogisticModel:
        self.iterations_run = state.driver.evals
        return LogisticModel(state.driver.result.reshape(state.d, state.k))

    def abort_state(self, state: _LogisticState) -> None:
        state.driver.abort()

    def fit(self, data: Dataset, labels: Dataset) -> LogisticModel:
        return self.fit_via_passes(data, labels)
