"""Logistic regression (softmax, L-BFGS) over dataset partitions.

Used by the Amazon text pipeline and the YouTube-8M replication.  Like the
linear solvers, each objective evaluation streams the feature dataset once.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.optimize import minimize
from scipy.special import logsumexp

from repro.core.operators import Iterative, LabelEstimator, Transformer
from repro.dataset.dataset import Dataset
from repro.nodes.learning._util import feature_dim, iter_xy_blocks, label_dim


class LogisticModel(Transformer):
    """Applies fitted softmax weights; output is class probabilities."""

    def __init__(self, weights: np.ndarray):
        self.weights = np.asarray(weights)  # (d, k)

    def scores(self, row) -> np.ndarray:
        if sp.issparse(row):
            return np.asarray(row @ self.weights).ravel()
        return np.asarray(row, dtype=np.float64) @ self.weights

    def apply(self, row) -> np.ndarray:
        logits = self.scores(row)
        logits = logits - logits.max()
        p = np.exp(logits)
        return p / p.sum()

    def apply_partition(self, items: List) -> List[np.ndarray]:
        if not items:
            return []
        if sp.issparse(items[0]):
            logits = np.asarray((sp.vstack(items) @ self.weights))
        else:
            logits = np.vstack([np.asarray(r).reshape(1, -1)
                                for r in items]) @ self.weights
        logits -= logits.max(axis=1, keepdims=True)
        p = np.exp(logits)
        p /= p.sum(axis=1, keepdims=True)
        return list(p)


def _class_indices(b: np.ndarray) -> np.ndarray:
    """One-hot (or +1/-1 indicator) label rows -> integer class ids."""
    return np.argmax(b, axis=1)


class LogisticRegressionEstimator(LabelEstimator, Iterative):
    """Multinomial logistic regression fit by L-BFGS.

    Labels must be indicator rows (see
    :class:`repro.nodes.numeric.ClassLabelIndicator`).
    """

    def __init__(self, max_iter: int = 50, l2_reg: float = 1e-6,
                 tol: float = 1e-7):
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.max_iter = max_iter
        self.l2_reg = l2_reg
        self.tol = tol
        self.weight = max_iter
        self.iterations_run = 0

    def fit(self, data: Dataset, labels: Dataset) -> LogisticModel:
        d = feature_dim(data)
        k = label_dim(labels)
        n = data.count()
        self.iterations_run = 0

        def objective(x_flat: np.ndarray) -> Tuple[float, np.ndarray]:
            x = x_flat.reshape(d, k)
            loss = 0.0
            grad = np.zeros((d, k))
            for a, b in iter_xy_blocks(data, labels, prefer_sparse=True):
                logits = np.asarray(a @ x)
                y = _class_indices(np.asarray(b))
                norm = logsumexp(logits, axis=1)
                loss += float(np.sum(norm - logits[np.arange(len(y)), y]))
                p = np.exp(logits - norm[:, None])
                p[np.arange(len(y)), y] -= 1.0
                grad += np.asarray(a.T @ p)
            loss = loss / n + 0.5 * self.l2_reg * float(np.sum(x * x))
            grad = grad / n + self.l2_reg * x
            self.iterations_run += 1
            return loss, grad.ravel()

        result = minimize(objective, np.zeros(d * k), jac=True,
                          method="L-BFGS-B", tol=self.tol,
                          options={"maxiter": self.max_iter})
        return LogisticModel(result.x.reshape(d, k))
