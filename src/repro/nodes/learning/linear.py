"""Linear solvers: one logical operator, five physical implementations.

The logical :class:`LinearSolver` finds ``X`` minimizing
``||A X - B||_F^2 + l2 ||X||_F^2`` for features ``A`` (n x d) and one-hot
labels ``B`` (n x k).  Physical implementations and their cost models follow
the paper's Table 1:

==================  =====================  ==================  ================
Algorithm           Compute                Network             Memory
==================  =====================  ==================  ================
Local QR            O(nd(d+k))             O(n(d+k))           O(d(n+k))
Distributed QR      O(nd(d+k)/w)           O(d(d+k))           O(nd/w + d^2)
L-BFGS              O(i n s k / w)         O(i d k)            O(ns/w + dk)
Block solve         O(i n d (b+k) / w)     O(i d (b+k))        O(nb/w + dk)
==================  =====================  ==================  ================

(``w`` workers, ``i`` passes, ``s`` non-zeros/row, ``b`` block size.)

The cost-based optimizer reproduces the paper's selections: sparse data
favours L-BFGS (gradients cost ``nnz`` not ``n*d``); small dense problems
favour the exact solvers; large dense multi-class problems favour the block
solver.  The exact local solver becomes *infeasible* (not just slow) when
the design matrix exceeds node memory — the paper's crash at >4k sparse
features.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.optimize import minimize

from repro.cost.model import CostModel
from repro.cost.profile import CostProfile
from repro.core.operators import (
    Iterative,
    LabelEstimator,
    Optimizable,
    ShardableEstimator,
    Transformer,
)
from repro.dataset.dataset import Dataset
from repro.linalg.tsqr import tsqr_solve_from_factors
from repro.nodes.learning._util import (
    collect_dense,
    feature_dim,
    iter_xy_blocks,
    label_dim,
    rows_to_block,
)

DOUBLE = 8.0  # bytes per float64


class LinearMapper(Transformer):
    """Applies a fitted linear model: ``row -> row @ X + intercept``."""

    def __init__(self, weights: np.ndarray,
                 intercept: Optional[np.ndarray] = None):
        self.weights = np.asarray(weights, dtype=np.float64)
        self.intercept = (np.zeros(self.weights.shape[1])
                          if intercept is None else np.asarray(intercept))

    def apply(self, row) -> np.ndarray:
        if sp.issparse(row):
            return np.asarray(row @ self.weights).ravel() + self.intercept
        return np.asarray(row, dtype=np.float64) @ self.weights + self.intercept

    def apply_partition(self, items: List) -> List[np.ndarray]:
        if not items:
            return []
        if sp.issparse(items[0]):
            block = sp.vstack(items) @ self.weights
        else:
            block = np.vstack([np.asarray(r).reshape(1, -1)
                               for r in items]) @ self.weights
        block = np.asarray(block) + self.intercept
        return list(block)

    def columnar_kernel(self):
        from repro.core.kernels import LinearMapKernel

        return LinearMapKernel(self.weights, self.intercept)

    def training_loss(self, data: Dataset, labels: Dataset) -> float:
        """Mean squared residual over a dataset (for convergence checks)."""
        total, count = 0.0, 0
        for a, b in iter_xy_blocks(data, labels, prefer_sparse=True):
            resid = np.asarray(a @ self.weights) + self.intercept - b
            total += float(np.sum(resid * resid))
            count += b.shape[0]
        return total / max(count, 1)


# ----------------------------------------------------------------------
# Physical solvers
# ----------------------------------------------------------------------

class LocalQRSolver(LabelEstimator):
    """Exact least-squares on a single node (collect + dense factorization)."""

    def __init__(self, l2_reg: float = 1e-8):
        self.l2_reg = l2_reg

    def fit(self, data: Dataset, labels: Dataset) -> LinearMapper:
        from scipy.linalg import lstsq

        a = collect_dense(data)
        b = collect_dense(labels)
        d = a.shape[1]
        if self.l2_reg > 0:
            a = np.vstack([a, math.sqrt(self.l2_reg) * np.eye(d)])
            b = np.vstack([b, np.zeros((d, b.shape[1]))])
        # gelsy is QR-based: the cost the Local-QR model prices (the
        # default SVD driver is ~4x slower and would skew Figure 6).
        x, *_ = lstsq(a, b, lapack_driver="gelsy")
        return LinearMapper(x)


class DistributedQRSolver(LabelEstimator, ShardableEstimator):
    """Exact least-squares via TSQR over partition blocks.

    The local QR of each augmented ``[A_i | B_i]`` block is a sufficient
    statistic: workers factor their shard's blocks and the parent runs
    the same combining tree (:func:`repro.linalg.tsqr.tsqr_combine`), so
    the solution is bit-identical to the serial fit.
    """

    def __init__(self, l2_reg: float = 1e-8):
        self.l2_reg = l2_reg

    def _block_stats(self, a, b):
        a = np.asarray(a.todense()) if sp.issparse(a) else a
        return (np.linalg.qr(np.hstack([a, b]), mode="r"),
                a.shape[1], b.shape[1])

    def partition_stats(self, rows, label_rows=None):
        if not rows:
            return None
        if label_rows is None or len(rows) != len(label_rows):
            raise ValueError(
                f"{len(rows)} feature rows vs "
                f"{0 if label_rows is None else len(label_rows)} label rows")
        return self._block_stats(rows_to_block(rows),
                                 np.asarray(rows_to_block(label_rows)))

    def fit_from_stats(self, partials) -> LinearMapper:
        present = [p for p in partials if p is not None]
        if not present:
            raise ValueError("DistributedQRSolver input is empty")
        _factor, d, k = present[0]
        x = tsqr_solve_from_factors([f for f, _d, _k in present], d, k,
                                    self.l2_reg)
        return LinearMapper(x)

    def fit(self, data: Dataset, labels: Dataset) -> LinearMapper:
        return self.fit_from_stats(
            [self._block_stats(a, b)
             for a, b in iter_xy_blocks(data, labels)])


class LBFGSSolver(LabelEstimator, Iterative):
    """Iterative gradient solver; exploits sparse inputs.

    Each objective evaluation scans the feature dataset once (one "pass"
    in the materialization cost model), computing
    ``grad = 2 A^T (A X - B) / n + l2 X`` block by block — sparse blocks
    cost ``O(nnz * k)`` instead of ``O(n d k)``.
    """

    def __init__(self, max_iter: int = 50, l2_reg: float = 1e-8,
                 tol: float = 1e-7):
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.max_iter = max_iter
        self.l2_reg = l2_reg
        self.tol = tol
        self.weight = max_iter
        self.iterations_run = 0

    def fit(self, data: Dataset, labels: Dataset) -> LinearMapper:
        d = feature_dim(data)
        k = label_dim(labels)
        n = data.count()
        self.iterations_run = 0

        def objective(x_flat: np.ndarray) -> Tuple[float, np.ndarray]:
            x = x_flat.reshape(d, k)
            loss = 0.0
            grad = np.zeros((d, k))
            for a, b in iter_xy_blocks(data, labels, prefer_sparse=True):
                resid = np.asarray(a @ x) - b
                loss += float(np.sum(resid * resid))
                grad += np.asarray(a.T @ resid)
            loss = loss / n + self.l2_reg * float(np.sum(x * x))
            grad = 2.0 * grad / n + 2.0 * self.l2_reg * x
            self.iterations_run += 1
            return loss, grad.ravel()

        x0 = np.zeros(d * k)
        result = minimize(objective, x0, jac=True, method="L-BFGS-B",
                          tol=self.tol,
                          options={"maxiter": self.max_iter})
        return LinearMapper(result.x.reshape(d, k))


class BlockCoordinateSolver(LabelEstimator, Iterative):
    """Block Gauss–Seidel least squares (the paper's "Block Solver").

    Features are split into blocks of ``block_size`` columns; each epoch
    sweeps the blocks, exactly solving the least-squares subproblem for one
    block against the current residual.  Every block update scans the data
    once, so an epoch costs ``ceil(d / b)`` passes — the behaviour that
    makes this solver catastrophically slow on sparse text features
    (paper: 26-260x slower than L-BFGS) yet efficient for very wide dense
    problems where exact solves don't fit and gradient methods converge
    slowly.
    """

    def __init__(self, block_size: int = 1024, epochs: int = 3,
                 l2_reg: float = 1e-8):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.block_size = block_size
        self.epochs = epochs
        self.l2_reg = l2_reg
        self.weight = epochs  # refined per-fit: epochs * num_blocks

    def _blocks(self, d: int) -> List[Tuple[int, int]]:
        edges = list(range(0, d, self.block_size)) + [d]
        return [(edges[i], edges[i + 1]) for i in range(len(edges) - 1)]

    def fit(self, data: Dataset, labels: Dataset) -> LinearMapper:
        d = feature_dim(data)
        k = label_dim(labels)
        col_blocks = self._blocks(d)
        self.weight = self.epochs * len(col_blocks)

        # Residual R = B - A X, kept in memory (n x k with small k).
        b_parts = [np.asarray(b) for _a, b in iter_xy_blocks(data, labels)]
        residual = [b.copy() for b in b_parts]
        x = np.zeros((d, k))

        for _epoch in range(self.epochs):
            for (lo, hi) in col_blocks:
                width = hi - lo
                gram = np.zeros((width, width))
                rhs = np.zeros((width, k))
                slices = []
                for part_idx, (a, _b) in enumerate(
                        iter_xy_blocks(data, labels, prefer_sparse=True)):
                    a_block = a[:, lo:hi]
                    a_block = (np.asarray(a_block.todense())
                               if sp.issparse(a_block) else a_block)
                    gram += a_block.T @ a_block
                    rhs += a_block.T @ residual[part_idx]
                    slices.append(a_block)
                gram += self.l2_reg * np.eye(width)
                # Solve for the update relative to the current block value.
                delta = np.linalg.solve(gram, rhs + gram @ x[lo:hi]
                                        - self.l2_reg * x[lo:hi]) - x[lo:hi]
                x[lo:hi] += delta
                for part_idx, a_block in enumerate(slices):
                    residual[part_idx] -= a_block @ delta
        return LinearMapper(x)


class SGDSolver(LabelEstimator, Iterative):
    """Mini-batch SGD on the least-squares objective (one fixed strategy).

    Provided both as a KeystoneML physical option and as the building block
    of the Vowpal-Wabbit-style baseline.
    """

    def __init__(self, epochs: int = 5, batch_size: int = 64,
                 learning_rate: float = 0.05, l2_reg: float = 1e-8,
                 seed: int = 0):
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.l2_reg = l2_reg
        self.seed = seed
        self.weight = epochs

    def fit(self, data: Dataset, labels: Dataset) -> LinearMapper:
        d = feature_dim(data)
        k = label_dim(labels)
        x = np.zeros((d, k))
        step = self.learning_rate
        for epoch in range(self.epochs):
            for a, b in iter_xy_blocks(data, labels, prefer_sparse=True):
                n_rows = b.shape[0]
                for lo in range(0, n_rows, self.batch_size):
                    hi = min(lo + self.batch_size, n_rows)
                    a_batch = a[lo:hi]
                    resid = np.asarray(a_batch @ x) - b[lo:hi]
                    grad = (2.0 * np.asarray(a_batch.T @ resid) / (hi - lo)
                            + 2.0 * self.l2_reg * x)
                    x -= step * grad
            step *= 0.9
        return LinearMapper(x)


# ----------------------------------------------------------------------
# Cost models (Table 1, with calibration constants)
# ----------------------------------------------------------------------

class LocalQRCostModel(CostModel):
    name = "local-qr"

    def __init__(self, solver: LocalQRSolver):
        self.solver = solver

    def cost(self, stats, workers: int) -> CostProfile:
        n, d, k = stats.n, stats.d, stats.k
        # 4nd(d+k): QR factorization plus applying Q^T to the labels.
        flops = 4.0 * n * d * (d + k)
        local_bytes = DOUBLE * d * (n + k)
        network = DOUBLE * n * (d + k)  # gather all data to one node
        return CostProfile(flops, local_bytes, network, tasks=1.0)

    def feasible(self, stats, resources) -> bool:
        needed = DOUBLE * stats.d * (stats.n + stats.k)
        return needed <= 0.9 * resources.memory_bytes


class DistributedQRCostModel(CostModel):
    name = "distributed-qr"

    def __init__(self, solver: DistributedQRSolver):
        self.solver = solver

    def cost(self, stats, workers: int) -> CostProfile:
        n, d, k = stats.n, stats.d, stats.k
        w = max(workers, 1)
        tree_depth = max(math.log2(w), 1.0) if w > 1 else 1.0
        flops = 4.0 * n * d * (d + k) / w + 2.0 * d ** 2 * (d + k) * tree_depth
        local_bytes = DOUBLE * (n * d / w + d * d)
        network = DOUBLE * d * (d + k) * tree_depth
        return CostProfile(flops, local_bytes, network, tasks=1.0)

    def feasible(self, stats, resources) -> bool:
        w = max(resources.num_nodes, 1)
        per_node = DOUBLE * (stats.n * stats.d / w + stats.d ** 2)
        return per_node <= 0.9 * resources.memory_bytes


class LBFGSCostModel(CostModel):
    name = "lbfgs"

    def __init__(self, solver: LBFGSSolver):
        self.solver = solver

    def cost(self, stats, workers: int) -> CostProfile:
        n, d, k = stats.n, stats.d, stats.k
        s = max(stats.nnz_per_row, 1.0)
        i = self.solver.max_iter
        w = max(workers, 1)
        tree_depth = max(math.log2(w), 1.0) if w > 1 else 1.0
        # 6 flops per nnz per class: forward + backward products plus
        # line-search evaluations; 2 memory scans of the data per pass.
        flops = 6.0 * i * n * s * k / w
        local_bytes = DOUBLE * i * (2.0 * n * s / w + d * k)
        network = DOUBLE * i * d * k * tree_depth
        return CostProfile(flops, local_bytes, network, tasks=float(i))

    def feasible(self, stats, resources) -> bool:
        w = max(resources.num_nodes, 1)
        per_node = DOUBLE * (stats.n * max(stats.nnz_per_row, 1.0) / w
                             + stats.d * stats.k)
        return per_node <= 0.9 * resources.memory_bytes


class BlockSolverCostModel(CostModel):
    name = "block-solver"

    def __init__(self, solver: BlockCoordinateSolver):
        self.solver = solver

    def cost(self, stats, workers: int) -> CostProfile:
        n, d, k = stats.n, stats.d, stats.k
        b = min(self.solver.block_size, max(d, 1))
        i = self.solver.epochs
        w = max(workers, 1)
        tree_depth = max(math.log2(w), 1.0) if w > 1 else 1.0
        # Per epoch: every block update reads all of A (dense access
        # pattern regardless of sparsity) and solves a b x b system.
        num_blocks = math.ceil(d / b)
        flops = (2.0 * i * n * d * (b + k) / w
                 + i * num_blocks * (b ** 3) / 3.0)
        local_bytes = DOUBLE * i * num_blocks * (n * d / w)
        network = DOUBLE * i * d * (b + k) * tree_depth
        return CostProfile(flops, local_bytes, network,
                           tasks=float(i * num_blocks))

    def feasible(self, stats, resources) -> bool:
        w = max(resources.num_nodes, 1)
        b = self.solver.block_size
        per_node = DOUBLE * (stats.n * b / w + stats.d * stats.k)
        return per_node <= 0.9 * resources.memory_bytes


class SGDCostModel(CostModel):
    name = "sgd"

    def __init__(self, solver: SGDSolver):
        self.solver = solver

    def cost(self, stats, workers: int) -> CostProfile:
        n, d, k = stats.n, stats.d, stats.k
        s = max(stats.nnz_per_row, 1.0)
        i = self.solver.epochs
        w = max(workers, 1)
        batches_per_epoch = max(n / max(self.solver.batch_size, 1), 1.0)
        flops = 4.0 * i * n * s * k / w
        local_bytes = DOUBLE * i * n * s / w
        # Synchronous SGD coordinates the model every mini-batch.
        network = DOUBLE * i * batches_per_epoch * d * k
        return CostProfile(flops, local_bytes, network, tasks=float(i))


# ----------------------------------------------------------------------
# The logical operator
# ----------------------------------------------------------------------

class LinearSolver(LabelEstimator, Optimizable):
    """Logical least-squares solver; physical choice is cost-based.

    Fitting without prior optimization falls back to ``default``
    (L-BFGS, the same default the paper's unoptimized configuration runs),
    matching KeystoneML's behaviour of running whatever single
    implementation the developer picked when the optimizer is off.
    """

    def __init__(self, l2_reg: float = 1e-8, lbfgs_iters: int = 50,
                 block_size: int = 1024, block_epochs: int = 3,
                 default: str = "lbfgs"):
        self.l2_reg = l2_reg
        self.lbfgs_iters = lbfgs_iters
        self.block_size = block_size
        self.block_epochs = block_epochs
        self.default = default

    def options(self) -> Sequence[Tuple[CostModel, LabelEstimator]]:
        local_qr = LocalQRSolver(self.l2_reg)
        dist_qr = DistributedQRSolver(self.l2_reg)
        lbfgs = LBFGSSolver(self.lbfgs_iters, self.l2_reg)
        block = BlockCoordinateSolver(self.block_size, self.block_epochs,
                                      self.l2_reg)
        return [
            (LocalQRCostModel(local_qr), local_qr),
            (DistributedQRCostModel(dist_qr), dist_qr),
            (LBFGSCostModel(lbfgs), lbfgs),
            (BlockSolverCostModel(block), block),
        ]

    def _default_solver(self) -> LabelEstimator:
        for model, op in self.options():
            if model.name == self.default:
                return op
        raise ValueError(f"unknown default solver {self.default!r}")

    def fit(self, data: Dataset, labels: Dataset) -> LinearMapper:
        return self._default_solver().fit(data, labels)

    @property
    def weight(self) -> int:
        return self._default_solver().weight if hasattr(
            self._default_solver(), "weight") else 1
