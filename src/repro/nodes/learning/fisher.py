"""Fisher-vector encoding of descriptor sets (Sánchez et al., IJCV 2013).

Given a fitted diagonal GMM with K components over d-dimensional
descriptors, the Fisher vector of a descriptor set is the concatenated
gradient of the set's log-likelihood w.r.t. the GMM's means and variances —
a fixed-length ``2 K d`` vector regardless of the set size.  Combined with
power and L2 normalization it is the encoding used by the paper's VOC and
ImageNet pipelines.
"""

from __future__ import annotations

import numpy as np

from repro.core.operators import Estimator, Transformer
from repro.dataset.dataset import Dataset
from repro.nodes.learning.gmm import GaussianMixtureModel, GMMEstimator


class FisherVector(Transformer):
    """Encode a (num_descriptors x d) matrix into a 2*K*d Fisher vector."""

    def __init__(self, gmm: GaussianMixtureModel):
        self.gmm = gmm

    @property
    def output_dim(self) -> int:
        return 2 * self.gmm.num_components * self.gmm.dim

    def apply(self, descriptors) -> np.ndarray:
        x = np.atleast_2d(np.asarray(descriptors, dtype=np.float64))
        n = x.shape[0]
        gmm = self.gmm
        resp = gmm.responsibilities(x)                       # (n, K)
        sigma = np.sqrt(gmm.variances)                       # (K, d)

        # Normalized deviations: (n, K, d)
        dev = (x[:, None, :] - gmm.means[None, :, :]) / sigma[None, :, :]
        weighted = resp[:, :, None] * dev
        grad_mu = weighted.sum(axis=0)                       # (K, d)
        grad_sigma = (resp[:, :, None] * (dev * dev - 1.0)).sum(axis=0)

        w = gmm.weights[:, None]
        grad_mu /= n * np.sqrt(w)
        grad_sigma /= n * np.sqrt(2.0 * w)
        return np.concatenate([grad_mu.ravel(), grad_sigma.ravel()])


class FisherVectorEstimator(Estimator):
    """Fit a GMM on descriptors; the fitted transformer is a FisherVector.

    Mirrors the paper's Figure 5 where the GMM estimator node feeds the
    Fisher Vector transformer on the main flow.
    """

    def __init__(self, gmm: GMMEstimator):
        self.gmm = gmm
        self.weight = gmm.weight

    def fit(self, data: Dataset) -> FisherVector:
        return FisherVector(self.gmm.fit(data))
