"""K-Means (Lloyd's algorithm) over dataset partitions.

Used by the CIFAR pipeline to learn convolution filters from whitened
patches (Coates & Ng) and as the initializer for the GMM estimator.  Each
iteration streams the partitions once, so it is :class:`Iterative` with
``weight = max_iter`` for the materialization cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.operators import (
    Estimator,
    Iterative,
    IterativeShardableEstimator,
    Transformer,
)
from repro.dataset.dataset import Dataset
from repro.nodes.learning._util import rows_to_block


def _dense(block) -> np.ndarray:
    import scipy.sparse as sp

    return np.asarray(block.todense()) if sp.issparse(block) else block


def kmeans_fit_array(data: np.ndarray, k: int, max_iter: int,
                     seed: int = 0, tol: float = 1e-6) -> np.ndarray:
    """Plain in-memory Lloyd's iterations; returns k x d centroids."""
    n = data.shape[0]
    if n < k:
        raise ValueError(f"need at least k={k} points, got {n}")
    rng = np.random.default_rng(seed)
    centroids = data[rng.choice(n, size=k, replace=False)].copy()
    for _ in range(max_iter):
        d2 = (np.sum(data ** 2, axis=1, keepdims=True)
              - 2.0 * data @ centroids.T
              + np.sum(centroids ** 2, axis=1))
        assign = np.argmin(d2, axis=1)
        new_centroids = centroids.copy()
        for j in range(k):
            members = data[assign == j]
            if len(members):
                new_centroids[j] = members.mean(axis=0)
        shift = float(np.max(np.abs(new_centroids - centroids)))
        centroids = new_centroids
        if shift < tol:
            break
    return centroids


class ClusterAssigner(Transformer):
    """Maps a vector (or descriptor matrix) to nearest-centroid ids."""

    def __init__(self, centroids: np.ndarray):
        self.centroids = np.asarray(centroids)

    def apply(self, row):
        arr = np.atleast_2d(np.asarray(row, dtype=np.float64))
        d2 = (np.sum(arr ** 2, axis=1, keepdims=True)
              - 2.0 * arr @ self.centroids.T
              + np.sum(self.centroids ** 2, axis=1))
        assign = np.argmin(d2, axis=1)
        return int(assign[0]) if np.asarray(row).ndim == 1 else assign


@dataclass
class _KMeansState:
    """Driver-side solver state between passes."""

    centroids: np.ndarray
    iteration: int
    shift: Optional[float]


class KMeansEstimator(Estimator, Iterative, IterativeShardableEstimator):
    """Distributed-style Lloyd's: per-partition sufficient statistics.

    Rows may be vectors or descriptor matrices (stacked).  The fitted
    transformer assigns cluster ids; the learned ``centroids_`` are also
    consumed directly by filter-learning pipelines.

    Implements :class:`~repro.core.operators.IterativeShardableEstimator`:
    every pass reduces per-partition ``(sums, counts)`` statistics
    against the broadcast centroids, and ``fit`` runs the same state
    machine serially, so the actor runtime's in-worker passes are
    byte-identical by construction.
    """

    def __init__(self, k: int, max_iter: int = 20, seed: int = 0,
                 tol: float = 1e-6, init_sample: int = 10_000):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.max_iter = max_iter
        self.seed = seed
        self.tol = tol
        self.init_sample = max(init_sample, k)
        self.weight = max_iter
        self.centroids_: Optional[np.ndarray] = None

    # -- IterativeShardableEstimator protocol ---------------------------
    def init_stats(self, rows: List, label_rows=None):
        """Initialization samples ``k`` centroids from the dataset's
        leading ``init_sample`` rows, so at most that prefix (plus the
        full partition row count) ever ships.  A block truncated here is
        alone past ``init_sample`` rows, so the final ``[:init_sample]``
        in :meth:`init_state` never reads across the cut."""
        if not rows:
            return None
        block = _dense(rows_to_block(rows))
        return (block.shape[0], block[:self.init_sample])

    def init_state(self, partials: List) -> _KMeansState:
        blocks: List[np.ndarray] = []
        seen = 0
        for partial in partials:
            if partial is None:
                continue
            count, block = partial
            blocks.append(np.asarray(block))
            seen += count
            if seen >= self.init_sample:
                break
        stacked = np.vstack(blocks) if blocks else np.zeros((0, 0))
        sample = stacked[:self.init_sample]
        if sample.shape[0] < self.k:
            raise ValueError(f"need at least k={self.k} rows, got "
                             f"{sample.shape[0]}")
        rng = np.random.default_rng(self.seed)
        idx = rng.choice(sample.shape[0], size=self.k, replace=False)
        return _KMeansState(sample[idx].copy(), 0, None)

    def pass_payload(self, state: _KMeansState) -> np.ndarray:
        return state.centroids

    def partition_pass_stats(self, payload: np.ndarray, rows: List,
                             label_rows=None
                             ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        if not rows:
            return None
        centroids = payload
        block = _dense(rows_to_block(rows))
        d2 = (np.sum(block ** 2, axis=1, keepdims=True)
              - 2.0 * block @ centroids.T
              + np.sum(centroids ** 2, axis=1))
        assign = np.argmin(d2, axis=1)
        sums = np.zeros_like(centroids)
        counts = np.zeros(self.k)
        np.add.at(sums, assign, block)
        np.add.at(counts, assign, 1.0)
        return (sums, counts)

    def update_from_stats(self, state: _KMeansState,
                          partials: List) -> _KMeansState:
        centroids = state.centroids
        sums = np.zeros_like(centroids)
        counts = np.zeros(self.k)
        for partial in partials:
            if partial is None:
                continue
            sums += partial[0]
            counts += partial[1]
        new_centroids = centroids.copy()
        nonzero = counts > 0
        new_centroids[nonzero] = sums[nonzero] / counts[nonzero, None]
        shift = float(np.max(np.abs(new_centroids - centroids)))
        return _KMeansState(new_centroids, state.iteration + 1, shift)

    def converged(self, state: _KMeansState) -> bool:
        if state.iteration >= self.max_iter:
            return True
        return state.shift is not None and state.shift < self.tol

    def finalize(self, state: _KMeansState) -> ClusterAssigner:
        self.centroids_ = state.centroids
        return ClusterAssigner(state.centroids)

    def fit(self, data: Dataset) -> ClusterAssigner:
        return self.fit_via_passes(data)
