"""K-Means (Lloyd's algorithm) over dataset partitions.

Used by the CIFAR pipeline to learn convolution filters from whitened
patches (Coates & Ng) and as the initializer for the GMM estimator.  Each
iteration streams the partitions once, so it is :class:`Iterative` with
``weight = max_iter`` for the materialization cost model.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.operators import Estimator, Iterative, Transformer
from repro.dataset.dataset import Dataset
from repro.nodes.learning._util import iter_blocks


def _dense(block) -> np.ndarray:
    import scipy.sparse as sp

    return np.asarray(block.todense()) if sp.issparse(block) else block


def kmeans_fit_array(data: np.ndarray, k: int, max_iter: int,
                     seed: int = 0, tol: float = 1e-6) -> np.ndarray:
    """Plain in-memory Lloyd's iterations; returns k x d centroids."""
    n = data.shape[0]
    if n < k:
        raise ValueError(f"need at least k={k} points, got {n}")
    rng = np.random.default_rng(seed)
    centroids = data[rng.choice(n, size=k, replace=False)].copy()
    for _ in range(max_iter):
        d2 = (np.sum(data ** 2, axis=1, keepdims=True)
              - 2.0 * data @ centroids.T
              + np.sum(centroids ** 2, axis=1))
        assign = np.argmin(d2, axis=1)
        new_centroids = centroids.copy()
        for j in range(k):
            members = data[assign == j]
            if len(members):
                new_centroids[j] = members.mean(axis=0)
        shift = float(np.max(np.abs(new_centroids - centroids)))
        centroids = new_centroids
        if shift < tol:
            break
    return centroids


class ClusterAssigner(Transformer):
    """Maps a vector (or descriptor matrix) to nearest-centroid ids."""

    def __init__(self, centroids: np.ndarray):
        self.centroids = np.asarray(centroids)

    def apply(self, row):
        arr = np.atleast_2d(np.asarray(row, dtype=np.float64))
        d2 = (np.sum(arr ** 2, axis=1, keepdims=True)
              - 2.0 * arr @ self.centroids.T
              + np.sum(self.centroids ** 2, axis=1))
        assign = np.argmin(d2, axis=1)
        return int(assign[0]) if np.asarray(row).ndim == 1 else assign


class KMeansEstimator(Estimator, Iterative):
    """Distributed-style Lloyd's: per-partition sufficient statistics.

    Rows may be vectors or descriptor matrices (stacked).  The fitted
    transformer assigns cluster ids; the learned ``centroids_`` are also
    consumed directly by filter-learning pipelines.
    """

    def __init__(self, k: int, max_iter: int = 20, seed: int = 0,
                 tol: float = 1e-6):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.max_iter = max_iter
        self.seed = seed
        self.tol = tol
        self.weight = max_iter
        self.centroids_: Optional[np.ndarray] = None

    def _init_centroids(self, data: Dataset) -> np.ndarray:
        first_rows: List[np.ndarray] = []
        for block in iter_blocks(data):
            first_rows.append(_dense(block))
            if sum(b.shape[0] for b in first_rows) >= self.k:
                break
        stacked = np.vstack(first_rows)
        if stacked.shape[0] < self.k:
            raise ValueError(f"need at least k={self.k} rows, got "
                             f"{stacked.shape[0]}")
        rng = np.random.default_rng(self.seed)
        idx = rng.choice(stacked.shape[0], size=self.k, replace=False)
        return stacked[idx].copy()

    def fit(self, data: Dataset) -> ClusterAssigner:
        centroids = self._init_centroids(data)
        for _ in range(self.max_iter):
            sums = np.zeros_like(centroids)
            counts = np.zeros(self.k)
            for block in iter_blocks(data):
                block = _dense(block)
                d2 = (np.sum(block ** 2, axis=1, keepdims=True)
                      - 2.0 * block @ centroids.T
                      + np.sum(centroids ** 2, axis=1))
                assign = np.argmin(d2, axis=1)
                np.add.at(sums, assign, block)
                np.add.at(counts, assign, 1.0)
            new_centroids = centroids.copy()
            nonzero = counts > 0
            new_centroids[nonzero] = sums[nonzero] / counts[nonzero, None]
            shift = float(np.max(np.abs(new_centroids - centroids)))
            centroids = new_centroids
            if shift < self.tol:
                break
        self.centroids_ = centroids
        return ClusterAssigner(centroids)
