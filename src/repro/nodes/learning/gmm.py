"""Diagonal-covariance Gaussian mixture model fit by EM over partitions.

The image pipelines (VOC, ImageNet) fit a GMM on sampled SIFT/LCS
descriptors; the fitted model parameterizes the Fisher-vector encoder.
Each EM iteration streams the dataset once (``Iterative``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.operators import (
    Estimator,
    Iterative,
    IterativeShardableEstimator,
    Transformer,
)
from repro.dataset.dataset import Dataset
from repro.nodes.learning._util import rows_to_block
from repro.nodes.learning.kmeans import kmeans_fit_array


def _dense(block) -> np.ndarray:
    import scipy.sparse as sp

    return np.asarray(block.todense()) if sp.issparse(block) else block


class GaussianMixtureModel(Transformer):
    """A fitted diagonal GMM; transforms points to responsibilities."""

    def __init__(self, weights: np.ndarray, means: np.ndarray,
                 variances: np.ndarray):
        self.weights = np.asarray(weights)        # (K,)
        self.means = np.asarray(means)            # (K, d)
        self.variances = np.asarray(variances)    # (K, d)

    @property
    def num_components(self) -> int:
        return self.weights.size

    @property
    def dim(self) -> int:
        return self.means.shape[1]

    def log_responsibilities(self, x: np.ndarray) -> np.ndarray:
        """Log posterior over components for each row of ``x`` (n x K)."""
        x = np.atleast_2d(x)
        log_det = np.sum(np.log(self.variances), axis=1)       # (K,)
        # (n, K): sum_j (x_j - mu_kj)^2 / var_kj
        diff = x[:, None, :] - self.means[None, :, :]
        maha = np.sum(diff * diff / self.variances[None, :, :], axis=2)
        log_prob = (-0.5 * (maha + log_det
                            + self.dim * np.log(2 * np.pi))
                    + np.log(self.weights + 1e-300))
        log_norm = np.logaddexp.reduce(log_prob, axis=1, keepdims=True)
        return log_prob - log_norm

    def responsibilities(self, x: np.ndarray) -> np.ndarray:
        return np.exp(self.log_responsibilities(x))

    def apply(self, row) -> np.ndarray:
        arr = np.asarray(row, dtype=np.float64)
        resp = self.responsibilities(np.atleast_2d(arr))
        return resp[0] if arr.ndim == 1 else resp

    def log_likelihood(self, x: np.ndarray) -> float:
        x = np.atleast_2d(x)
        log_det = np.sum(np.log(self.variances), axis=1)
        diff = x[:, None, :] - self.means[None, :, :]
        maha = np.sum(diff * diff / self.variances[None, :, :], axis=2)
        log_prob = (-0.5 * (maha + log_det + self.dim * np.log(2 * np.pi))
                    + np.log(self.weights + 1e-300))
        return float(np.sum(np.logaddexp.reduce(log_prob, axis=1)))


@dataclass
class _GMMState:
    """Driver-side EM state between passes."""

    model: GaussianMixtureModel
    iteration: int


class GMMEstimator(Estimator, Iterative, IterativeShardableEstimator):
    """Fit a diagonal GMM with EM; K-Means initialization.

    Rows may be vectors or per-item descriptor matrices.  ``min_variance``
    floors the variances for numerical robustness (standard practice for
    Fisher-vector GMMs).

    Implements :class:`~repro.core.operators.IterativeShardableEstimator`:
    each EM pass reduces per-partition responsibility moments against
    the broadcast mixture parameters; ``fit`` drives the same state
    machine serially, so distributed passes are byte-identical.
    """

    def __init__(self, num_components: int, max_iter: int = 15,
                 seed: int = 0, min_variance: float = 1e-4,
                 init_sample: int = 10_000):
        if num_components < 1:
            raise ValueError(
                f"num_components must be >= 1, got {num_components}")
        self.num_components = num_components
        self.max_iter = max_iter
        self.seed = seed
        self.min_variance = min_variance
        self.init_sample = init_sample
        self.weight = max_iter + 1

    # -- IterativeShardableEstimator protocol ---------------------------
    def init_stats(self, rows: List, label_rows=None):
        """K-Means initialization consumes whole blocks in partition
        order until ``init_sample`` rows are seen, then truncates; the
        per-partition prefix below reconstructs the identical sample
        (a block past ``init_sample`` rows is alone big enough that the
        final ``[:init_sample]`` never reads across it)."""
        if not rows:
            return None
        block = _dense(rows_to_block(rows))
        return (block.shape[0], block[:self.init_sample])

    def init_state(self, partials: List) -> _GMMState:
        blocks: List[np.ndarray] = []
        seen = 0
        for partial in partials:
            if partial is None:
                continue
            count, block = partial
            blocks.append(np.asarray(block))
            seen += count
            if seen >= self.init_sample:
                break
        if not blocks:
            raise ValueError("GMM input is empty")
        sample = np.vstack(blocks)[:self.init_sample]
        k = self.num_components
        means = kmeans_fit_array(sample, k, max_iter=5, seed=self.seed)
        var = np.maximum(sample.var(axis=0), self.min_variance)
        variances = np.tile(var, (k, 1))
        weights = np.full(k, 1.0 / k)
        return _GMMState(GaussianMixtureModel(weights, means, variances), 0)

    def pass_payload(self, state: _GMMState
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        model = state.model
        return (model.weights, model.means, model.variances)

    def partition_pass_stats(self, payload, rows: List, label_rows=None
                             ) -> Optional[Tuple]:
        if not rows:
            return None
        model = GaussianMixtureModel(*payload)
        block = _dense(rows_to_block(rows))
        resp = model.responsibilities(block)               # (n, K)
        return (resp.sum(axis=0), resp.T @ block,
                resp.T @ (block * block), block.shape[0])

    def update_from_stats(self, state: _GMMState,
                          partials: List) -> _GMMState:
        k, d = self.num_components, state.model.dim
        resp_sum = np.zeros(k)
        mean_sum = np.zeros((k, d))
        sq_sum = np.zeros((k, d))
        total = 0
        for partial in partials:
            if partial is None:
                continue
            resp_sum += partial[0]
            mean_sum += partial[1]
            sq_sum += partial[2]
            total += partial[3]
        if total == 0:
            raise ValueError("GMM input is empty")
        nk = np.maximum(resp_sum, 1e-10)
        means = mean_sum / nk[:, None]
        variances = np.maximum(sq_sum / nk[:, None] - means * means,
                               self.min_variance)
        weights = nk / total
        return _GMMState(GaussianMixtureModel(weights, means, variances),
                         state.iteration + 1)

    def converged(self, state: _GMMState) -> bool:
        return state.iteration >= self.max_iter

    def finalize(self, state: _GMMState) -> GaussianMixtureModel:
        return state.model

    def fit(self, data: Dataset) -> GaussianMixtureModel:
        return self.fit_via_passes(data)
