"""Unsupervised convolution-filter learning (Coates & Ng, the CIFAR path).

``ConvolutionalFilterLearner`` samples random patches from training images,
ZCA-whitens them, runs K-Means, and returns a
:class:`~repro.nodes.convolution.Convolver` whose filters fold the
whitening in: responding to a whitened patch with centroid ``c`` equals
convolving the raw image with ``W c`` plus a per-filter bias.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.operators import Estimator
from repro.dataset.dataset import Dataset
from repro.nodes.convolution import Convolver
from repro.nodes.images import RandomPatchSampler
from repro.nodes.learning.kmeans import kmeans_fit_array


class ConvolutionalFilterLearner(Estimator):
    """Fit ZCA + K-Means filters from image patches; returns a Convolver."""

    def __init__(self, num_filters: int, patch_size: int,
                 image_shape: Tuple[int, int, int],
                 patches_per_image: int = 10, max_images: int = 500,
                 zca_eps: float = 0.1, kmeans_iters: int = 10, seed: int = 0,
                 conv_strategy: str = "blas"):
        if num_filters < 1:
            raise ValueError(f"num_filters must be >= 1, got {num_filters}")
        self.num_filters = num_filters
        self.patch_size = patch_size
        self.image_shape = tuple(image_shape)
        self.patches_per_image = patches_per_image
        self.max_images = max_images
        self.zca_eps = zca_eps
        self.kmeans_iters = kmeans_iters
        self.seed = seed
        self.conv_strategy = conv_strategy

    def fit(self, data: Dataset) -> Convolver:
        sampler = RandomPatchSampler(self.patch_size,
                                     self.patches_per_image, self.seed)
        patches = []
        for img in data.take(self.max_images):
            patches.append(sampler.apply(img))
        stacked = np.vstack(patches)
        if stacked.shape[0] < self.num_filters:
            raise ValueError(
                f"sampled {stacked.shape[0]} patches < num_filters="
                f"{self.num_filters}; raise patches_per_image/max_images")

        mean = stacked.mean(axis=0)
        cov = np.cov(stacked - mean, rowvar=False)
        eigvals, eigvecs = np.linalg.eigh(cov)
        scale = 1.0 / np.sqrt(np.maximum(eigvals, 0) + self.zca_eps)
        w = (eigvecs * scale) @ eigvecs.T

        whitened = (stacked - mean) @ w
        centroids = kmeans_fit_array(whitened, self.num_filters,
                                     self.kmeans_iters, seed=self.seed)

        # Fold whitening into the filters: (W x) . c == x . (W c) because
        # W is symmetric; the mean shift becomes a per-filter bias.
        folded = centroids @ w                       # (k, p)
        bias = -(folded @ mean)                      # (k,)
        s = self.patch_size
        c = self.image_shape[2]
        filters = folded.reshape(self.num_filters, s, s, c)
        return Convolver(filters, self.image_shape, bias=bias,
                         default=self.conv_strategy)
