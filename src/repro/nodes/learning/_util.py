"""Shared helpers for learning estimators operating on row datasets."""

from __future__ import annotations

from typing import Iterator, List, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.dataset.dataset import Dataset

Block = Union[np.ndarray, sp.csr_matrix]


def rows_to_block(rows: List, prefer_sparse: bool = False) -> Block:
    """Stack rows (dense vectors, sparse rows, or descriptor matrices)."""
    if not rows:
        return np.zeros((0, 0))
    first = rows[0]
    if sp.issparse(first):
        stacked = sp.vstack(rows).tocsr()
        return stacked if prefer_sparse or _keep_sparse(stacked) else \
            stacked.toarray()
    arrs = [np.atleast_2d(np.asarray(r, dtype=np.float64)) for r in rows]
    return np.vstack(arrs)


def _keep_sparse(m: sp.csr_matrix) -> bool:
    total = m.shape[0] * m.shape[1]
    return total > 0 and m.nnz / total < 0.5


def iter_blocks(data: Dataset, prefer_sparse: bool = False) -> Iterator[Block]:
    """Yield one stacked block per non-empty partition.

    Each call re-reads the dataset partitions, so iterative algorithms that
    call this once per pass exhibit the recompute-unless-cached behaviour
    the materialization optimizer reasons about.
    """
    for i in range(data.num_partitions):
        rows = data.partition(i)
        if rows:
            yield rows_to_block(rows, prefer_sparse)


def iter_xy_blocks(data: Dataset, labels: Dataset,
                   prefer_sparse: bool = False) -> Iterator[Tuple[Block, np.ndarray]]:
    """Yield aligned (features, labels) blocks partition by partition."""
    if data.num_partitions != labels.num_partitions:
        raise ValueError(
            "features and labels must be identically partitioned: "
            f"{data.num_partitions} vs {labels.num_partitions}")
    for i in range(data.num_partitions):
        x_rows = data.partition(i)
        y_rows = labels.partition(i)
        if len(x_rows) != len(y_rows):
            raise ValueError(f"partition {i}: {len(x_rows)} feature rows vs "
                             f"{len(y_rows)} label rows")
        if x_rows:
            yield (rows_to_block(x_rows, prefer_sparse),
                   np.asarray(rows_to_block(y_rows)))


def feature_dim(data: Dataset) -> int:
    first = data.first()
    if sp.issparse(first):
        return int(first.shape[-1])
    return int(np.asarray(first).shape[-1])


def label_dim(labels: Dataset) -> int:
    first = labels.first()
    arr = np.asarray(first)
    return int(arr.size) if arr.ndim else 1


def collect_dense(data: Dataset) -> np.ndarray:
    """Materialize the whole dataset as one dense matrix (local solvers)."""
    blocks = [np.asarray(b.todense()) if sp.issparse(b) else b
              for b in iter_blocks(data)]
    if not blocks:
        raise ValueError("dataset is empty")
    return np.vstack(blocks)
