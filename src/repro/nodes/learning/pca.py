"""PCA: one logical operator, four physical implementations (paper Table 2).

``PCAEstimator(k)`` produces a transformer projecting rows onto the top-k
principal components.  Physical options:

- ``LocalSVD`` — exact, collect + full SVD, O(n d^2).
- ``LocalTSVD`` — approximate randomized truncated SVD (Halko et al.),
  O(n d k).
- ``DistributedSVD`` — exact, Gram matrix via aggregation tree + local
  eigendecomposition, O(n d^2 / w) compute and O(d^2) network.
- ``DistributedTSVD`` — approximate randomized algorithm over partition
  blocks; O(n d k / w) compute and O(d k) network per pass.

The paper's Table 2 shows the crossovers: local wins small n, distributed
wins large n; truncated wins small k on wide data, exact wins when k
approaches d.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.cost.model import CostModel
from repro.cost.profile import CostProfile
from repro.core.operators import (
    Estimator,
    Optimizable,
    ShardableEstimator,
    Transformer,
)
from repro.dataset.dataset import Dataset
from repro.nodes.learning._util import (
    iter_blocks,
    rows_to_block,
)

DOUBLE = 8.0


class PCATransformer(Transformer):
    """Projects (centered) rows or descriptor matrices onto ``components``."""

    def __init__(self, components: np.ndarray, mean: np.ndarray):
        self.components = np.asarray(components)  # d x k
        self.mean = np.asarray(mean)

    def apply(self, row) -> np.ndarray:
        if sp.issparse(row):
            row = np.asarray(row.todense())
        arr = np.asarray(row, dtype=np.float64)
        if arr.ndim == 2:
            return (arr - self.mean) @ self.components
        return (arr - self.mean) @ self.components

    def apply_partition(self, items: List) -> List[np.ndarray]:
        return [self.apply(x) for x in items]

    def columnar_kernel(self):
        from repro.core.kernels import PCAKernel

        return PCAKernel(self.components, self.mean)


def _stack_rows(data: Dataset) -> np.ndarray:
    """Collect rows, flattening per-item descriptor matrices."""
    blocks = []
    for block in iter_blocks(data):
        blocks.append(np.asarray(block.todense()) if sp.issparse(block)
                      else block)
    if not blocks:
        raise ValueError("PCA input is empty")
    return np.vstack(blocks)


def _components_from_cov(cov: np.ndarray, k: int) -> np.ndarray:
    eigvals, eigvecs = np.linalg.eigh(cov)
    order = np.argsort(eigvals)[::-1][:k]
    return eigvecs[:, order]


class LocalSVD(Estimator):
    """Exact PCA by full SVD on the collected, centered matrix."""

    def __init__(self, k: int):
        self.k = k

    def fit(self, data: Dataset) -> PCATransformer:
        a = _stack_rows(data)
        mean = a.mean(axis=0)
        _u, _s, vt = np.linalg.svd(a - mean, full_matrices=False)
        return PCATransformer(vt[:self.k].T, mean)


class LocalTSVD(Estimator):
    """Approximate PCA by randomized truncated SVD (local)."""

    def __init__(self, k: int, oversample: int = 10, power_iters: int = 1,
                 seed: int = 0):
        self.k = k
        self.oversample = oversample
        self.power_iters = power_iters
        self.seed = seed

    def fit(self, data: Dataset) -> PCATransformer:
        a = _stack_rows(data)
        mean = a.mean(axis=0)
        centered = a - mean
        n, d = centered.shape
        ell = min(self.k + self.oversample, d)
        rng = np.random.default_rng(self.seed)
        omega = rng.standard_normal((d, ell))
        y = centered @ omega
        for _ in range(self.power_iters):
            y = centered @ (centered.T @ y)
        q, _ = np.linalg.qr(y)
        b = q.T @ centered
        _ub, _sb, vt = np.linalg.svd(b, full_matrices=False)
        return PCATransformer(vt[:self.k].T, mean)


class DistributedSVD(Estimator, ShardableEstimator):
    """Exact PCA from the Gram matrix computed with an aggregation tree.

    Per-partition (column sum, Gram matrix, row count) triples are the
    sufficient statistics; the parent accumulates them in partition order,
    exactly like the serial streamed fit, so components stay
    byte-identical when partials are computed in worker processes.
    """

    def __init__(self, k: int):
        self.k = k

    def partition_stats(self, rows):
        if not rows:
            return None
        block = rows_to_block(rows)
        block = np.asarray(block.todense()) if sp.issparse(block) else block
        return block.sum(axis=0), block.T @ block, block.shape[0]

    def fit_from_stats(self, partials) -> PCATransformer:
        total, gram, count = None, None, 0
        for partial in partials:
            if partial is None:
                continue
            p_total, p_gram, p_count = partial
            if total is None:
                d = p_total.shape[0]
                total = np.zeros(d)
                gram = np.zeros((d, d))
            total += p_total
            gram += p_gram
            count += p_count
        if count == 0:
            raise ValueError("PCA input is empty")
        mean = total / count
        cov = gram / count - np.outer(mean, mean)
        return PCATransformer(_components_from_cov(cov, self.k), mean)

    def fit(self, data: Dataset) -> PCATransformer:
        return self.fit_from_stats(
            [self.partition_stats(part) for part in data.iter_partitions()])


class DistributedTSVD(Estimator):
    """Approximate PCA: randomized range finding over partition blocks.

    Each pass streams the partitions (like a distributed matrix product);
    only d x ell state crosses "the network".
    """

    def __init__(self, k: int, oversample: int = 10, power_iters: int = 1,
                 seed: int = 0):
        self.k = k
        self.oversample = oversample
        self.power_iters = power_iters
        self.seed = seed
        self.weight = 2 + 2 * power_iters

    def _mean(self, data: Dataset) -> Tuple[np.ndarray, int]:
        total, count = None, 0
        for block in iter_blocks(data):
            block = (np.asarray(block.todense()) if sp.issparse(block)
                     else block)
            total = block.sum(axis=0) if total is None else \
                total + block.sum(axis=0)
            count += block.shape[0]
        if count == 0:
            raise ValueError("PCA input is empty")
        return total / count, count

    def _matmul(self, data: Dataset, mean: np.ndarray,
                x: np.ndarray) -> np.ndarray:
        """Streamed ``(A - mean)^T ((A - mean) X)``."""
        d = mean.size
        out = np.zeros((d, x.shape[1]))
        for block in iter_blocks(data):
            block = (np.asarray(block.todense()) if sp.issparse(block)
                     else block)
            centered = block - mean
            out += centered.T @ (centered @ x)
        return out

    def fit(self, data: Dataset) -> PCATransformer:
        mean, _count = self._mean(data)
        d = mean.size
        ell = min(self.k + self.oversample, d)
        rng = np.random.default_rng(self.seed)
        y = rng.standard_normal((d, ell))
        for _ in range(self.power_iters + 1):
            y = self._matmul(data, mean, y)
            y, _ = np.linalg.qr(y)
        # Rayleigh–Ritz on the subspace: small eigenproblem.
        b = self._matmul(data, mean, y)
        small = y.T @ b
        eigvals, eigvecs = np.linalg.eigh((small + small.T) / 2)
        order = np.argsort(eigvals)[::-1][:self.k]
        return PCATransformer(y @ eigvecs[:, order], mean)


# ----------------------------------------------------------------------
# Cost models
# ----------------------------------------------------------------------

class LocalSVDCostModel(CostModel):
    name = "local-svd"

    def __init__(self, op: LocalSVD):
        self.op = op

    def cost(self, stats, workers: int) -> CostProfile:
        n, d = stats.n, stats.d
        flops = 4.0 * n * d * d
        return CostProfile(flops, DOUBLE * n * d, DOUBLE * n * d,
                           tasks=1.0)

    def feasible(self, stats, resources) -> bool:
        return DOUBLE * stats.n * stats.d <= 0.9 * resources.memory_bytes


class LocalTSVDCostModel(CostModel):
    name = "local-tsvd"

    def __init__(self, op: LocalTSVD):
        self.op = op

    def cost(self, stats, workers: int) -> CostProfile:
        n, d = stats.n, stats.d
        ell = self.op.k + self.op.oversample
        passes = 2 + 2 * self.op.power_iters
        flops = 2.0 * passes * n * d * ell
        return CostProfile(flops, DOUBLE * n * d, DOUBLE * n * d,
                           tasks=1.0)

    def feasible(self, stats, resources) -> bool:
        return DOUBLE * stats.n * stats.d <= 0.9 * resources.memory_bytes


class DistributedSVDCostModel(CostModel):
    name = "distributed-svd"

    def __init__(self, op: DistributedSVD):
        self.op = op

    def cost(self, stats, workers: int) -> CostProfile:
        n, d = stats.n, stats.d
        w = max(workers, 1)
        tree_depth = max(math.log2(w), 1.0) if w > 1 else 1.0
        flops = 2.0 * n * d * d / w + 10.0 * d ** 3
        network = DOUBLE * d * d * tree_depth
        return CostProfile(flops, DOUBLE * n * d / w, network, tasks=1.0)

    def feasible(self, stats, resources) -> bool:
        # Streams partitions; only the d x d Gram state must fit per node.
        return DOUBLE * stats.d ** 2 <= 0.9 * resources.memory_bytes


class DistributedTSVDCostModel(CostModel):
    name = "distributed-tsvd"

    def __init__(self, op: DistributedTSVD):
        self.op = op

    def cost(self, stats, workers: int) -> CostProfile:
        n, d = stats.n, stats.d
        w = max(workers, 1)
        tree_depth = max(math.log2(w), 1.0) if w > 1 else 1.0
        ell = self.op.k + self.op.oversample
        passes = 3 + 2 * self.op.power_iters
        flops = 4.0 * passes * n * d * ell / w
        network = DOUBLE * passes * d * ell * tree_depth
        return CostProfile(flops, DOUBLE * passes * n * d / w, network,
                           tasks=float(passes))

    def feasible(self, stats, resources) -> bool:
        # Streams partitions; only the d x ell sketch must fit per node.
        ell = self.op.k + self.op.oversample
        return DOUBLE * stats.d * ell <= 0.9 * resources.memory_bytes


class PCAEstimator(Estimator, Optimizable):
    """Logical PCA; the optimizer picks among the four implementations."""

    def __init__(self, k: int, seed: int = 0, default: str = "local-svd"):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.seed = seed
        self.default = default

    def options(self) -> Sequence[Tuple[CostModel, Estimator]]:
        local_svd = LocalSVD(self.k)
        local_tsvd = LocalTSVD(self.k, seed=self.seed)
        dist_svd = DistributedSVD(self.k)
        dist_tsvd = DistributedTSVD(self.k, seed=self.seed)
        return [
            (LocalSVDCostModel(local_svd), local_svd),
            (LocalTSVDCostModel(local_tsvd), local_tsvd),
            (DistributedSVDCostModel(dist_svd), dist_svd),
            (DistributedTSVDCostModel(dist_tsvd), dist_tsvd),
        ]

    def fit(self, data: Dataset) -> PCATransformer:
        for model, op in self.options():
            if model.name == self.default:
                return op.fit(data)
        raise ValueError(f"unknown default PCA implementation "
                         f"{self.default!r}")
