"""Random Fourier (cosine) features for kernel approximation.

Rahimi & Recht's random features approximate an RBF kernel:
``z(x) = sqrt(2/D) cos(W x + b)`` with ``W ~ N(0, gamma I)`` and uniform
phases.  The paper's TIMIT kernel-SVM pipeline gathers several random
feature blocks (``Pipeline.gather``) and solves a linear system on the
concatenation — approximating a kernel machine at scale.
"""

from __future__ import annotations

from typing import List

import numpy as np
import scipy.sparse as sp

from repro.core.operators import Estimator, Transformer
from repro.dataset.dataset import Dataset
from repro.nodes.learning._util import feature_dim


class CosineRandomFeatures(Estimator):
    """Fit draws the random projection; transformer applies it."""

    def __init__(self, num_features: int, gamma: float = 1.0, seed: int = 0):
        if num_features < 1:
            raise ValueError(
                f"num_features must be >= 1, got {num_features}")
        self.num_features = num_features
        self.gamma = gamma
        self.seed = seed

    def fit(self, data: Dataset) -> "RandomFeaturesTransformer":
        d = feature_dim(data)
        rng = np.random.default_rng(self.seed)
        w = rng.standard_normal((d, self.num_features)) * np.sqrt(self.gamma)
        b = rng.uniform(0, 2 * np.pi, size=self.num_features)
        return RandomFeaturesTransformer(w, b)


class RandomFeaturesTransformer(Transformer):
    def __init__(self, w: np.ndarray, b: np.ndarray):
        self.w = w
        self.b = b
        self.scale = np.sqrt(2.0 / w.shape[1])

    def apply(self, row) -> np.ndarray:
        if sp.issparse(row):
            projected = np.asarray(row @ self.w).ravel()
        else:
            projected = np.asarray(row, dtype=np.float64) @ self.w
        return self.scale * np.cos(projected + self.b)

    def apply_partition(self, items: List) -> List[np.ndarray]:
        if not items:
            return []
        if sp.issparse(items[0]):
            block = np.asarray((sp.vstack(items) @ self.w).todense()) \
                if sp.issparse(self.w) else np.asarray(sp.vstack(items) @ self.w)
        else:
            block = np.vstack([np.asarray(r).reshape(1, -1)
                               for r in items]) @ self.w
        out = self.scale * np.cos(block + self.b)
        return list(out)

    def columnar_kernel(self):
        from repro.core.kernels import RandomFeaturesKernel

        if sp.issparse(self.w):
            return None
        return RandomFeaturesKernel(self.w, self.b, self.scale)
