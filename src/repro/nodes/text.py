"""Text featurization operators (paper Figure 2's pipeline vocabulary).

The text path mirrors KeystoneML's Amazon Reviews pipeline: raw string ->
``Trim`` -> ``LowerCase`` -> ``Tokenizer`` -> ``NGramsFeaturizer`` ->
``TermFrequency`` -> ``CommonSparseFeatures`` (an Estimator selecting the
most frequent n-grams and mapping documents to sparse vectors).
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Callable, Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.core.operators import Estimator, ShardableEstimator, Transformer
from repro.dataset.dataset import Dataset, tree_combine


def _update_counter(a: Counter, b: Counter) -> Counter:
    """The combining step shared by serial and stat-merged DF counting."""
    a.update(b)
    return a


def _unit_weight(count: int) -> float:
    return 1.0


def unit_weighting() -> Callable[[int], float]:
    """The paper's binary-presence weighting (``x => 1``), by name.

    An inline ``lambda c: 1.0`` works, but serde marshals a captured
    lambda *with* its source location, so textually identical lambdas on
    different lines content-address differently — fits built at
    different call sites never share TermFrequency op keys.  This
    module-level function pickles by reference, giving every caller the
    one canonical weighting and therefore one key (warm retrains, sweep
    dedup, and the actor runtime's cross-fit shard cache all rely on op
    keys agreeing across builds).
    """
    return _unit_weight


class Trim(Transformer):
    """Strip leading/trailing whitespace from a document."""

    def apply(self, item: str) -> str:
        return item.strip()


class LowerCase(Transformer):
    """Lower-case a document."""

    def apply(self, item: str) -> str:
        return item.lower()


class Tokenizer(Transformer):
    """Split a document into tokens on a regular expression."""

    def __init__(self, pattern: str = r"[^a-zA-Z0-9']+"):
        self._splitter = re.compile(pattern)

    def apply(self, item: str) -> List[str]:
        return [t for t in self._splitter.split(item) if t]


class NGramsFeaturizer(Transformer):
    """Expand a token list into n-grams for n in [lo, hi].

    N-grams are joined with spaces, so downstream operators treat them as
    opaque terms.
    """

    def __init__(self, lo: int = 1, hi: int = 2):
        if not 1 <= lo <= hi:
            raise ValueError(f"require 1 <= lo <= hi, got lo={lo} hi={hi}")
        self.lo = lo
        self.hi = hi

    def apply(self, tokens: List[str]) -> List[str]:
        out: List[str] = []
        for n in range(self.lo, self.hi + 1):
            if n == 1:
                out.extend(tokens)
                continue
            for i in range(len(tokens) - n + 1):
                out.append(" ".join(tokens[i:i + n]))
        return out


class TermFrequency(Transformer):
    """Map a term list to ``{term: weight(count)}``.

    ``weighting`` maps the raw count to the stored weight; the paper's
    example uses ``x => 1`` (binary presence).
    """

    def __init__(self, weighting: Optional[Callable[[int], float]] = None):
        self.weighting = weighting or float

    def apply(self, terms: List[str]) -> Dict[str, float]:
        counts = Counter(terms)
        return {term: self.weighting(c) for term, c in counts.items()}

    def __getstate__(self):
        # The paper's canonical weighting is a lambda (``x => 1``); pack
        # it so the operator ships to worker processes and persists.
        from repro.core.serde import pack_callable

        state = self.__dict__.copy()
        state["weighting"] = pack_callable(self.weighting)
        return state

    def __setstate__(self, state):
        from repro.core.serde import unpack_callable

        state["weighting"] = unpack_callable(state["weighting"])
        self.__dict__.update(state)


class SparseFeatureVectorizer(Transformer):
    """Map ``{term: weight}`` to a 1 x d sparse row given a vocabulary."""

    def __init__(self, vocabulary: Dict[str, int]):
        self.vocabulary = vocabulary
        self.dim = len(vocabulary)

    def apply(self, term_weights: Dict[str, float]) -> sp.csr_matrix:
        cols, vals = [], []
        for term, weight in term_weights.items():
            idx = self.vocabulary.get(term)
            if idx is not None:
                cols.append(idx)
                vals.append(weight)
        rows = np.zeros(len(cols), dtype=np.int32)
        return sp.csr_matrix(
            (np.asarray(vals, dtype=np.float64),
             (rows, np.asarray(cols, dtype=np.int32))),
            shape=(1, self.dim))

    def columnar_kernel(self):
        from repro.core.kernels import SparseVectorizeKernel

        return SparseVectorizeKernel(self.vocabulary, self.dim)


class CommonSparseFeatures(Estimator, ShardableEstimator):
    """Select the ``num_features`` most frequent terms across the corpus.

    Fitting aggregates document frequencies with a combining tree (the
    aggregation the paper notes limits Amazon-pipeline scaling) and returns
    a :class:`SparseFeatureVectorizer` over the selected vocabulary.

    The per-partition document-frequency counters are exposed as
    sufficient statistics (:class:`~repro.core.operators.
    ShardableEstimator`): worker processes count shards locally and the
    parent merges with the *same* combining tree, so vocabulary order —
    and therefore predictions — stay byte-identical to the serial fit
    (``Counter.most_common`` ties break on insertion order, which the
    tree shape determines).
    """

    def __init__(self, num_features: int):
        if num_features < 1:
            raise ValueError(f"num_features must be >= 1, got {num_features}")
        self.num_features = int(num_features)

    def partition_stats(self, rows: List[Dict[str, float]]) -> Counter:
        acc = Counter()
        for term_weights in rows:
            acc.update(term_weights.keys())
        return acc

    def fit_from_stats(self, partials: List[Counter]
                       ) -> SparseFeatureVectorizer:
        counts = Counter()
        if partials:
            counts.update(tree_combine(partials, _update_counter))
        top = counts.most_common(self.num_features)
        vocabulary = {term: i for i, (term, _count) in enumerate(top)}
        return SparseFeatureVectorizer(vocabulary)

    def fit(self, data: Dataset) -> SparseFeatureVectorizer:
        return self.fit_from_stats(
            [self.partition_stats(part) for part in data.iter_partitions()])


class HashingTF(Transformer):
    """Stateless alternative to CommonSparseFeatures: feature hashing."""

    def __init__(self, num_features: int = 1 << 16):
        if num_features < 1:
            raise ValueError(f"num_features must be >= 1, got {num_features}")
        self.num_features = int(num_features)

    def apply(self, term_weights: Dict[str, float]) -> sp.csr_matrix:
        accum: Dict[int, float] = {}
        for term, weight in term_weights.items():
            idx = hash(term) % self.num_features
            accum[idx] = accum.get(idx, 0.0) + weight
        cols = np.fromiter(accum.keys(), dtype=np.int32, count=len(accum))
        vals = np.fromiter(accum.values(), dtype=np.float64, count=len(accum))
        rows = np.zeros(len(cols), dtype=np.int32)
        return sp.csr_matrix((vals, (rows, cols)),
                             shape=(1, self.num_features))


# Common English stop words (enough for featurization hygiene; the paper's
# pipelines rely on frequency cutoffs rather than curated lists).
_STOP_WORDS = frozenset("""
a an and are as at be but by for from has have in is it its of on or that
the this to was were will with not no i you he she they we him her them our
your my me so if then than too very just about over under again once only
""".split())


class StopWordRemover(Transformer):
    """Drop stop words from a token list."""

    def __init__(self, extra_words: Optional[List[str]] = None):
        self.stop_words = _STOP_WORDS | set(extra_words or ())

    def apply(self, tokens: List[str]) -> List[str]:
        return [t for t in tokens if t.lower() not in self.stop_words]


class SuffixStemmer(Transformer):
    """Light suffix-stripping stemmer (a Porter-lite).

    Strips common inflectional suffixes in priority order; enough to merge
    ``love/loves/loved/loving`` style variants in synthetic corpora.
    """

    SUFFIXES = ("ational", "iveness", "fulness", "ization", "ingly",
                "edly", "ation", "ments", "ness", "ing", "ed", "ly", "es",
                "s")

    def __init__(self, min_stem: int = 3):
        self.min_stem = min_stem

    def apply(self, tokens: List[str]) -> List[str]:
        out = []
        for token in tokens:
            for suffix in self.SUFFIXES:
                if (token.endswith(suffix)
                        and len(token) - len(suffix) >= self.min_stem):
                    token = token[:-len(suffix)]
                    break
            out.append(token)
        return out


class IDFEstimator(Estimator, ShardableEstimator):
    """Fit inverse document frequencies over ``{term: weight}`` rows.

    The fitted transformer rescales term weights by
    ``log((1 + N) / (1 + df)) + 1`` (smoothed IDF); combined with
    :class:`TermFrequency` this yields TF-IDF featurization.  Document
    counts and frequency counters are per-partition sufficient statistics
    merged in partition order.
    """

    def partition_stats(self, rows: List[Dict[str, float]]):
        count, df = 0, Counter()
        for term_weights in rows:
            count += 1
            df.update(term_weights.keys())
        return (count, df)

    def fit_from_stats(self, partials) -> "IDFTransformer":
        import math as _math

        num_docs, doc_freq = 0, Counter()
        for count, df in partials:
            num_docs += count
            doc_freq.update(df)
        idf = {term: _math.log((1 + num_docs) / (1 + df)) + 1.0
               for term, df in doc_freq.items()}
        return IDFTransformer(idf, default=_math.log(1 + num_docs) + 1.0)

    def fit(self, data: Dataset) -> "IDFTransformer":
        return self.fit_from_stats(
            [self.partition_stats(part) for part in data.iter_partitions()])


class IDFTransformer(Transformer):
    def __init__(self, idf: Dict[str, float], default: float):
        self.idf = idf
        self.default = default

    def apply(self, term_weights: Dict[str, float]) -> Dict[str, float]:
        return {term: w * self.idf.get(term, self.default)
                for term, w in term_weights.items()}
