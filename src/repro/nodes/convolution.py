"""Convolution: one logical operator, three physical strategies (paper §3).

A :class:`Convolver` applies a bank of ``b`` filters of size ``k x k x c``
to an ``n x n x c`` image, producing ``m x m x b`` with ``m = n - k + 1``
(valid cross-correlation).  Physical strategies and their paper cost models:

- ``SeparableConvolver`` — two 1-D passes per (filter, channel); only valid
  when every filter channel is (near) rank-1.  O(c b k m^2 + b k^3).
- ``BLASConvolver`` — im2col + one matrix-matrix multiply.
  O(c b k^2 m^2).
- ``FFTConvolver`` — frequency-domain products; cost independent of k.
  O(6 c b n^2 log n + 4 c b n^2).

Figure 7's crossover: BLAS wins small k, FFT wins large k, separable wins
whenever it applies.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cost.model import CostModel
from repro.cost.profile import CostProfile
from repro.core.operators import Optimizable, Transformer

DOUBLE = 8.0


def _as_image(item) -> np.ndarray:
    arr = np.asarray(item, dtype=np.float64)
    if arr.ndim == 2:
        arr = arr[:, :, None]
    if arr.ndim != 3:
        raise ValueError(f"expected an image (h, w, c), got shape {arr.shape}")
    return arr


def _check_filters(filters: np.ndarray) -> np.ndarray:
    filters = np.asarray(filters, dtype=np.float64)
    if filters.ndim == 3:
        filters = filters[:, :, :, None]
    if filters.ndim != 4 or filters.shape[1] != filters.shape[2]:
        raise ValueError("filters must have shape (b, k, k, c), got "
                         f"{filters.shape}")
    return filters


def separable_decomposition(filters: np.ndarray,
                            tol: float = 1e-6) -> Optional[Tuple[np.ndarray,
                                                                 np.ndarray]]:
    """Rank-1 factors (u, v) per (filter, channel), or None if not separable.

    Returns arrays of shape (b, c, k): ``filter[b,:,:,c] ~= outer(u, v)``.
    """
    filters = _check_filters(filters)
    b, k, _k, c = filters.shape
    us = np.zeros((b, c, k))
    vs = np.zeros((b, c, k))
    for i in range(b):
        for ch in range(c):
            mat = filters[i, :, :, ch]
            u_svd, s, vt = np.linalg.svd(mat)
            if mat.size and s[0] > 0:
                rel_residual = (np.sum(s[1:] ** 2) / np.sum(s ** 2)
                                if s.size > 1 else 0.0)
                if rel_residual > tol:
                    return None
            scale = math.sqrt(s[0]) if s[0] > 0 else 0.0
            us[i, ch] = u_svd[:, 0] * scale
            vs[i, ch] = vt[0] * scale
    return us, vs


class _BaseConvolver(Transformer):
    """Shared bookkeeping for the physical convolvers."""

    def __init__(self, filters: np.ndarray,
                 bias: Optional[np.ndarray] = None):
        self.filters = _check_filters(filters)
        self.num_filters = self.filters.shape[0]
        self.filter_size = self.filters.shape[1]
        self.bias = (np.zeros(self.num_filters) if bias is None
                     else np.asarray(bias, dtype=np.float64))

    def _finish(self, out: np.ndarray) -> np.ndarray:
        return out + self.bias


class BLASConvolver(_BaseConvolver):
    """im2col + matrix multiply; the dense-linear-algebra strategy."""

    def apply(self, item) -> np.ndarray:
        img = _as_image(item)
        h, w, c = img.shape
        k = self.filter_size
        m_h, m_w = h - k + 1, w - k + 1
        if m_h <= 0 or m_w <= 0:
            raise ValueError(f"filter size {k} exceeds image {h}x{w}")
        # (m_h, m_w, k, k, c) sliding view, flattened to (m_h*m_w, k*k*c).
        view = np.lib.stride_tricks.sliding_window_view(img, (k, k), (0, 1))
        patches = view.transpose(0, 1, 3, 4, 2).reshape(m_h * m_w, k * k * c)
        fmat = self.filters.transpose(0, 1, 2, 3).reshape(
            self.num_filters, k * k * c).T
        out = patches @ fmat
        return self._finish(out.reshape(m_h, m_w, self.num_filters))


class FFTConvolver(_BaseConvolver):
    """Frequency-domain valid cross-correlation; cost independent of k."""

    def apply(self, item) -> np.ndarray:
        img = _as_image(item)
        h, w, c = img.shape
        k = self.filter_size
        m_h, m_w = h - k + 1, w - k + 1
        if m_h <= 0 or m_w <= 0:
            raise ValueError(f"filter size {k} exceeds image {h}x{w}")
        fft_h, fft_w = h + k - 1, w + k - 1
        img_fft = np.fft.rfft2(img, s=(fft_h, fft_w), axes=(0, 1))
        out = np.empty((m_h, m_w, self.num_filters))
        # Cross-correlation == convolution with the flipped kernel.
        flipped = self.filters[:, ::-1, ::-1, :]
        for i in range(self.num_filters):
            filt_fft = np.fft.rfft2(flipped[i], s=(fft_h, fft_w), axes=(0, 1))
            prod = (img_fft * filt_fft).sum(axis=2)
            full = np.fft.irfft2(prod, s=(fft_h, fft_w))
            out[:, :, i] = full[k - 1:k - 1 + m_h, k - 1:k - 1 + m_w]
        return self._finish(out)


class SeparableConvolver(_BaseConvolver):
    """Two 1-D passes per (filter, channel); valid only for rank-1 filters."""

    def __init__(self, filters: np.ndarray,
                 bias: Optional[np.ndarray] = None, tol: float = 1e-6):
        super().__init__(filters, bias)
        decomp = separable_decomposition(self.filters, tol)
        if decomp is None:
            raise ValueError("filters are not separable (rank > 1)")
        self._us, self._vs = decomp

    def apply(self, item) -> np.ndarray:
        img = _as_image(item)
        h, w, c = img.shape
        k = self.filter_size
        m_h, m_w = h - k + 1, w - k + 1
        if m_h <= 0 or m_w <= 0:
            raise ValueError(f"filter size {k} exceeds image {h}x{w}")
        # Two 1-D valid passes per channel, vectorized over all filters:
        # rows pass contracts a (h, m_w, k) sliding view with v -> then the
        # columns pass contracts a (m_h, k, m_w) view with u.  Cost is
        # O(c b k m^2), the separable bound.
        out = np.zeros((m_h, m_w, self.num_filters))
        for ch in range(c):
            row_view = np.lib.stride_tricks.sliding_window_view(
                img[:, :, ch], k, axis=1)              # (h, m_w, k)
            rows = np.tensordot(row_view, self._vs[:, ch, :],
                                axes=([2], [1]))       # (h, m_w, b)
            col_view = np.lib.stride_tricks.sliding_window_view(
                rows, k, axis=0)                       # (m_h, m_w, b, k)
            # Contract the k axis against each filter's u, keeping the
            # filter axis aligned.
            out += np.einsum("ywbk,bk->ywb", col_view, self._us[:, ch, :])
        return self._finish(out)


# ----------------------------------------------------------------------
# Cost models
# ----------------------------------------------------------------------

class _ConvCostModel(CostModel):
    def __init__(self, op: "_BaseConvolver", image_shape: Tuple[int, int, int]):
        self.op = op
        self.image_shape = image_shape

    def _dims(self) -> Tuple[int, int, int, int, int]:
        h, w, c = self.image_shape
        k = self.op.filter_size
        b = self.op.num_filters
        m2 = max(h - k + 1, 1) * max(w - k + 1, 1)
        return h, c, k, b, m2


class SeparableCostModel(_ConvCostModel):
    name = "separable"

    def cost(self, stats, workers: int) -> CostProfile:
        _h, c, k, b, m2 = self._dims()
        per_image = 2.0 * c * b * k * m2 + b * k ** 3
        n = max(stats.n, 1)
        return CostProfile(per_image * n / max(workers, 1),
                           DOUBLE * n * m2 * b / max(workers, 1), 0.0)

    def feasible(self, stats, resources) -> bool:
        return separable_decomposition(self.op.filters) is not None


class BLASCostModel(_ConvCostModel):
    name = "blas"

    def cost(self, stats, workers: int) -> CostProfile:
        _h, c, k, b, m2 = self._dims()
        per_image = 2.0 * c * b * k * k * m2
        n = max(stats.n, 1)
        return CostProfile(per_image * n / max(workers, 1),
                           DOUBLE * n * (m2 * k * k * c) / max(workers, 1),
                           0.0)


class FFTCostModel(_ConvCostModel):
    name = "fft"

    def cost(self, stats, workers: int) -> CostProfile:
        h, c, k, b, _m2 = self._dims()
        n_img = h + k - 1
        n2 = float(n_img * n_img)
        per_image = 6.0 * c * b * n2 * math.log2(max(n_img, 2)) \
            + 4.0 * c * b * n2
        n = max(stats.n, 1)
        return CostProfile(per_image * n / max(workers, 1),
                           DOUBLE * n * n2 * b / max(workers, 1), 0.0)


class Convolver(Transformer, Optimizable):
    """Logical convolution; the optimizer picks the physical strategy.

    ``image_shape`` (h, w, c) parameterizes the cost models — image sizes
    are data-dependent but known after profiling; passing them explicitly
    keeps the cost functions pure.
    """

    def __init__(self, filters: np.ndarray,
                 image_shape: Tuple[int, int, int],
                 bias: Optional[np.ndarray] = None,
                 default: str = "blas"):
        self.filters = _check_filters(filters)
        self.image_shape = tuple(image_shape)
        self.bias = bias
        self.default = default

    def options(self) -> Sequence[Tuple[CostModel, Transformer]]:
        blas = BLASConvolver(self.filters, self.bias)
        fft = FFTConvolver(self.filters, self.bias)
        opts: List[Tuple[CostModel, Transformer]] = [
            (BLASCostModel(blas, self.image_shape), blas),
            (FFTCostModel(fft, self.image_shape), fft),
        ]
        if separable_decomposition(self.filters) is not None:
            sep = SeparableConvolver(self.filters, self.bias)
            opts.insert(0, (SeparableCostModel(sep, self.image_shape), sep))
        return opts

    def _default_impl(self) -> Transformer:
        for model, op in self.options():
            if model.name == self.default:
                return op
        raise ValueError(f"unknown default convolver {self.default!r}")

    def apply(self, item) -> np.ndarray:
        return self._default_impl().apply(item)
