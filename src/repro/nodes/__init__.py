"""KeystoneML Standard Library: the operators pipelines are built from.

Sub-modules group operators by domain:

- :mod:`repro.nodes.text` — tokenization and sparse text featurization.
- :mod:`repro.nodes.numeric` — scalers, normalizers, label encoding,
  classifiers-from-scores.
- :mod:`repro.nodes.images` — image transformers (grayscale, patches, SIFT).
- :mod:`repro.nodes.convolution` — the Convolver and its physical variants.
- :mod:`repro.nodes.learning` — estimators: linear solvers, PCA, GMM,
  K-Means, Fisher vectors, random features, logistic regression.
"""
