"""Image operators: grayscale, patches, SIFT/LCS descriptors, whitening,
rectification and pooling (paper Table 4's image-pipeline vocabulary).

Images are plain numpy arrays of shape ``(h, w, c)`` (or ``(h, w)`` for
grayscale) with float values.  Descriptor extractors return one
``(num_descriptors, dim)`` matrix per image, matching the KeystoneML
convention of per-item descriptor sets fed into PCA / GMM / FisherVector.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.operators import Estimator, Transformer
from repro.dataset.dataset import Dataset


def _as_image(item) -> np.ndarray:
    arr = np.asarray(item, dtype=np.float64)
    if arr.ndim == 2:
        arr = arr[:, :, None]
    if arr.ndim != 3:
        raise ValueError(f"expected image (h, w[, c]), got shape {arr.shape}")
    return arr


class GrayScaler(Transformer):
    """Color image -> single-channel luminance image (2-D array)."""

    WEIGHTS = np.array([0.299, 0.587, 0.114])

    def apply(self, item) -> np.ndarray:
        img = _as_image(item)
        if img.shape[2] == 1:
            return img[:, :, 0]
        w = self.WEIGHTS[:img.shape[2]]
        return img[:, :, :len(w)] @ (w / w.sum())


class PatchExtractor(Transformer):
    """Extract all ``size x size`` patches at ``stride``, flattened to rows.

    Output: ``(num_patches, size*size*c)``.
    """

    def __init__(self, size: int, stride: int = 1):
        if size < 1 or stride < 1:
            raise ValueError(f"size and stride must be >= 1, got "
                             f"size={size} stride={stride}")
        self.size = size
        self.stride = stride

    def apply(self, item) -> np.ndarray:
        img = _as_image(item)
        h, w, c = img.shape
        s = self.size
        if h < s or w < s:
            raise ValueError(f"image {h}x{w} smaller than patch size {s}")
        view = np.lib.stride_tricks.sliding_window_view(img, (s, s), (0, 1))
        view = view[::self.stride, ::self.stride]
        n_h, n_w = view.shape[0], view.shape[1]
        patches = view.transpose(0, 1, 3, 4, 2).reshape(n_h * n_w, s * s * c)
        return patches


class RandomPatchSampler(Transformer):
    """Sample ``num_patches`` random ``size x size`` patches per image."""

    def __init__(self, size: int, num_patches: int, seed: int = 0):
        self.size = size
        self.num_patches = num_patches
        self.seed = seed

    def apply(self, item) -> np.ndarray:
        img = _as_image(item)
        h, w, c = img.shape
        s = self.size
        rng = np.random.default_rng((self.seed, h, w, int(img.sum()) & 0xFFFF))
        ys = rng.integers(0, h - s + 1, size=self.num_patches)
        xs = rng.integers(0, w - s + 1, size=self.num_patches)
        out = np.empty((self.num_patches, s * s * c))
        for i, (y, x) in enumerate(zip(ys, xs)):
            out[i] = img[y:y + s, x:x + s, :].ravel()
        return out


class Windower(Transformer):
    """Split an image into non-overlapping windows (list of sub-images)."""

    def __init__(self, window: int):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window

    def apply(self, item) -> List[np.ndarray]:
        img = _as_image(item)
        h, w, _c = img.shape
        s = self.window
        out = []
        for y in range(0, h - s + 1, s):
            for x in range(0, w - s + 1, s):
                out.append(img[y:y + s, x:x + s, :])
        return out


class SIFTExtractor(Transformer):
    """Dense gradient-orientation-histogram descriptors (SIFT-like).

    Grayscale image -> ``(num_patches, 128)``: patches of ``4*cell`` pixels
    on a grid with ``stride``, each described by 4x4 cells x 8 orientation
    bins, L2-normalized and clipped at 0.2 (Lowe's normalization).

    This is the descriptor's dense-grid variant without scale-space
    detection — statistically adequate for Fisher-vector pipelines over
    synthetic data while keeping the same output geometry as the paper's
    SIFT stage.
    """

    BINS = 8
    GRID = 4  # cells per side -> GRID*GRID*BINS = 128 dims

    def __init__(self, cell: int = 4, stride: int = 8):
        if cell < 1 or stride < 1:
            raise ValueError("cell and stride must be >= 1")
        self.cell = cell
        self.stride = stride

    def apply(self, item) -> np.ndarray:
        img = np.asarray(item, dtype=np.float64)
        if img.ndim == 3:
            img = GrayScaler().apply(img)
        h, w = img.shape
        patch = self.cell * self.GRID
        if h < patch or w < patch:
            raise ValueError(f"image {h}x{w} smaller than descriptor patch "
                             f"{patch}")
        gy, gx = np.gradient(img)
        mag = np.hypot(gx, gy)
        ang = np.mod(np.arctan2(gy, gx), 2 * np.pi)
        bins = np.minimum((ang / (2 * np.pi) * self.BINS).astype(int),
                          self.BINS - 1)
        # Orientation-binned magnitude maps: (h, w, BINS)
        binned = np.zeros((h, w, self.BINS))
        ys, xs = np.indices((h, w))
        binned[ys, xs, bins] = mag

        descriptors = []
        for y in range(0, h - patch + 1, self.stride):
            for x in range(0, w - patch + 1, self.stride):
                block = binned[y:y + patch, x:x + patch]
                cells = block.reshape(self.GRID, self.cell,
                                      self.GRID, self.cell, self.BINS)
                hist = cells.sum(axis=(1, 3)).ravel()
                norm = np.linalg.norm(hist) + 1e-12
                hist = np.minimum(hist / norm, 0.2)
                hist /= (np.linalg.norm(hist) + 1e-12)
                descriptors.append(hist)
        return np.vstack(descriptors)


class LCSExtractor(Transformer):
    """Local colour statistics descriptors.

    For each grid patch: per-channel, per-subcell mean and standard
    deviation, giving ``grid^2 * c * 2`` dimensions per descriptor.
    """

    def __init__(self, patch: int = 16, grid: int = 4, stride: int = 8):
        if patch % grid:
            raise ValueError(f"patch ({patch}) must be divisible by grid "
                             f"({grid})")
        self.patch = patch
        self.grid = grid
        self.stride = stride

    def apply(self, item) -> np.ndarray:
        img = _as_image(item)
        h, w, c = img.shape
        p, gcells = self.patch, self.grid
        sub = p // gcells
        descriptors = []
        for y in range(0, h - p + 1, self.stride):
            for x in range(0, w - p + 1, self.stride):
                block = img[y:y + p, x:x + p, :]
                cells = block.reshape(gcells, sub, gcells, sub, c)
                means = cells.mean(axis=(1, 3)).ravel()
                stds = cells.std(axis=(1, 3)).ravel()
                descriptors.append(np.concatenate([means, stds]))
        return np.vstack(descriptors)


class ZCAWhitener(Estimator):
    """Fit a ZCA whitening transform on (stacked) patch rows.

    The fitted transformer maps rows x -> (x - mean) @ W with
    ``W = E (Λ + eps)^(-1/2) E^T``.
    """

    def __init__(self, eps: float = 0.1):
        self.eps = eps

    def fit(self, data: Dataset) -> "ZCAWhitenTransformer":
        # Imported here: repro.nodes.learning imports this module for the
        # filter learner, so a top-level import would be circular.
        from repro.nodes.learning._util import iter_blocks

        total, count = None, 0
        gram = None
        for block in iter_blocks(data):
            block = np.asarray(block)
            if total is None:
                total = block.sum(axis=0)
                gram = block.T @ block
            else:
                total += block.sum(axis=0)
                gram += block.T @ block
            count += block.shape[0]
        if count == 0:
            raise ValueError("ZCA input is empty")
        mean = total / count
        cov = gram / count - np.outer(mean, mean)
        eigvals, eigvecs = np.linalg.eigh(cov)
        scale = 1.0 / np.sqrt(np.maximum(eigvals, 0) + self.eps)
        w = (eigvecs * scale) @ eigvecs.T
        return ZCAWhitenTransformer(mean, w)


class ZCAWhitenTransformer(Transformer):
    def __init__(self, mean: np.ndarray, w: np.ndarray):
        self.mean = mean
        self.w = w

    def apply(self, rows) -> np.ndarray:
        arr = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        out = (arr - self.mean) @ self.w
        return out[0] if np.asarray(rows).ndim == 1 else out


class SymmetricRectifier(Transformer):
    """``x -> [max(x - alpha, 0), max(-x - alpha, 0)]`` along the last axis.

    Doubles the channel count; the standard nonlinearity in the CIFAR
    (Coates & Ng) pipeline.
    """

    def __init__(self, alpha: float = 0.0):
        self.alpha = alpha

    def apply(self, item) -> np.ndarray:
        arr = np.asarray(item, dtype=np.float64)
        pos = np.maximum(arr - self.alpha, 0.0)
        neg = np.maximum(-arr - self.alpha, 0.0)
        return np.concatenate([pos, neg], axis=-1)


class Pooler(Transformer):
    """Sum- or max-pool a feature map (m, m, b) over a grid of regions.

    Output is ``(grid, grid, b)`` flattened to ``grid^2 * b``.
    """

    def __init__(self, grid: int = 2, op: str = "sum"):
        if grid < 1:
            raise ValueError(f"grid must be >= 1, got {grid}")
        if op not in ("sum", "max", "mean"):
            raise ValueError(f"op must be sum|max|mean, got {op!r}")
        self.grid = grid
        self.op = op

    def apply(self, item) -> np.ndarray:
        fmap = np.asarray(item, dtype=np.float64)
        if fmap.ndim == 2:
            fmap = fmap[:, :, None]
        h, w, b = fmap.shape
        gsize_h = h // self.grid
        gsize_w = w // self.grid
        if gsize_h < 1 or gsize_w < 1:
            raise ValueError(f"feature map {h}x{w} too small for grid "
                             f"{self.grid}")
        out = np.empty((self.grid, self.grid, b))
        for i in range(self.grid):
            for j in range(self.grid):
                block = fmap[i * gsize_h:(i + 1) * gsize_h,
                             j * gsize_w:(j + 1) * gsize_w]
                if self.op == "sum":
                    out[i, j] = block.sum(axis=(0, 1))
                elif self.op == "max":
                    out[i, j] = block.max(axis=(0, 1))
                else:
                    out[i, j] = block.mean(axis=(0, 1))
        return out.ravel()


class CenterCrop(Transformer):
    """Crop the central ``size x size`` region of an image."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = size

    def apply(self, item) -> np.ndarray:
        img = _as_image(item)
        h, w, _c = img.shape
        s = self.size
        if h < s or w < s:
            raise ValueError(f"image {h}x{w} smaller than crop {s}")
        y = (h - s) // 2
        x = (w - s) // 2
        return img[y:y + s, x:x + s, :]


class Resizer(Transformer):
    """Nearest-neighbour resize to ``(height, width)``."""

    def __init__(self, height: int, width: int):
        if height < 1 or width < 1:
            raise ValueError("height and width must be >= 1")
        self.height = height
        self.width = width

    def apply(self, item) -> np.ndarray:
        img = _as_image(item)
        h, w, _c = img.shape
        ys = np.minimum((np.arange(self.height) * h / self.height)
                        .astype(int), h - 1)
        xs = np.minimum((np.arange(self.width) * w / self.width)
                        .astype(int), w - 1)
        return img[np.ix_(ys, xs)]


class PixelNormalizer(Transformer):
    """Normalize an image to zero mean / unit variance per image."""

    def __init__(self, eps: float = 1e-8):
        self.eps = eps

    def apply(self, item) -> np.ndarray:
        img = _as_image(item)
        return (img - img.mean()) / (img.std() + self.eps)


class HOGExtractor(Transformer):
    """Histogram-of-oriented-gradients descriptor for a whole image.

    A single global descriptor per image (``cells_y * cells_x * bins``),
    complementary to the per-patch SIFT descriptor set; useful as a cheap
    featurizer for small images.
    """

    def __init__(self, cell: int = 8, bins: int = 9):
        if cell < 1 or bins < 1:
            raise ValueError("cell and bins must be >= 1")
        self.cell = cell
        self.bins = bins

    def apply(self, item) -> np.ndarray:
        img = np.asarray(item, dtype=np.float64)
        if img.ndim == 3:
            img = GrayScaler().apply(img)
        h, w = img.shape
        cy, cx = h // self.cell, w // self.cell
        if cy < 1 or cx < 1:
            raise ValueError(f"image {h}x{w} smaller than cell {self.cell}")
        gy, gx = np.gradient(img)
        mag = np.hypot(gx, gy)
        ang = np.mod(np.arctan2(gy, gx), np.pi)  # unsigned orientation
        bin_idx = np.minimum((ang / np.pi * self.bins).astype(int),
                             self.bins - 1)
        hist = np.zeros((cy, cx, self.bins))
        hcrop = cy * self.cell
        wcrop = cx * self.cell
        for b in range(self.bins):
            weighted = np.where(bin_idx[:hcrop, :wcrop] == b,
                                mag[:hcrop, :wcrop], 0.0)
            hist[:, :, b] = weighted.reshape(
                cy, self.cell, cx, self.cell).sum(axis=(1, 3))
        out = hist.ravel()
        return out / (np.linalg.norm(out) + 1e-12)
