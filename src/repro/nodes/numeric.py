"""Numeric vector operators: scaling, normalization, labels, classifiers."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
import scipy.sparse as sp

from repro.core.operators import Estimator, ShardableEstimator, Transformer
from repro.dataset.dataset import Dataset, tree_combine


def as_dense_row(row) -> np.ndarray:
    """Coerce a (possibly sparse) row to a 1-D float array."""
    if sp.issparse(row):
        return np.asarray(row.todense()).ravel()
    return np.asarray(row, dtype=np.float64).ravel()


class Densify(Transformer):
    """Sparse row -> dense 1-D vector."""

    def apply(self, row) -> np.ndarray:
        return as_dense_row(row)

    def columnar_kernel(self):
        from repro.core.kernels import DensifyKernel

        return DensifyKernel()


class Sparsify(Transformer):
    """Dense 1-D vector -> 1 x d CSR row."""

    def apply(self, row) -> sp.csr_matrix:
        return sp.csr_matrix(np.asarray(row, dtype=np.float64).reshape(1, -1))


class Normalizer(Transformer):
    """L2-normalize each vector (or each row of a descriptor matrix)."""

    def __init__(self, eps: float = 1e-12):
        self.eps = eps

    def apply(self, row):
        if sp.issparse(row):
            norm = np.sqrt(row.multiply(row).sum())
            return row / (norm + self.eps)
        arr = np.asarray(row, dtype=np.float64)
        if arr.ndim == 2:
            norms = np.linalg.norm(arr, axis=1, keepdims=True)
            return arr / (norms + self.eps)
        return arr / (np.linalg.norm(arr) + self.eps)

    def columnar_kernel(self):
        from repro.core.kernels import NormalizerKernel

        return NormalizerKernel(self.eps)


class SignedPower(Transformer):
    """``sign(x) * |x|^p`` — the Fisher-vector power normalization."""

    def __init__(self, power: float = 0.5):
        self.power = power

    def apply(self, row):
        arr = np.asarray(row, dtype=np.float64)
        return np.sign(arr) * np.abs(arr) ** self.power

    def columnar_kernel(self):
        from repro.core.kernels import ElementwiseKernel

        return ElementwiseKernel(
            lambda X: np.sign(X) * np.abs(X) ** self.power
        )


def _add_moments(a, b):
    """Combine (count, sum, sum-of-squares) moment triples."""
    return a[0] + b[0], a[1] + b[1], a[2] + b[2]


class StandardScaler(Estimator, ShardableEstimator):
    """Fit per-column mean/std; transformer standardizes rows.

    The per-partition (count, sum, sum-of-squares) triples are exposed as
    sufficient statistics; the parent merges them with the same combining
    tree the serial fit uses, so the fitted moments are byte-identical.
    """

    def __init__(self, with_std: bool = True, eps: float = 1e-12):
        self.with_std = with_std
        self.eps = eps

    def partition_stats(self, rows):
        if not rows:
            return None
        first = as_dense_row(rows[0])
        count, total, sq = 0, np.zeros_like(first), np.zeros_like(first)
        for row in rows:
            arr = as_dense_row(row)
            count, total, sq = count + 1, total + arr, sq + arr * arr
        return count, total, sq

    def fit_from_stats(self, partials) -> "StandardScalerTransformer":
        present = [p for p in partials if p is not None]
        if not present:
            raise ValueError("StandardScaler input is empty")
        zeros = np.zeros_like(present[0][1])
        full = [(0, zeros, zeros) if p is None else p for p in partials]
        count, total, sq = _add_moments(
            (0, zeros, zeros), tree_combine(full, _add_moments))
        mean = total / count
        var = np.maximum(sq / count - mean * mean, 0.0)
        std = np.sqrt(var) if self.with_std else np.ones_like(mean)
        return StandardScalerTransformer(mean, std + self.eps)

    def fit(self, data: Dataset) -> "StandardScalerTransformer":
        return self.fit_from_stats(
            [self.partition_stats(part) for part in data.iter_partitions()])


class StandardScalerTransformer(Transformer):
    def __init__(self, mean: np.ndarray, std: np.ndarray):
        self.mean = mean
        self.std = std

    def apply(self, row) -> np.ndarray:
        return (as_dense_row(row) - self.mean) / self.std

    def columnar_kernel(self):
        from repro.core.kernels import ElementwiseKernel

        return ElementwiseKernel(lambda X: (X - self.mean) / self.std)


class ColumnSampler(Transformer):
    """Subsample rows of a per-item descriptor matrix.

    Image featurizers emit one descriptor matrix per image; downstream
    estimators (PCA, GMM) train on a sample of descriptors.  Deterministic
    per-item via hashing the matrix shape and a seed.
    """

    def __init__(self, num_samples: int, seed: int = 0):
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        self.num_samples = num_samples
        self.seed = seed

    def apply(self, descriptors: np.ndarray) -> np.ndarray:
        arr = np.asarray(descriptors)
        if arr.ndim != 2:
            raise ValueError(f"expected a 2-D descriptor matrix, got shape "
                             f"{arr.shape}")
        n = arr.shape[0]
        if n <= self.num_samples:
            return arr
        rng = np.random.default_rng((self.seed, n, arr.shape[1]))
        idx = rng.choice(n, size=self.num_samples, replace=False)
        return arr[np.sort(idx)]


class VectorCombiner(Transformer):
    """Concatenate a gathered list of vectors into one (after ``gather``)."""

    def apply(self, vectors: Sequence) -> np.ndarray:
        return np.concatenate([as_dense_row(v) for v in vectors])


class Flatten(Transformer):
    """Flatten any array-valued item to a 1-D vector."""

    def apply(self, item) -> np.ndarray:
        if sp.issparse(item):
            return np.asarray(item.todense()).ravel()
        return np.asarray(item, dtype=np.float64).ravel()


class ClassLabelIndicator(Transformer):
    """Integer class id -> one-hot (+1 / -1) indicator vector.

    The +/-1 encoding is what least-squares classification solvers expect.
    """

    def __init__(self, num_classes: int, negative: float = -1.0):
        if num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {num_classes}")
        self.num_classes = num_classes
        self.negative = negative

    def apply(self, label: int) -> np.ndarray:
        vec = np.full(self.num_classes, self.negative)
        vec[int(label)] = 1.0
        return vec


class MaxClassifier(Transformer):
    """Score vector -> argmax class id."""

    def apply(self, scores) -> int:
        return int(np.argmax(as_dense_row(scores)))

    def columnar_kernel(self):
        from repro.core.kernels import MaxClassKernel

        return MaxClassKernel()


class TopKClassifier(Transformer):
    """Score vector -> ids of the top-k classes (descending score)."""

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k

    def apply(self, scores) -> List[int]:
        arr = as_dense_row(scores)
        k = min(self.k, arr.size)
        idx = np.argpartition(-arr, k - 1)[:k]
        return [int(i) for i in idx[np.argsort(-arr[idx])]]


class Cacher(Transformer):
    """Identity marker node: a hint that its output is worth caching.

    KeystoneML exposes explicit caching hints; the automatic materializer
    usually makes them unnecessary, but the node is kept for parity.
    """

    def apply(self, item):
        return item


class MinMaxScaler(Estimator):
    """Fit per-column min/max; transformer rescales rows into [0, 1]."""

    def __init__(self, eps: float = 1e-12):
        self.eps = eps

    def fit(self, data: Dataset) -> "MinMaxScalerTransformer":
        def seq(acc, row):
            arr = as_dense_row(row)
            if acc is None:
                return [arr.copy(), arr.copy()]
            np.minimum(acc[0], arr, out=acc[0])
            np.maximum(acc[1], arr, out=acc[1])
            return acc

        def comb(a, b):
            if a is None:
                return b
            if b is None:
                return a
            return [np.minimum(a[0], b[0]), np.maximum(a[1], b[1])]

        result = data.aggregate(None, seq, comb)
        if result is None:
            raise ValueError("MinMaxScaler input is empty")
        lo, hi = result
        return MinMaxScalerTransformer(lo, np.maximum(hi - lo, self.eps))


class MinMaxScalerTransformer(Transformer):
    def __init__(self, lo: np.ndarray, span: np.ndarray):
        self.lo = lo
        self.span = span

    def apply(self, row) -> np.ndarray:
        return (as_dense_row(row) - self.lo) / self.span

    def columnar_kernel(self):
        from repro.core.kernels import ElementwiseKernel

        return ElementwiseKernel(lambda X: (X - self.lo) / self.span)


class InterceptAdder(Transformer):
    """Append a constant 1.0 feature (bias term) to each vector row."""

    def apply(self, row):
        if sp.issparse(row):
            one = sp.csr_matrix(np.ones((1, 1)))
            return sp.hstack([row, one]).tocsr()
        arr = np.asarray(row, dtype=np.float64).ravel()
        return np.concatenate([arr, [1.0]])

    def columnar_kernel(self):
        from repro.core.kernels import InterceptKernel

        return InterceptKernel()


class FeatureSelector(Transformer):
    """Keep only the given column indices of each vector row."""

    def __init__(self, indices):
        self.indices = np.asarray(indices, dtype=np.int64)
        if self.indices.size == 0:
            raise ValueError("FeatureSelector requires at least one index")

    def apply(self, row):
        if sp.issparse(row):
            return row.tocsr()[:, self.indices]
        return np.asarray(row, dtype=np.float64).ravel()[self.indices]

    def columnar_kernel(self):
        from repro.core.kernels import FeatureSelectorKernel

        return FeatureSelectorKernel(self.indices)


class ClipTransformer(Transformer):
    """Clamp vector entries into [lo, hi]."""

    def __init__(self, lo: float = -1.0, hi: float = 1.0):
        if lo > hi:
            raise ValueError(f"lo ({lo}) must be <= hi ({hi})")
        self.lo = lo
        self.hi = hi

    def apply(self, row) -> np.ndarray:
        return np.clip(as_dense_row(row), self.lo, self.hi)

    def columnar_kernel(self):
        from repro.core.kernels import ElementwiseKernel

        return ElementwiseKernel(lambda X: np.clip(X, self.lo, self.hi))
