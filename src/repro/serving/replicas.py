"""Multi-process serving replicas: compiled plans in persistent workers.

One `ModelServer` process tops out at whatever a single GIL allows; the
paper's serving story ("heavy traffic from millions of users") needs the
server itself to shard.  This module reuses the actor-pool runtime from
training — :class:`~repro.runtime.pool.ActorPool` with a serving-specific
worker entry point — so the serving tier inherits the pool's whole fault
story for free: death detection, bounded respawn, setup replay, and a
single in-flight retry.

The division of labour:

- **Replica workers** (:func:`replica_main`) hold compiled
  :class:`~repro.serving.compiler.InferencePlan`\\ s keyed by *slot* (the
  server uses ``"name:version"``) and execute micro-batches through the
  vectorized ``run_batch`` path.  Plans arrive as pickled
  :class:`~repro.core.program.OpProgram` blobs — the same
  process-independent IR the training backends ship to shard workers.
- **The parent** (:class:`ReplicaSet`) load-balances batches over free
  replicas through :meth:`~repro.runtime.pool.ActorPool.call` (per-actor
  locking, so batches overlap across replicas) and keeps the
  content-addressed serving cache *parent-side*: op content keys are
  process-independent by construction, so a result computed on any
  replica answers fleet-wide repeats through the server's pre-queue
  ``cached_result`` fast path.

Model loads are registered as pool *setup* messages: a respawned replica
replays every load before the failed batch retries, so replica death
mid-request recovers without dropping responses — the property
``tests/test_serving.py`` kills a replica to prove.

The message protocol (request/reply over one pipe per replica):

- ``("load", task_id, blob, slot)`` — unpickle an ``OpProgram``, compile
  the serving view, store it under ``slot``.
- ``("batch", task_id, slot, items)`` — run the micro-batch; reply
  carries the result rows plus ``{"batch": n}`` meta.
- ``("unload", task_id, slot)`` — drop a retired version's plan.
- ``("shutdown",)`` — exit.

Replies are ``("ok", task_id, result, meta)`` or ``("err", task_id,
exception)``, matching the training worker protocol so the pool's
collect/recover path applies unchanged.
"""

from __future__ import annotations

import itertools
import pickle
import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.runtime.pool import ActorPool, _Msg


def replica_main(conn, state_budget_bytes: int = 0) -> None:
    """Entry point of one serving replica process (spawn-safe).

    ``state_budget_bytes`` is accepted for signature compatibility with
    the pool's spawn arguments; replica memory is bounded by the loaded
    plans, not a shard cache.
    """
    # Imports happen inside the worker so a spawn start method pays them
    # once per process, after the interpreter is up.
    from repro.serving.compiler import InferencePlan

    plans: Dict[Any, InferencePlan] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, KeyboardInterrupt, OSError):
            break
        kind = msg[0]
        if kind == "shutdown":
            break
        task_id = msg[1]
        try:
            if kind == "load":
                _, _, blob, slot = msg
                program = pickle.loads(blob)
                plans[slot] = InferencePlan(program)
                result: Any = {"ops": len(program.ops)}
                meta: Dict[str, Any] = {}
            elif kind == "batch":
                _, _, slot, items = msg
                plan = plans.get(slot)
                if plan is None:
                    raise KeyError(f"replica has no plan loaded under slot {slot!r}")
                result = plan.run_batch(items)
                meta = {"batch": len(items)}
            elif kind == "unload":
                _, _, slot = msg
                result = plans.pop(slot, None) is not None
                meta = {}
            else:
                raise ValueError(f"unknown replica message kind {kind!r}")
            conn.send(("ok", task_id, result, meta))
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            try:
                conn.send(("err", task_id, exc))
            except Exception:
                conn.send(
                    ("err", task_id, RuntimeError(f"{type(exc).__name__}: {exc}"))
                )


class ReplicaSet:
    """A fixed fleet of replica processes serving compiled plans.

    Thin serving facade over an :class:`~repro.runtime.pool.ActorPool`
    running :func:`replica_main`.  :meth:`run_batch` picks a *free*
    replica (a blocking free-index queue: least-loaded scheduling with
    natural concurrency equal to the fleet size) and issues the batch as
    a single pool call; callers from multiple dispatch threads overlap
    across replicas.  :meth:`load` broadcasts a model to every replica
    as a replayed setup message, which is what makes respawn transparent.
    """

    def __init__(
        self,
        replicas: int,
        *,
        start_method: str = "spawn",
        task_timeout: Optional[float] = None,
        max_restarts: int = 2,
        name: str = "serving",
    ):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self.pool = ActorPool(
            replicas,
            start_method=start_method,
            task_timeout=task_timeout,
            max_restarts=max_restarts,
            main=replica_main,
            name=f"repro-replica-{name}",
        )
        self._free: "queue.Queue[int]" = queue.Queue()
        for index in range(replicas):
            self._free.put(index)
        self._ids = itertools.count(1)
        self._loads: Dict[Any, Callable] = {}
        self._lock = threading.Lock()
        self.batches = 0
        self.batched_items = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Model lifecycle
    # ------------------------------------------------------------------
    def load(self, slot: Any, program) -> None:
        """Ship a compiled ``OpProgram`` to every replica under ``slot``.

        Pickled once, broadcast to the fleet, and registered for setup
        replay so respawned replicas reload it before retrying work.
        """
        blob = pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)

        def builder(actor) -> _Msg:
            return _Msg(("load", next(self._ids), blob, slot))

        with self._lock:
            stale = self._loads.pop(slot, None)
        if stale is not None:
            # Re-registering a slot: the old load must not be replayed
            # over the new one after a respawn.
            for actor in self.pool.actors:
                with actor.lock:
                    actor.setup = [b for b in actor.setup if b is not stale]
        for index in range(self.replicas):
            self.pool.call(index, builder, setup=True)
        with self._lock:
            self._loads[slot] = builder

    def unload(self, slot: Any) -> None:
        """Drop a retired version fleet-wide and stop replaying its load."""
        with self._lock:
            builder = self._loads.pop(slot, None)
        if builder is not None:
            for actor in self.pool.actors:
                with actor.lock:
                    actor.setup = [b for b in actor.setup if b is not builder]

        def unload_builder(actor) -> _Msg:
            return _Msg(("unload", next(self._ids), slot))

        for index in range(self.replicas):
            try:
                self.pool.call(index, unload_builder)
            except Exception:
                pass  # hygiene only; a dead replica reloads nothing anyway

    @property
    def slots(self) -> List[Any]:
        with self._lock:
            return list(self._loads)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def run_batch(self, slot: Any, items: Sequence[Any]) -> List[Any]:
        """Run one micro-batch on the next free replica.

        Blocks while the whole fleet is busy — upstream of this sits the
        batcher's bounded queue, which is where overload turns into
        explicit backpressure instead of unbounded waiting.
        """
        payload = list(items)

        def builder(actor) -> _Msg:
            return _Msg(("batch", next(self._ids), slot, payload))

        index = self._free.get()
        try:
            result, _meta = self.pool.call(index, builder)
        finally:
            self._free.put(index)
        with self._lock:
            self.batches += 1
            self.batched_items += len(payload)
        return result

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def restarts(self) -> int:
        return self.pool.counters["restarts"]

    def stats(self) -> Dict[str, float]:
        with self._lock:
            batches, items = self.batches, self.batched_items
        return {
            "replicas": float(self.replicas),
            "replica_batches": float(batches),
            "replica_items": float(items),
            "replica_restarts": float(self.restarts),
        }

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.pool.shutdown()

    def __repr__(self) -> str:
        return (
            f"ReplicaSet(replicas={self.replicas}, "
            f"slots={len(self._loads)}, batches={self.batches})"
        )
