"""InferencePlan: the executable serving view over a lowered OpProgram.

The training-time hot path walks the inference DAG recursively, building a
fresh closure and memo dict per request
(:func:`repro.core.backends.base.recursive_apply_item`).  That is fine for
occasional scoring but wrong for serving: at thousands of requests per
second the per-request graph walk is pure overhead, and the recursive
shape hides the batch-vectorization opportunity.

:func:`compile_inference_plan` lowers the fitted DAG once through
:func:`repro.core.program.lower_inference_program` — the same
:class:`~repro.core.program.OpProgram` IR the process backend ships to
its shard workers — applies any lowering passes the optimizer registered
(:class:`~repro.core.passes.LoweringPass`), and wraps the result in an
:class:`InferencePlan`.  The lowering preserves every optimizer decision
already baked into the DAG: stages fused by
:class:`~repro.core.passes.FusionPass` arrive as a single
:class:`~repro.core.fusion.FusedTransformer` node and stay one op, and
sub-DAGs merged by CSE occupy one slot, so they are evaluated once per
request without a memo dict.

Two execution modes:

- :meth:`InferencePlan.run_item` — one request, per-item ``op.apply``;
  byte-identical to the recursive walk (same ops, same order, same
  item-level numerics).
- :meth:`InferencePlan.run_batch` — a micro-batch, vectorized through
  ``op.apply_partition`` exactly like the existing
  ``FittedPipeline.apply_dataset`` path (a micro-batch is one partition).
  With ``vectorize=True`` (the serving default), ``VectorizePass``
  additionally groups kernel-capable op runs into
  :class:`~repro.core.kernels.KernelStage` slots whose columnar batch
  path is **byte-identical** to ``fitted.apply`` per item — raw score
  vectors included, so served pipelines no longer need to end in a
  classification head.  Without it, operators with BLAS-batched
  partitions (``LinearMapper``, ``RandomFeaturesTransformer``) may
  differ from the per-item path in the last float ulp — the historical
  ``apply_dataset`` caveat.

Both modes consult an attached :class:`~repro.serving.cache.ServingCache`
when one is configured.  Cache entries are addressed by ``(op key, input
fingerprint)`` — the op key being the content-addressed structural
fingerprint each :class:`~repro.core.program.Op` carries — so two model
versions sharing a featurization prefix share entries.  ``run_item``
short-circuits at the deepest cached node on the path to the sink,
``run_batch`` inserts the outputs of cache-marked ops for every item of
the flush.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import graph as g
from repro.core.program import (
    GATHER,
    INPUT,
    TRANSFORM,
    Op,
    OpProgram,
    VectorizePass,
    lower_inference_program,
    run_program_passes,
)
from repro.dataset.sizing import estimate_size

#: compiled ops are plain program ops; the historical name is kept for
#: the serving-facing API surface
InferenceOp = Op


class InferencePlan:
    """A compiled, reusable inference program for one fitted pipeline.

    A thin executable view over an :class:`~repro.core.program.OpProgram`
    (build with :func:`compile_inference_plan`); plans are immutable
    except for the optional serving cache attached via
    :meth:`attach_cache`.  Thread-safe: execution state lives on the
    stack of each call.
    """

    def __init__(self, program: OpProgram):
        self.program = program
        self.ops = program.ops
        self.input_slot = program.input_slot
        self.sink_slot = program.sink_slot
        self.cache = None  # Optional[ServingCache], attached by the server
        self._cached_slots: Tuple[int, ...] = ()
        self._cached_slot_set: frozenset = frozenset()
        #: per-request seconds / output bytes per slot (see profile_ops)
        self.op_seconds: Dict[int, float] = {}
        self.op_bytes: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ops)

    def key_of(self, node_id: int) -> str:
        """Content-addressed key of the op lowered from ``node_id``."""
        return self.program.key_of(node_id)

    @property
    def cached_slots(self) -> Tuple[int, ...]:
        """Slots the attached serving cache memoizes (empty without one)."""
        return self._cached_slots

    def describe(self) -> str:
        lines = [f"InferencePlan({len(self.ops)} ops)"]
        for op in self.ops:
            mark = " [cached]" if op.slot in self._cached_slot_set else ""
            parents = ",".join(str(p) for p in op.parents)
            lines.append(f"  %{op.slot} = {op.kind}({op.label})"
                         f" <- [{parents}]{mark}")
            # Which original ops a KernelStage folded (vectorize=True).
            for member in getattr(op.op, "member_labels", ()):
                lines.append(f"      fold {member}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serving cache
    # ------------------------------------------------------------------
    def attach_cache(self, cache) -> None:
        """Attach a ServingCache; its op keys select the memoized slots."""
        if any(op.kind != INPUT and not op.key for op in self.ops):
            raise ValueError(
                "this plan was compiled without content keys "
                "(compute_keys=False); recompile with "
                "compile_inference_plan(fitted) to attach a serving cache")
        self.cache = cache
        keys = cache.keys
        self._cached_slots = tuple(
            op.slot for op in self.ops
            if op.kind != INPUT and op.key in keys)
        self._cached_slot_set = frozenset(self._cached_slots)

    def cached_result(self, fp: bytes) -> Tuple[bool, Any]:
        """Fast path: is the *sink* output cached for this fingerprint?

        Returns ``(hit, value)``; used by the server to answer repeats
        without paying the batching queue.  Counts one hit/miss — a
        caller forwarding the miss into ``run_item``/``run_batch``
        should pass ``sink_probed=True`` so the request is not counted
        twice.
        """
        cache = self.cache
        if cache is None or self.sink_slot not in self._cached_slot_set:
            return False, None
        return cache.lookup(self.ops[self.sink_slot].key, fp)

    # ------------------------------------------------------------------
    # Execution: single item
    # ------------------------------------------------------------------
    def run_item(self, item: Any, fp: Optional[bytes] = None,
                 sink_probed: bool = False) -> Any:
        """Apply the program to one item (per-item ``op.apply`` numerics).

        ``sink_probed`` means the caller already counted a sink lookup
        for this request (the server's pre-queue fast path), so the
        backward pass re-probes it without hit/miss accounting.
        """
        cache = self.cache
        ops = self.ops
        slots: List[Any] = [None] * len(ops)
        if cache is None:
            for op in ops:
                kind = op.kind
                if kind == TRANSFORM:
                    slots[op.slot] = op.op.apply(slots[op.parents[0]])
                elif kind == GATHER:
                    slots[op.slot] = [slots[p] for p in op.parents]
                else:
                    slots[op.slot] = item
            return slots[self.sink_slot]

        from repro.serving.cache import fingerprint

        if fp is None:
            fp = fingerprint(item)
        cached = self._cached_slot_set
        n = len(ops)
        needed = [False] * n
        have = [False] * n
        needed[self.sink_slot] = True
        # Backward pass: a cache hit satisfies its consumers, so nothing
        # upstream of the deepest hit is computed.
        for i in range(n - 1, -1, -1):
            if not needed[i]:
                continue
            op = ops[i]
            if i in cached:
                hit, value = cache.lookup(
                    op.key, fp,
                    count=not (sink_probed and i == self.sink_slot))
                if hit:
                    slots[i] = value
                    have[i] = True
                    continue
            for p in op.parents:
                needed[p] = True
        for i in range(n):
            if not needed[i] or have[i]:
                continue
            op = ops[i]
            value = _compute_item_op(op, slots, item)
            slots[i] = value
            if i in cached:
                cache.put(op.key, fp, value)
        return slots[self.sink_slot]

    # ------------------------------------------------------------------
    # Execution: micro-batch
    # ------------------------------------------------------------------
    def run_batch(self, items: Sequence[Any],
                  fps: Optional[Sequence[bytes]] = None,
                  sink_probed: bool = False) -> List[Any]:
        """Apply the program to a micro-batch, one partition per op.

        Vectorizes through ``op.apply_partition`` — the same numerics as
        ``FittedPipeline.apply_dataset`` on a single partition.  When a
        serving cache is attached and fingerprints are supplied, each
        item individually resumes from its deepest cached ancestor (the
        per-item partial reuse of :meth:`run_item`, batched: every op
        runs once over exactly the sub-batch of items that still need
        it) and the outputs of cache-marked ops are inserted.
        """
        if self.cache is None or fps is None or not self._cached_slots:
            slots: List[Any] = [None] * len(self.ops)
            for op in self.ops:
                kind = op.kind
                if kind == TRANSFORM:
                    # Copy the parent row list: apply_partition may
                    # consume or mutate it, and a CSE-shared slot can
                    # have more readers.
                    value = op.op.apply_partition(
                        list(slots[op.parents[0]]))
                elif kind == GATHER:
                    value = g.zip_rows([slots[p] for p in op.parents])
                else:
                    value = list(items)
                slots[op.slot] = value
            return slots[self.sink_slot]
        return self._run_batch_cached(items, fps, sink_probed)

    def _run_batch_cached(self, items: Sequence[Any],
                          fps: Sequence[bytes],
                          sink_probed: bool = False) -> List[Any]:
        cache = self.cache
        ops = self.ops
        n_ops, n = len(ops), len(items)
        cached = self._cached_slot_set
        values = [[None] * n for _ in range(n_ops)]
        needed = [[False] * n for _ in range(n_ops)]
        have = [[False] * n for _ in range(n_ops)]
        # Per-item backward pass, exactly run_item's: a cache hit
        # satisfies this item's consumers, so nothing upstream of the
        # deepest hit is computed for it.
        for i in range(n):
            fp = fps[i]
            needed[self.sink_slot][i] = True
            for s in range(n_ops - 1, -1, -1):
                if not needed[s][i]:
                    continue
                op = ops[s]
                if s in cached:
                    hit, value = cache.lookup(
                        op.key, fp,
                        count=not (sink_probed and s == self.sink_slot))
                    if hit:
                        values[s][i] = value
                        have[s][i] = True
                        continue
                for p in op.parents:
                    needed[p][i] = True
        for s in range(n_ops):
            op = ops[s]
            idx = [i for i in range(n)
                   if needed[s][i] and not have[s][i]]
            if not idx:
                continue
            if op.kind == TRANSFORM:
                parent = values[op.parents[0]]
                sub = op.op.apply_partition([parent[i] for i in idx])
            elif op.kind == GATHER:
                sub = [[values[p][i] for p in op.parents] for i in idx]
            else:
                sub = [items[i] for i in idx]
            row = values[s]
            for i, value in zip(idx, sub):
                row[i] = value
            if s in cached:
                for i, value in zip(idx, sub):
                    cache.put(op.key, fps[i], value)
        sink = values[self.sink_slot]
        return list(sink)

    # ------------------------------------------------------------------
    # Micro-profiling (drives the serving-cache selection)
    # ------------------------------------------------------------------
    def profile_ops(self, sample_items: Sequence[Any]) -> None:
        """Measure per-request seconds and output bytes for every op.

        Runs the warmup items one by one through the per-item path,
        timing each op and sizing its output — the serving analogue of
        the optimizer's sample profiling, feeding the cost-model cache
        selection in :mod:`repro.serving.cache`.
        """
        if not sample_items:
            raise ValueError("profile_ops needs at least one sample item")
        seconds = {op.slot: 0.0 for op in self.ops}
        sizes = {op.slot: 0.0 for op in self.ops}
        for item in sample_items:
            slots: List[Any] = [None] * len(self.ops)
            for op in self.ops:
                start = time.perf_counter()
                value = _compute_item_op(op, slots, item)
                seconds[op.slot] += time.perf_counter() - start
                sizes[op.slot] += float(estimate_size(value))
                slots[op.slot] = value
        n = len(sample_items)
        self.op_seconds = {slot: s / n for slot, s in seconds.items()}
        self.op_bytes = {slot: b / n for slot, b in sizes.items()}


def _compute_item_op(op: Op, slots: List[Any], item: Any) -> Any:
    """Evaluate one op for one item (the per-item dispatch rule)."""
    kind = op.kind
    if kind == TRANSFORM:
        return op.op.apply(slots[op.parents[0]])
    if kind == GATHER:
        return [slots[p] for p in op.parents]
    return item


def compile_inference_plan(
    fitted, compute_keys: bool = True, vectorize: bool = False,
    vectorize_boundaries: Sequence[str] = (),
) -> InferencePlan:
    """Lower a :class:`~repro.core.pipeline.FittedPipeline` to a flat plan.

    The DAG is lowered once through the shared
    :class:`~repro.core.program.OpProgram` IR (every reachable node
    becomes one content-addressed op reading parent values from earlier
    slots), any lowering passes the optimizer registered on the pipeline
    are applied, and the program is wrapped in the serving execution
    view.  Only inference-legal node kinds are accepted (transformers,
    gathers and the pipeline-input placeholder — estimators were
    consumed at fit time).  ``compute_keys=False`` skips hashing
    operator state into content keys — the plain ``apply`` path uses it
    (no serving cache will read the keys); ``ModelServer.register``
    compiles with keys.

    ``vectorize=True`` appends
    :class:`~repro.core.program.VectorizePass` to the registered passes
    (unless one is already registered): runs of kernel-capable ops
    collapse into :class:`~repro.core.kernels.KernelStage` slots whose
    batched execution is byte-identical to ``fitted.apply`` per item —
    ``ModelServer.register`` passes this by default.
    ``vectorize_boundaries`` (content keys) pins ops that must survive
    as addressable slots — the server passes its serving-cache selection
    so cache-marked intermediates still materialize after the rewrite.
    """
    program = lower_inference_program(fitted, compute_keys=compute_keys)
    passes = list(getattr(fitted, "program_passes", None) or ())
    if vectorize and not any(isinstance(p, VectorizePass) for p in passes):
        passes.append(VectorizePass(boundaries=vectorize_boundaries))
    program = run_program_passes(program, passes)
    return InferencePlan(program)
