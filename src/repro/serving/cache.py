"""Latency-aware serving cache: the paper's cache selection, re-aimed.

Training-time materialization (paper Section 4.3) asks "which intermediates
are worth RAM, given how often the DAG re-reads them?".  Serving asks the
same question across *requests*: a production stream repeats inputs
(trending items, hot queries, retried calls), so memoizing the right
intermediate answers repeats without recomputing the pipeline.

:func:`choose_serving_cache_set` reuses the optimizer's machinery
verbatim: per-op costs and sizes measured by
:meth:`~repro.serving.compiler.InferencePlan.profile_ops` become a
:class:`~repro.core.profiler.PipelineProfile` over the inference DAG, and
:class:`~repro.core.materialization.MaterializationProblem` — with
``sink_requests`` set to the expected request count per distinct input —
feeds the same greedy Algorithm 1 that picks training cache sets.  A node
is selected when memoizing it (one execution per distinct input instead of
one per request) buys more modelled time than its bytes cost under the
budget.

At runtime :class:`ServingCache` holds the selected ops' outputs keyed by
``(op key, input fingerprint)`` in a byte-budgeted
:class:`~repro.dataset.cache.CacheManager` with plain LRU eviction — the
budgeted-eviction machinery the dataset layer already ships.  The op key
is the **content-addressed** structural fingerprint each lowered
:class:`~repro.core.program.Op` carries (operator state folded with its
input keys), not a per-DAG node id: two registered versions of a model
that share a featurization prefix produce equal keys for the prefix ops,
so one :class:`ServingCache` shared across the versions of a registry
entry answers version B's requests from intermediates version A computed.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Iterable, Set, Tuple

from repro.core.program import feed_basic
from repro.dataset.cache import CacheManager, LRUPolicy
from repro.dataset.sizing import estimate_size


# ----------------------------------------------------------------------
# Input fingerprints
# ----------------------------------------------------------------------

def fingerprint(item: Any) -> bytes:
    """Stable content digest of a request item (cache key half).

    Covers the request types the pipelines consume: strings, bytes,
    numbers, numpy arrays, scipy sparse rows, and (nested) sequences.
    Type and shape are folded in, so ``b"1"``, ``1`` and ``np.int64(1)``
    do not collide.  Unknown types raise ``TypeError`` — hashing
    ``repr()`` would fold in memory addresses, and an address reused
    after garbage collection would alias two different requests to one
    cache entry (a silent wrong answer); disable the serving cache to
    serve opaque item types.
    """
    h = hashlib.blake2b(digest_size=16)
    _feed(h, item)
    return h.digest()


def _feed(h, item: Any, memo=None) -> None:
    # The value grammar is shared with the op-key fingerprints of the
    # lowered IR (one injective hashing grammar, maintained once); only
    # the fallback differs — request items must be *refused*, since an
    # identity-ish hash of an opaque request could alias two different
    # requests to one cache entry after address reuse.
    if not feed_basic(h, item, memo, _feed):
        raise TypeError(
            f"cannot fingerprint a {type(item).__name__}: supported "
            "request types are str, bytes, numbers, numpy arrays, scipy "
            "sparse rows, and (nested) lists/tuples/dicts of those; "
            "disable the serving cache (cache_budget_bytes=0) for "
            "opaque item types")


# ----------------------------------------------------------------------
# Runtime cache
# ----------------------------------------------------------------------

class ServingCache:
    """Cross-request, cross-version memo of selected ops, LRU-budgeted.

    ``keys`` is the selected cache set: the content-addressed op keys
    (see :mod:`repro.core.program`) worth memoizing.  ``budget_bytes``
    bounds the total bytes retained across all entries.  One instance
    may back several compiled plans — the model-version sharing story —
    and each registration extends the selected set via :meth:`add_keys`.
    Values are stored by reference — pipeline outputs are treated as
    immutable, the same contract batch inference already relies on.
    Thread-safe via the underlying :class:`CacheManager` (plus a small
    lock over the mutable key set).
    """

    def __init__(self, budget_bytes: float, keys: Iterable[str] = ()):
        if budget_bytes <= 0:
            raise ValueError(
                f"budget_bytes must be > 0, got {budget_bytes}")
        self.manager = CacheManager(budget_bytes, LRUPolicy())
        self._keys = set(keys)
        self._keys_lock = threading.Lock()

    @property
    def keys(self) -> frozenset:
        """The selected op keys (snapshot)."""
        with self._keys_lock:
            return frozenset(self._keys)

    def add_keys(self, keys: Iterable[str]) -> None:
        """Extend the selected set (a later model version's selection).

        Already-attached plans keep their marked slots; re-attach a plan
        (:meth:`InferencePlan.attach_cache`) to pick up additions.
        """
        with self._keys_lock:
            self._keys.update(keys)

    def lookup(self, key: str, fp: bytes,
               count: bool = True) -> Tuple[bool, Any]:
        """Return ``(hit, value)`` for ``(op key, input fingerprint)``.

        ``count=False`` performs the lookup without hit/miss accounting
        — for re-probes of a key the caller already counted once for
        this request (e.g. the server's pre-queue sink check followed by
        the batch path's backward pass).
        """
        entry = (key, fp)
        boxed = self.manager.get(entry) if count else self.manager.peek(entry)
        if boxed is None:
            return False, None
        return True, boxed[0]

    def put(self, key: str, fp: bytes, value: Any) -> bool:
        # Boxed so legitimately-falsy outputs round-trip unambiguously.
        return self.manager.put((key, fp), [value],
                                estimate_size(value))

    @property
    def hits(self) -> int:
        return self.manager.hits

    @property
    def misses(self) -> int:
        return self.manager.misses

    @property
    def hit_rate(self) -> float:
        return self.manager.hit_rate

    @property
    def used_bytes(self) -> int:
        return self.manager.used

    @property
    def budget_bytes(self) -> float:
        return self.manager.budget

    def __len__(self) -> int:
        return len(self.manager)

    def fill_registry(self, registry=None, prefix: str = "serving.cache"):
        """Export cache health gauges into a
        :class:`~repro.obs.metrics.MetricsRegistry` (created when
        omitted)."""
        from repro.obs.metrics import MetricsRegistry

        if registry is None:
            registry = MetricsRegistry()
        head = f"{prefix}." if prefix else ""
        registry.set(f"{head}hits", float(self.hits))
        registry.set(f"{head}misses", float(self.misses))
        registry.set(f"{head}hit_rate", self.hit_rate)
        registry.set(f"{head}entries", float(len(self)))
        registry.set(f"{head}used_bytes", float(self.used_bytes))
        registry.set(f"{head}budget_bytes", float(self.budget_bytes))
        registry.set(f"{head}keys", float(len(self.keys)))
        return registry

    def __repr__(self) -> str:
        return (f"ServingCache(keys={len(self.keys)}, "
                f"entries={len(self)}, used={self.used_bytes}, "
                f"hit_rate={self.hit_rate:.2f})")


# ----------------------------------------------------------------------
# Cost-model cache-set selection
# ----------------------------------------------------------------------

def choose_serving_cache_set(fitted, plan, budget_bytes: float,
                             expected_reuse: float = 4.0) -> Set[int]:
    """Pick the inference nodes worth memoizing under the byte budget.

    ``plan`` must carry an op micro-profile
    (:meth:`InferencePlan.profile_ops`); ``expected_reuse`` is the
    modelled number of requests per distinct input (the serving analogue
    of the materialization weight).  Returns node ids of the fitted DAG.
    """
    from repro.core import graph as g
    from repro.core.materialization import (
        MaterializationProblem,
        greedy_cache_set,
    )
    from repro.core.profiler import NodeProfile, PipelineProfile

    if not plan.op_seconds:
        raise ValueError("inference plan is unprofiled: call "
                         "plan.profile_ops(sample_items) first")
    if expected_reuse <= 1.0:
        return set()

    slot_of = {op.node_id: op.slot for op in plan.ops}
    profile = PipelineProfile()
    for node in g.ancestors([fitted.sink]):
        # A lowering pass (ProgramPass) may have removed this node's op
        # from the compiled plan; a zero-cost entry keeps the problem
        # well-formed and the greedy selection never picks it (caching
        # nothing buys nothing).
        slot = slot_of.get(node.id)
        profile.nodes[node.id] = NodeProfile(
            node=node,
            t_seconds=plan.op_seconds.get(slot, 0.0) if slot is not None
            else 0.0,
            size_bytes=plan.op_bytes.get(slot, 0.0) if slot is not None
            else 0.0,
            stats=None,
            weight=1)
    problem = MaterializationProblem([fitted.sink], profile,
                                     sink_requests=expected_reuse)
    return greedy_cache_set(problem, budget_bytes)
