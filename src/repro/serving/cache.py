"""Latency-aware serving cache: the paper's cache selection, re-aimed.

Training-time materialization (paper Section 4.3) asks "which intermediates
are worth RAM, given how often the DAG re-reads them?".  Serving asks the
same question across *requests*: a production stream repeats inputs
(trending items, hot queries, retried calls), so memoizing the right
intermediate answers repeats without recomputing the pipeline.

:func:`choose_serving_cache_set` reuses the optimizer's machinery
verbatim: per-op costs and sizes measured by
:meth:`~repro.serving.compiler.InferencePlan.profile_ops` become a
:class:`~repro.core.profiler.PipelineProfile` over the inference DAG, and
:class:`~repro.core.materialization.MaterializationProblem` — with
``sink_requests`` set to the expected request count per distinct input —
feeds the same greedy Algorithm 1 that picks training cache sets.  A node
is selected when memoizing it (one execution per distinct input instead of
one per request) buys more modelled time than its bytes cost under the
budget.

At runtime :class:`ServingCache` holds the selected nodes' outputs keyed
by ``(node_id, input fingerprint)`` in a byte-budgeted
:class:`~repro.dataset.cache.CacheManager` with plain LRU eviction — the
budgeted-eviction machinery the dataset layer already ships.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, Set, Tuple

import numpy as np

from repro.dataset.cache import CacheManager, LRUPolicy
from repro.dataset.sizing import estimate_size

try:
    import scipy.sparse as sp
except ImportError:  # pragma: no cover - scipy is a hard dep elsewhere
    sp = None


# ----------------------------------------------------------------------
# Input fingerprints
# ----------------------------------------------------------------------

def fingerprint(item: Any) -> bytes:
    """Stable content digest of a request item (cache key half).

    Covers the request types the pipelines consume: strings, bytes,
    numbers, numpy arrays, scipy sparse rows, and (nested) sequences.
    Type and shape are folded in, so ``b"1"``, ``1`` and ``np.int64(1)``
    do not collide.  Unknown types raise ``TypeError`` — hashing
    ``repr()`` would fold in memory addresses, and an address reused
    after garbage collection would alias two different requests to one
    cache entry (a silent wrong answer); disable the serving cache to
    serve opaque item types.
    """
    h = hashlib.blake2b(digest_size=16)
    _feed(h, item)
    return h.digest()


def _feed(h, item: Any) -> None:
    if isinstance(item, str):
        h.update(b"s")
        h.update(item.encode("utf-8", "surrogatepass"))
    elif isinstance(item, bytes):
        h.update(b"b")
        h.update(item)
    elif isinstance(item, np.ndarray):
        h.update(b"a")
        h.update(str(item.dtype).encode())
        h.update(repr(item.shape).encode())
        h.update(np.ascontiguousarray(item).tobytes())
    elif sp is not None and sp.issparse(item):
        csr = item.tocsr()
        h.update(b"p")
        h.update(repr(csr.shape).encode())
        h.update(np.ascontiguousarray(csr.indptr).tobytes())
        h.update(np.ascontiguousarray(csr.indices).tobytes())
        h.update(np.ascontiguousarray(csr.data).tobytes())
    elif isinstance(item, (int, float, complex, bool, type(None))):
        h.update(b"n")
        h.update(repr(item).encode())
    elif isinstance(item, (list, tuple)):
        h.update(b"l" if isinstance(item, list) else b"t")
        h.update(str(len(item)).encode())
        for x in item:
            h.update(b"\x00")
            _feed(h, x)
    elif isinstance(item, dict):
        h.update(b"d")
        for k in sorted(item, key=repr):
            h.update(b"\x00")
            _feed(h, k)
            h.update(b"\x01")
            _feed(h, item[k])
    elif isinstance(item, np.generic):
        h.update(b"g")
        h.update(str(item.dtype).encode())
        h.update(item.tobytes())
    else:
        raise TypeError(
            f"cannot fingerprint a {type(item).__name__}: supported "
            "request types are str, bytes, numbers, numpy arrays, scipy "
            "sparse rows, and (nested) lists/tuples/dicts of those; "
            "disable the serving cache (cache_budget_bytes=0) for "
            "opaque item types")


# ----------------------------------------------------------------------
# Runtime cache
# ----------------------------------------------------------------------

class ServingCache:
    """Cross-request memo of selected inference nodes, LRU under a budget.

    ``node_ids`` is the selected cache set (which ops to memoize);
    ``budget_bytes`` bounds the total bytes retained across all entries.
    Values are stored by reference — pipeline outputs are treated as
    immutable, the same contract batch inference already relies on.
    Thread-safe via the underlying :class:`CacheManager`.
    """

    def __init__(self, budget_bytes: float, node_ids: Iterable[int]):
        if budget_bytes <= 0:
            raise ValueError(
                f"budget_bytes must be > 0, got {budget_bytes}")
        self.manager = CacheManager(budget_bytes, LRUPolicy())
        self.node_ids = frozenset(node_ids)

    def lookup(self, node_id: int, fp: bytes,
               count: bool = True) -> Tuple[bool, Any]:
        """Return ``(hit, value)``.

        ``count=False`` performs the lookup without hit/miss accounting
        — for re-probes of a key the caller already counted once for
        this request (e.g. the server's pre-queue sink check followed by
        the batch path's backward pass).
        """
        key = (node_id, fp)
        boxed = self.manager.get(key) if count else self.manager.peek(key)
        if boxed is None:
            return False, None
        return True, boxed[0]

    def put(self, node_id: int, fp: bytes, value: Any) -> bool:
        # Boxed so legitimately-falsy outputs round-trip unambiguously.
        return self.manager.put((node_id, fp), [value],
                                estimate_size(value))

    @property
    def hits(self) -> int:
        return self.manager.hits

    @property
    def misses(self) -> int:
        return self.manager.misses

    @property
    def hit_rate(self) -> float:
        return self.manager.hit_rate

    @property
    def used_bytes(self) -> int:
        return self.manager.used

    @property
    def budget_bytes(self) -> float:
        return self.manager.budget

    def __len__(self) -> int:
        return len(self.manager)

    def __repr__(self) -> str:
        return (f"ServingCache(nodes={len(self.node_ids)}, "
                f"entries={len(self)}, used={self.used_bytes}, "
                f"hit_rate={self.hit_rate:.2f})")


# ----------------------------------------------------------------------
# Cost-model cache-set selection
# ----------------------------------------------------------------------

def choose_serving_cache_set(fitted, plan, budget_bytes: float,
                             expected_reuse: float = 4.0) -> Set[int]:
    """Pick the inference nodes worth memoizing under the byte budget.

    ``plan`` must carry an op micro-profile
    (:meth:`InferencePlan.profile_ops`); ``expected_reuse`` is the
    modelled number of requests per distinct input (the serving analogue
    of the materialization weight).  Returns node ids of the fitted DAG.
    """
    from repro.core import graph as g
    from repro.core.materialization import (
        MaterializationProblem,
        greedy_cache_set,
    )
    from repro.core.profiler import NodeProfile, PipelineProfile

    if not plan.op_seconds:
        raise ValueError("inference plan is unprofiled: call "
                         "plan.profile_ops(sample_items) first")
    if expected_reuse <= 1.0:
        return set()

    slot_of = {op.node_id: op.slot for op in plan.ops}
    profile = PipelineProfile()
    for node in g.ancestors([fitted.sink]):
        slot = slot_of[node.id]
        profile.nodes[node.id] = NodeProfile(
            node=node,
            t_seconds=plan.op_seconds.get(slot, 0.0),
            size_bytes=plan.op_bytes.get(slot, 0.0),
            stats=None,
            weight=1)
    problem = MaterializationProblem([fitted.sink], profile,
                                     sink_requests=expected_reuse)
    return greedy_cache_set(problem, budget_bytes)
