"""ModelServer: online inference over compiled plans.

The server owns a registry of named models with explicit versions.  Each
registered version is compiled once (:mod:`repro.serving.compiler`),
optionally warmed (op micro-profile + cost-model cache selection), and
given its own micro-batcher — so :meth:`deploy` is a *warm swap*: the new
version is already compiled and serving-ready before the default-version
pointer moves, and in-flight requests against the old version drain
unaffected.

Request path (:meth:`submit` / :meth:`predict`):

1. resolve the model version (default or pinned),
2. fingerprint the item when a serving cache is configured; a cached
   sink output answers immediately without touching the queue,
3. otherwise enqueue into the version's micro-batcher (or, with
   ``micro_batching=False``, run the compiled per-item path inline),
4. a completion callback records end-to-end latency and errors, and
   feeds the SLO controller when one is configured.

Three scale-out layers are opt-in on top of this path:

- ``replicas=N`` runs the compiled plans in N persistent worker
  *processes* (:mod:`repro.serving.replicas`): batches collected by each
  version's micro-batcher dispatch to free replicas, the serving cache
  stays parent-side (content keys are process-independent, so any
  replica's work answers fleet-wide repeats), and replica death recovers
  through the actor pool's bounded respawn with model-load replay.
- ``slo_target_p99_ms=X`` attaches an
  :class:`~repro.serving.batcher.SLOController` per registered version:
  batch limit and flush delay become a feedback loop on observed tail
  latency instead of static knobs.
- ``shed_watermarks={priority: queue fraction}`` degrades low-priority
  traffic (:class:`~repro.serving.batcher.RequestShedError`) before the
  queue fills for everyone; ``submit``/``predict`` take ``priority=``.

:meth:`stats` snapshots the whole fleet — per-model p50/p95/p99 latency,
throughput, queue depth, batch-size distribution, cache hit rate, shed
counts, replica health, and the controller's effective limits.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.program import INPUT
from repro.obs import trace as obs_trace
from repro.serving.batcher import (
    NORMAL,
    MicroBatcher,
    ServerOverloadedError,
    SLOController,
)
from repro.serving.cache import (
    ServingCache,
    choose_serving_cache_set,
    fingerprint,
)
from repro.serving.compiler import InferencePlan, compile_inference_plan
from repro.serving.metrics import (
    LatencyRecorder,
    ModelStats,
    ServerStats,
    percentiles_ms,
)


class ServedModel:
    """One registered (name, version): compiled plan + batcher + metrics."""

    def __init__(self, name: str, version: str, fitted,
                 plan: InferencePlan, batcher: Optional[MicroBatcher],
                 cache: Optional[ServingCache],
                 controller: Optional[SLOController] = None,
                 replica_set=None):
        self.name = name
        self.version = version
        self.fitted = fitted
        self.plan = plan
        self.batcher = batcher
        self.cache = cache
        self.controller = controller
        #: the server-owned ReplicaSet executing this version's batches
        #: (None when serving in-process)
        self.replica_set = replica_set
        self.latency = LatencyRecorder()

    @property
    def key(self) -> str:
        return f"{self.name}@{self.version}"

    def stats(self) -> ModelStats:
        p50, p95, p99 = percentiles_ms(self.latency)
        out = ModelStats(
            name=self.name, version=self.version,
            requests=self.latency.count, errors=self.latency.errors,
            throughput_rps=self.latency.throughput_rps,
            mean_ms=self.latency.mean_seconds * 1000.0,
            p50_ms=p50, p95_ms=p95, p99_ms=p99,
            plan_ops=len(self.plan),
            cached_nodes=len(self.plan.cached_slots))
        if self.batcher is not None:
            out.queue_depth = self.batcher.queue_depth
            out.batches = self.batcher.batches
            out.mean_batch_size = self.batcher.mean_batch_size
            out.max_batch_size = self.batcher.max_batch_seen
            out.shed_requests = self.batcher.shed_requests
        if self.controller is not None:
            snap = self.controller.snapshot()
            out.slo_target_p99_ms = snap["target_p99_ms"]
            out.effective_batch = snap["batch_limit"]
            out.effective_delay_ms = snap["delay_ms"]
            out.slo_adjustments = int(snap["adjustments"])
            out.slo_pressure_events = int(snap["pressure_events"])
        if self.replica_set is not None:
            out.replicas = self.replica_set.replicas
            out.replica_batches = self.replica_set.batches
            out.replica_restarts = self.replica_set.restarts
        if self.cache is not None:
            out.cache_hits = self.cache.hits
            out.cache_misses = self.cache.misses
            out.cache_hit_rate = self.cache.hit_rate
            out.cache_entries = len(self.cache)
            out.cache_used_bytes = self.cache.used_bytes
        return out


class ModelServer:
    """Multi-model online serving with micro-batching and a serving cache.

    Construction knobs (overridable per :meth:`register` call):

    - ``max_batch`` / ``max_delay_ms`` / ``max_queue`` — the dynamic
      micro-batching policy and the bounded-queue backpressure limit.
    - ``cache_budget_bytes`` — per-model serving-cache budget; 0 disables
      the cache.  With warmup items the cached ops are selected by the
      optimizer's greedy cost model (see :mod:`repro.serving.cache`);
      without warmup every op is cache-marked and the budgeted LRU
      decides what stays.  All versions registered under one name share
      one content-addressed cache (created with the first cache-enabled
      registration's budget), so versions sharing a featurization prefix
      share the prefix's entries — and the cache hit/miss counters.
    - ``expected_reuse`` — modelled requests per distinct input, the
      serving analogue of the materialization weight.
    - ``micro_batching`` — with ``False``, requests run inline on the
      per-item compiled path (byte-identical to ``FittedPipeline.apply``
      for every pipeline, including raw-score outputs).
    - ``replicas`` — 0 serves in-process (the default); N >= 1 executes
      every version's batches on a fleet of N persistent worker
      processes (requires ``micro_batching``); the processes spawn
      lazily at the first ``register()``.
    - ``slo_target_p99_ms`` — attach a per-version
      :class:`~repro.serving.batcher.SLOController` steering the
      effective batch limit and flush delay toward this p99 target
      (``max_batch``/``max_delay_ms`` stay hard bounds).
    - ``shed_watermarks`` — priority-tier load shedding map
      ``{priority: queue fraction}``; see :mod:`repro.serving.batcher`.
    - ``batch_concurrency`` — dispatch threads per version's batcher;
      defaults to ``replicas`` (overlapping batches across the fleet)
      or 1 in-process.
    - ``vectorize`` — compile registered plans through
      :class:`~repro.core.program.VectorizePass` (the default): runs of
      kernel-capable ops execute each micro-batch as columnar numpy
      kernels, byte-identical to ``fitted.apply`` per item (raw score
      vectors included).  ``False`` keeps the per-op interpreter;
      overridable per :meth:`register` call.
    """

    def __init__(self, max_batch: int = 32, max_delay_ms: float = 2.0,
                 max_queue: int = 1024, cache_budget_bytes: float = 0.0,
                 expected_reuse: float = 4.0, micro_batching: bool = True,
                 replicas: int = 0,
                 slo_target_p99_ms: Optional[float] = None,
                 shed_watermarks: Optional[Mapping[int, float]] = None,
                 batch_concurrency: Optional[int] = None,
                 replica_start_method: str = "spawn",
                 vectorize: bool = True):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if cache_budget_bytes < 0:
            raise ValueError("cache_budget_bytes must be >= 0, got "
                             f"{cache_budget_bytes}")
        if replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {replicas}")
        if replicas and not micro_batching:
            raise ValueError(
                "replicas require micro_batching=True: the replica tier "
                "executes micro-batches, there is no inline replica path")
        self.max_batch = max_batch
        self.max_delay_ms = max_delay_ms
        self.max_queue = max_queue
        self.cache_budget_bytes = cache_budget_bytes
        self.expected_reuse = expected_reuse
        self.micro_batching = micro_batching
        self.replicas = replicas
        self.slo_target_p99_ms = slo_target_p99_ms
        self.shed_watermarks = (dict(shed_watermarks)
                                if shed_watermarks else None)
        self.batch_concurrency = batch_concurrency
        self.replica_start_method = replica_start_method
        self.vectorize = vectorize
        self._replica_set = None  # lazy: spawned at first register()
        self._lock = threading.RLock()
        self._versions: Dict[str, Dict[str, ServedModel]] = {}
        self._default_version: Dict[str, str] = {}
        #: one content-addressed cache per model *name*, shared by all of
        #: its registered versions (the cross-version prefix reuse)
        self._caches: Dict[str, ServingCache] = {}
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(self, name: str, fitted, version: str = "v1",
                 warmup_items: Optional[Sequence[Any]] = None,
                 cache_budget_bytes: Optional[float] = None,
                 expected_reuse: Optional[float] = None,
                 deploy: Optional[bool] = None,
                 vectorize: Optional[bool] = None) -> ServedModel:
        """Compile and (optionally) warm a model version for serving.

        The first version registered under ``name`` becomes the default;
        later versions stay warm but undeployed until :meth:`deploy`
        (or ``deploy=True``) moves the pointer.  ``vectorize`` overrides
        the server-wide kernel-lowering default for this version;
        replicas inherit the rewritten program automatically (the
        pickled ``OpProgram`` carries the kernel stages).
        """
        budget = (self.cache_budget_bytes if cache_budget_bytes is None
                  else cache_budget_bytes)
        reuse = (self.expected_reuse if expected_reuse is None
                 else expected_reuse)
        vectorized = self.vectorize if vectorize is None else vectorize
        plan = compile_inference_plan(
            fitted, vectorize=vectorized and budget <= 0)

        node_ids = set()
        if budget > 0:
            # Select the cache set on the interpreter plan: the cost
            # model ranks *individual* ops, and the selection must see
            # every intermediate before any folding hides it.
            if warmup_items:
                plan.profile_ops(warmup_items)
                node_ids = choose_serving_cache_set(
                    fitted, plan, budget, expected_reuse=reuse)
            else:
                # No measurements to rank ops: mark everything and let
                # the budgeted LRU keep what earns its bytes.
                node_ids = {op.node_id for op in plan.ops
                            if op.kind != INPUT}
            if vectorized:
                # Re-lower with every cache-marked op pinned as a stage
                # boundary: a marked op may end a kernel stage (the
                # stage output is its value, under its key) but never
                # disappears into one — so the cache, including prefix
                # entries shared with sibling versions, keeps its read
                # and write points after the rewrite.
                plan = compile_inference_plan(
                    fitted, vectorize=True,
                    vectorize_boundaries={plan.key_of(nid)
                                          for nid in node_ids})

        replica_set = None
        if self.replicas:
            replica_set = self._ensure_replicas()
            slot = f"{name}:{version}"
            # Ship the lowered, process-independent program to the fleet
            # (registered as a setup message: respawned replicas reload
            # every model before retrying work).
            replica_set.load(slot, plan.program)

        batcher = None
        if self.micro_batching:
            if replica_set is not None:
                def run(payloads: List[Any], _plan=plan, _slot=slot,
                        _fleet=replica_set) -> List[Any]:
                    items = [item for item, _fp in payloads]
                    results = _fleet.run_batch(_slot, items)
                    # The serving cache lives parent-side; insert sink
                    # outputs so any replica's work answers fleet-wide
                    # repeats through the pre-queue fast path.
                    cache = _plan.cache
                    if (cache is not None
                            and _plan.sink_slot in _plan.cached_slots):
                        sink_key = _plan.ops[_plan.sink_slot].key
                        for (_item, fp), value in zip(payloads, results):
                            if fp is not None:
                                cache.put(sink_key, fp, value)
                    return results
            else:
                def run(payloads: List[Any], _plan=plan) -> List[Any]:
                    items = [item for item, _fp in payloads]
                    fps = ([fp for _item, fp in payloads]
                           if _plan.cache is not None else None)
                    # submit() already counted each payload's sink probe.
                    return _plan.run_batch(items, fps, sink_probed=True)

            controller = None
            if self.slo_target_p99_ms is not None:
                controller = SLOController(
                    self.slo_target_p99_ms,
                    max_batch=self.max_batch,
                    max_delay_ms=self.max_delay_ms)
            concurrency = self.batch_concurrency
            if concurrency is None:
                concurrency = self.replicas if self.replicas else 1
            batcher = MicroBatcher(
                run, max_batch=self.max_batch,
                max_delay_ms=self.max_delay_ms, max_queue=self.max_queue,
                name=f"{name}@{version}",
                controller=controller,
                shed_watermarks=self.shed_watermarks,
                concurrency=concurrency)

        model = ServedModel(name, version, fitted, plan, batcher, None,
                            controller=(batcher.controller
                                        if batcher is not None else None),
                            replica_set=replica_set)
        # One critical section covers the sibling scan, the cache attach
        # and the registry insertion: two concurrent register() calls for
        # one name must see each other, or the shared featurization
        # prefix would never be cross-marked.
        with self._lock:
            if budget > 0:
                # A lowering pass may have rewritten the compiled plan:
                # only surviving ops have addressable keys.
                known = plan.program.node_ids
                keys = {plan.key_of(nid) for nid in node_ids
                        if nid in known}
                # Ops whose content keys also appear in a sibling
                # version's plan are shared work (the featurization
                # prefix): they have cross-version reuse the
                # single-version cost model cannot see, so mark them in
                # the shared cache regardless of the greedy selection.
                siblings = [m for m in self._versions.get(name, {}).values()
                            if m.version != version and m.cache is not None]
                if siblings:
                    own = {op.key for op in plan.ops
                           if op.kind != INPUT}
                    for sibling in siblings:
                        keys |= own & {op.key for op in sibling.plan.ops}
                if keys:
                    # Versions of one name share one content-addressed
                    # cache: equal op keys answer across versions;
                    # version-specific ops never collide.
                    cache = self._caches.get(name)
                    if cache is None:
                        cache = ServingCache(budget, keys)
                        self._caches[name] = cache
                    else:
                        cache.add_keys(keys)
                    # Siblings re-attach so newly shared keys are marked
                    # on their compiled plans too.
                    for sibling in siblings:
                        if sibling.cache is cache:
                            sibling.plan.attach_cache(cache)
                    plan.attach_cache(cache)
                    model.cache = cache
            versions = self._versions.setdefault(name, {})
            displaced = versions.get(version)
            versions[version] = model
            make_default = (deploy if deploy is not None
                            else name not in self._default_version)
            if make_default:
                self._default_version[name] = version
            if self._started and batcher is not None:
                batcher.start()
        if displaced is not None and displaced.batcher is not None:
            # Re-registering a live (name, version) must not leak the old
            # worker thread; its queued requests drain first.
            displaced.batcher.stop()
        return model

    def _ensure_replicas(self):
        """Spawn the server-owned replica fleet on first use."""
        with self._lock:
            if self._replica_set is None:
                from repro.serving.replicas import ReplicaSet

                self._replica_set = ReplicaSet(
                    self.replicas,
                    start_method=self.replica_start_method)
            return self._replica_set

    def deploy(self, name: str, version: str) -> ServedModel:
        """Warm-swap the default version of ``name`` (already compiled)."""
        with self._lock:
            model = self._resolve(name, version)
            self._default_version[name] = version
            return model

    def models(self) -> List[str]:
        with self._lock:
            return sorted(self._versions)

    def versions(self, name: str) -> List[str]:
        with self._lock:
            if name not in self._versions:
                raise KeyError(f"no model registered under {name!r}")
            return sorted(self._versions[name])

    def default_version(self, name: str) -> str:
        with self._lock:
            if name not in self._default_version:
                raise KeyError(f"no model registered under {name!r}")
            return self._default_version[name]

    def _resolve(self, name: str,
                 version: Optional[str] = None) -> ServedModel:
        with self._lock:
            if name not in self._versions:
                raise KeyError(
                    f"no model registered under {name!r}; registered: "
                    f"{sorted(self._versions)}")
            version = version or self._default_version.get(name)
            if version is None:
                raise KeyError(
                    f"model {name!r} has no deployed version (all were "
                    f"registered with deploy=False); deploy() one of "
                    f"{sorted(self._versions[name])}")
            try:
                return self._versions[name][version]
            except KeyError:
                raise KeyError(
                    f"model {name!r} has no version {version!r}; "
                    f"registered: {sorted(self._versions[name])}") from None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ModelServer":
        with self._lock:
            self._started = True
            self._stopped = False
            for versions in self._versions.values():
                for model in versions.values():
                    if model.batcher is not None:
                        model.batcher.start()
        return self

    def stop(self, drain: bool = True) -> None:
        with self._lock:
            self._started = False
            self._stopped = True
            batchers = [model.batcher
                        for versions in self._versions.values()
                        for model in versions.values()
                        if model.batcher is not None]
        for batcher in batchers:
            batcher.stop(drain=drain)

    def close(self) -> None:
        """Stop serving and shut the replica fleet down (terminal).

        :meth:`stop` keeps the server restartable (its batchers respawn
        on :meth:`start`); ``close`` additionally terminates the replica
        processes, so a replica server should always be closed when
        done.  Idempotent; in-process servers just stop.
        """
        self.stop()
        with self._lock:
            fleet, self._replica_set = self._replica_set, None
        if fleet is not None:
            fleet.shutdown()

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        if self.replicas:
            self.close()
        else:
            self.stop()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def submit(self, name: str, item: Any,
               version: Optional[str] = None,
               priority: int = NORMAL) -> Future:
        """Enqueue one request; returns a Future of the prediction.

        ``priority`` (smaller = more important; see
        :data:`repro.serving.batcher.HIGH` / ``NORMAL`` / ``LOW``) only
        matters when the server was built with ``shed_watermarks``:
        above a tier's queue watermark its requests raise
        :class:`~repro.serving.batcher.RequestShedError` instead of
        queuing — cache hits and inline execution are never shed.
        """
        if self._stopped:
            # Checked before the cache fast path too: a stopped server
            # must not keep answering hits while rejecting misses.
            raise ServerOverloadedError(
                "server is stopped; call start() to serve again")
        model = self._resolve(name, version)
        start = time.perf_counter()
        fp = None
        if model.cache is not None:
            fp = fingerprint(item)
            hit, value = model.plan.cached_result(fp)
            if hit:
                fut: Future = Future()
                fut.set_result(value)
                model.latency.record(time.perf_counter() - start)
                obs_trace.event(
                    "serve.cache_hit", cat="cache",
                    key=model.plan.ops[model.plan.sink_slot].key or None,
                    args={"model": model.key})
                return fut
        if model.batcher is None:
            fut = Future()
            with obs_trace.span("serve.request", cat="serving",
                                args={"model": model.key}):
                try:
                    fut.set_result(model.plan.run_item(
                        item, fp=fp, sink_probed=fp is not None))
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    fut.set_exception(exc)
            model.latency.record(time.perf_counter() - start,
                                 error=fut.exception() is not None)
            return fut
        if not model.batcher.running:
            # Late start() on a never-started server is forgiven (an
            # unstarted batcher would park the request forever), but a
            # stopped server must reject, not resurrect its workers.
            with self._lock:
                if self._stopped:
                    raise ServerOverloadedError(
                        "server is stopped; call start() to serve again")
                model.batcher.start()
        fut = model.batcher.submit((item, fp), priority=priority)

        def _record(f: Future, _start=start, _model=model):
            seconds = time.perf_counter() - _start
            _model.latency.record(seconds,
                                  error=(not f.cancelled()
                                         and f.exception() is not None))
            if _model.controller is not None and not f.cancelled():
                # The feedback signal: end-to-end latency plus the queue
                # depth left behind, observed once per completed request.
                _model.controller.observe(
                    seconds, _model.batcher.queue_depth)

        fut.add_done_callback(_record)
        return fut

    def predict(self, name: str, item: Any, version: Optional[str] = None,
                timeout: Optional[float] = 60.0,
                priority: int = NORMAL) -> Any:
        """Synchronous single prediction (submit + wait)."""
        return self.submit(name, item, version=version,
                           priority=priority).result(timeout)

    def predict_many(self, name: str, items: Sequence[Any],
                     version: Optional[str] = None,
                     timeout: Optional[float] = 60.0,
                     priority: int = NORMAL) -> List[Any]:
        """Open-loop convenience: submit all items, then gather."""
        futures = [self.submit(name, item, version=version,
                               priority=priority)
                   for item in items]
        return [fut.result(timeout) for fut in futures]

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def stats(self, name: Optional[str] = None,
              version: Optional[str] = None) -> ServerStats:
        """Snapshot serving metrics for one model or the whole fleet."""
        with self._lock:
            if name is not None:
                models = [self._resolve(name, version)]
            else:
                models = [model for versions in self._versions.values()
                          for model in versions.values()]
        return ServerStats(models={m.key: m.stats() for m in models})

    def __repr__(self) -> str:
        with self._lock:
            n = sum(len(v) for v in self._versions.values())
        return (f"ModelServer(models={n}, max_batch={self.max_batch}, "
                f"max_delay_ms={self.max_delay_ms}, "
                f"micro_batching={self.micro_batching})")


__all__ = ["ModelServer", "ServedModel", "ServerOverloadedError"]
