"""Serving metrics: latency percentiles, throughput, queue/cache health.

Every served request is timed from submission to completion; the recorder
keeps a bounded reservoir of recent latencies (enough for stable tail
percentiles) plus exact counts and totals — backed by the shared
:class:`repro.obs.metrics.Histogram` ring buffer, so a long-lived server
holds constant memory per model version no matter how many requests it
serves.  :class:`ModelStats` is the per-model snapshot assembled by
:meth:`ModelServer.stats`; :class:`ServerStats` aggregates the fleet,
renders the report, and fills a
:class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional

from repro.obs.metrics import Histogram, MetricsRegistry


class LatencyRecorder:
    """Thread-safe latency accumulator with bounded-reservoir percentiles.

    The distribution lives in an :class:`repro.obs.metrics.Histogram`
    (fixed-size ring buffer of recent samples; exact count and total kept
    separately), exposed as :attr:`histogram` for registry export.
    """

    def __init__(self, window: int = 8192):
        self._lock = threading.Lock()
        self.histogram = Histogram("latency_seconds", window=window)
        self.errors = 0
        self.first_at: Optional[float] = None
        self.last_at: Optional[float] = None

    def record(self, seconds: float, error: bool = False) -> None:
        now = time.perf_counter()
        self.histogram.observe(seconds)
        with self._lock:
            if error:
                self.errors += 1
            if self.first_at is None:
                self.first_at = now - seconds
            self.last_at = now

    def percentile(self, q: float) -> float:
        """Latency at quantile ``q`` in [0, 1] over the recent window
        (nearest-rank: the smallest value covering a ``q`` fraction)."""
        return self.histogram.percentile(q)

    @property
    def count(self) -> int:
        return self.histogram.count

    @property
    def total_seconds(self) -> float:
        return self.histogram.total

    @property
    def mean_seconds(self) -> float:
        return self.histogram.mean

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second over the observed span."""
        if self.count < 2 or self.first_at is None or self.last_at is None:
            return 0.0
        span = self.last_at - self.first_at
        return self.count / span if span > 0 else 0.0


@dataclass
class ModelStats:
    """One model version's serving counters at a point in time."""

    name: str
    version: str
    requests: int = 0
    errors: int = 0
    throughput_rps: float = 0.0
    mean_ms: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    queue_depth: int = 0
    batches: int = 0
    mean_batch_size: float = 0.0
    max_batch_size: int = 0
    shed_requests: int = 0
    replicas: int = 0
    replica_batches: int = 0
    replica_restarts: int = 0
    slo_target_p99_ms: float = 0.0
    effective_batch: float = 0.0
    effective_delay_ms: float = 0.0
    slo_adjustments: int = 0
    slo_pressure_events: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit_rate: float = 0.0
    cache_entries: int = 0
    cache_used_bytes: int = 0
    plan_ops: int = 0
    cached_nodes: int = 0

    def describe(self) -> str:
        lines = [
            f"{self.name}@{self.version}: {self.requests} requests "
            f"({self.errors} errors), {self.throughput_rps:.0f} req/s",
            f"  latency ms: mean {self.mean_ms:.2f}  p50 {self.p50_ms:.2f}"
            f"  p95 {self.p95_ms:.2f}  p99 {self.p99_ms:.2f}",
            f"  plan: {self.plan_ops} ops, {self.cached_nodes} cache-marked",
            f"  queue depth {self.queue_depth}; {self.batches} batches, "
            f"mean size {self.mean_batch_size:.1f}, "
            f"max {self.max_batch_size}",
        ]
        if self.shed_requests:
            lines.append(f"  shed: {self.shed_requests} requests "
                         f"(priority watermarks)")
        if self.replicas:
            lines.append(
                f"  replicas: {self.replicas} processes, "
                f"{self.replica_batches} batches, "
                f"{self.replica_restarts} restarts")
        if self.slo_target_p99_ms:
            lines.append(
                f"  slo: target p99 {self.slo_target_p99_ms:.1f} ms; "
                f"effective batch {self.effective_batch:.0f}, "
                f"delay {self.effective_delay_ms:.2f} ms "
                f"({self.slo_adjustments} adjustments, "
                f"{self.slo_pressure_events} under pressure)")
        if self.cache_hits or self.cache_misses or self.cache_entries:
            lines.append(
                f"  cache: hit rate {self.cache_hit_rate:.2f} "
                f"({self.cache_hits} hits / {self.cache_misses} misses), "
                f"{self.cache_entries} entries, "
                f"{self.cache_used_bytes} bytes")
        return "\n".join(lines)

    def fill_registry(self, registry: Optional[MetricsRegistry] = None,
                      prefix: str = "serving") -> MetricsRegistry:
        """Export every numeric field as a ``<prefix>.<name>.<version>.*``
        gauge in ``registry`` (created when omitted)."""
        if registry is None:
            registry = MetricsRegistry()
        base = f"{self.name}.{self.version}"
        if prefix:
            base = f"{prefix}.{base}"
        for spec in fields(self):
            if spec.name in ("name", "version"):
                continue
            registry.set(f"{base}.{spec.name}",
                         float(getattr(self, spec.name)))
        return registry


@dataclass
class ServerStats:
    """Fleet-wide snapshot: per-model stats plus totals."""

    models: Dict[str, ModelStats] = field(default_factory=dict)

    @property
    def total_requests(self) -> int:
        return sum(m.requests for m in self.models.values())

    @property
    def total_errors(self) -> int:
        return sum(m.errors for m in self.models.values())

    def describe(self) -> str:
        lines = [f"ModelServer: {len(self.models)} model(s), "
                 f"{self.total_requests} requests, "
                 f"{self.total_errors} errors"]
        for key in sorted(self.models):
            lines.append(self.models[key].describe())
        return "\n".join(lines)

    def fill_registry(self, registry: Optional[MetricsRegistry] = None,
                      prefix: str = "serving") -> MetricsRegistry:
        """Export fleet totals plus every model's fields into ``registry``."""
        if registry is None:
            registry = MetricsRegistry()
        head = f"{prefix}." if prefix else ""
        registry.set(f"{head}models", float(len(self.models)))
        registry.set(f"{head}total_requests", float(self.total_requests))
        registry.set(f"{head}total_errors", float(self.total_errors))
        for key in sorted(self.models):
            self.models[key].fill_registry(registry, prefix=prefix)
        return registry


def percentiles_ms(recorder: LatencyRecorder) -> List[float]:
    """[p50, p95, p99] in milliseconds."""
    return [recorder.percentile(q) * 1000.0 for q in (0.50, 0.95, 0.99)]
