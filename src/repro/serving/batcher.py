"""Dynamic micro-batching: amortize per-request cost across a flush.

Requests enter a bounded queue as ``(payload, Future)`` pairs.  A worker
thread opens a batch on the first request, then keeps admitting until
either ``max_batch`` requests are collected or ``max_delay_ms`` has passed
since the batch opened — the classic dynamic-batching policy: full batches
under load (throughput), prompt flushes when idle (latency).  The flush is
handed to the runner (which vectorizes through the compiled plan's
``run_batch``), and each request's Future resolves with its row.

Backpressure is explicit: when the queue is full, :meth:`submit` raises
:class:`ServerOverloadedError` instead of buffering without bound — the
caller sheds load, the queue depth stays an honest health signal.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from typing import Any, Callable, List, Sequence, Tuple

from repro.obs import trace as obs_trace


class ServerOverloadedError(RuntimeError):
    """The bounded request queue is full; the caller should shed load."""


class MicroBatcher:
    """Queue + worker thread flushing on ``max_batch`` or ``max_delay_ms``.

    ``runner`` maps a list of payloads to a same-length list of results.
    Not started by default: call :meth:`start` (the server does) — requests
    submitted before ``start`` simply wait in the queue, which tests use to
    get deterministic flush sizes.
    """

    def __init__(self, runner: Callable[[List[Any]], Sequence[Any]],
                 max_batch: int = 32, max_delay_ms: float = 2.0,
                 max_queue: int = 1024, name: str = "batcher"):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_ms < 0:
            raise ValueError(
                f"max_delay_ms must be >= 0, got {max_delay_ms}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.runner = runner
        self.max_batch = max_batch
        self.max_delay_ms = max_delay_ms
        self.name = name
        self._queue: "queue.Queue[Tuple[Any, Future]]" = \
            queue.Queue(maxsize=max_queue)
        self._stop = threading.Event()
        self._thread: threading.Thread = None
        self._lock = threading.Lock()
        # Serializes submit's stopped-check+enqueue against stop's flag
        # set: without it a put can land after the post-join sweep and
        # park its Future forever.
        self._submit_lock = threading.Lock()
        self.batches = 0
        self.batched_requests = 0
        self.max_batch_seen = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MicroBatcher":
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name=f"microbatcher-{self.name}",
                daemon=True)
            self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the worker; by default finishes queued requests first."""
        if not drain:
            while True:
                try:
                    _, fut = self._queue.get_nowait()
                except queue.Empty:
                    break
                fut.cancel()
        with self._submit_lock:
            # Under the submit lock: every future submit now rejects,
            # and every already-enqueued request is visible to the
            # worker's final drain or the sweep below.
            self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=timeout)
        # Post-join sweep: a request that slipped in between the worker's
        # final empty-check and its exit must still resolve, not park its
        # Future until the caller's timeout.
        leftovers = []
        while True:
            try:
                leftovers.append(self._queue.get_nowait())
            except queue.Empty:
                break
        for lo in range(0, len(leftovers), self.max_batch):
            batch = leftovers[lo:lo + self.max_batch]
            if drain:
                self._flush(batch)
            else:
                for _, fut in batch:
                    fut.cancel()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def submit(self, payload: Any) -> Future:
        fut: Future = Future()
        with self._submit_lock:
            if self._stop.is_set():
                raise ServerOverloadedError(
                    f"{self.name}: batcher is stopped")
            try:
                self._queue.put_nowait((payload, fut))
            except queue.Full:
                raise ServerOverloadedError(
                    f"{self.name}: request queue full "
                    f"({self._queue.maxsize} pending)") from None
        return fut

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    @property
    def mean_batch_size(self) -> float:
        return (self.batched_requests / self.batches
                if self.batches else 0.0)

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        import time

        get = self._queue.get
        get_nowait = self._queue.get_nowait
        while not (self._stop.is_set() and self._queue.empty()):
            try:
                batch = [get(timeout=0.02)]
            except queue.Empty:
                continue
            deadline = time.perf_counter() + self.max_delay_ms / 1000.0
            while len(batch) < self.max_batch:
                # Drain whatever is already queued before touching the
                # clock: a hot queue fills the batch without timeouts.
                try:
                    batch.append(get_nowait())
                    continue
                except queue.Empty:
                    pass
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    batch.append(get(timeout=remaining))
                except queue.Empty:
                    break
            self._flush(batch)

    def _flush(self, batch: List[Tuple[Any, Future]]) -> None:
        batch = [(payload, fut) for payload, fut in batch
                 if fut.set_running_or_notify_cancel()]
        if not batch:
            return
        with self._lock:
            self.batches += 1
            self.batched_requests += len(batch)
            self.max_batch_seen = max(self.max_batch_seen, len(batch))
        payloads = [payload for payload, _ in batch]
        try:
            with obs_trace.span("serve.batch", cat="serving",
                                args={"name": self.name,
                                      "batch": len(payloads)}):
                results = self.runner(payloads)
            if len(results) != len(payloads):
                raise RuntimeError(
                    f"batch runner returned {len(results)} results for "
                    f"{len(payloads)} requests")
        except BaseException as exc:  # noqa: BLE001 - forwarded to callers
            for _, fut in batch:
                fut.set_exception(exc)
            return
        for (_, fut), result in zip(batch, results):
            fut.set_result(result)

    def __repr__(self) -> str:
        return (f"MicroBatcher(max_batch={self.max_batch}, "
                f"max_delay_ms={self.max_delay_ms}, "
                f"depth={self.queue_depth}, running={self.running})")
