"""Dynamic micro-batching: amortize per-request cost across a flush.

Requests enter a bounded queue as ``(payload, Future)`` pairs.  A worker
thread opens a batch on the first request, then keeps admitting until
either the batch limit is reached or the flush delay has passed since the
batch opened — the classic dynamic-batching policy: full batches under
load (throughput), prompt flushes when idle (latency).  The flush is
handed to the runner (which vectorizes through the compiled plan's
``run_batch``), and each request's Future resolves with its row.

Three policies layer on top of the PR 3 core, all off by default:

- **SLO-adaptive limits** (:class:`SLOController`).  The static
  ``max_batch``/``max_delay_ms`` pair is the classic knob dilemma: a
  delay tuned for peak throughput taxes every idle-period request, a
  batch limit tuned for latency caps throughput under load.  The
  controller turns both into a feedback loop driven by a p99 latency
  target: under light load it shrinks the flush delay toward zero (no
  pointless waiting), under pressure it grows the batch limit toward the
  hard ``max_batch`` (amortization is the only way to drain a backlog).
  The constructor bounds are *hard*: the effective batch limit never
  exceeds ``max_batch`` and the effective delay is never negative.

- **Priority-tier load shedding** (``shed_watermarks``).  Beyond the
  binary full-queue :class:`ServerOverloadedError`, each priority tier
  can be given a queue-depth watermark (a fraction of ``max_queue``)
  above which its requests are shed with :class:`RequestShedError` —
  low-priority traffic degrades first, and the queue headroom above the
  watermark stays reserved for higher tiers.  Shedding is load *control*,
  not failure: the error is raised at submit time, before any queueing.

- **Concurrent flush dispatch** (``concurrency``).  With one dispatch
  thread a flush must finish before the next batch is collected; with
  ``concurrency=N`` flushes are handed to a small thread pool so batch
  ``k`` can run on one serving replica while batch ``k+1`` runs on
  another — the dispatch model of :mod:`repro.serving.replicas`.

Backpressure is explicit: when the queue is full, :meth:`submit` raises
:class:`ServerOverloadedError` instead of buffering without bound — the
caller sheds load, the queue depth stays an honest health signal.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import trace as obs_trace
from repro.obs.metrics import Histogram

#: request priority tiers (smaller is more important); any int works —
#: these names cover the common three-tier split.
HIGH, NORMAL, LOW = 0, 1, 2

#: a reasonable default tier map for ``shed_watermarks``: low-priority
#: traffic sheds at half a queue, normal at 90%, high only when full.
SHED_WATERMARKS: Mapping[int, float] = {HIGH: 1.0, NORMAL: 0.9, LOW: 0.5}


class ServerOverloadedError(RuntimeError):
    """The bounded request queue is full; the caller should shed load."""


class RequestShedError(ServerOverloadedError):
    """The request was shed by its priority tier's queue watermark.

    A subclass of :class:`ServerOverloadedError` so existing callers
    treat it as backpressure; the distinction tells a client whether
    retrying at a higher priority could help (shed) or the server is
    saturated for everyone (overloaded).
    """


class SLOController:
    """Feedback controller mapping observed tail latency to batch knobs.

    Maintains an *effective* ``(batch_limit, delay_ms)`` pair inside the
    hard ``[min_batch, max_batch]`` × ``[min_delay_ms, max_delay_ms]``
    box.  Every ``adjust_every`` observations it compares the windowed
    p99 against ``target_p99_ms`` and the peak queue depth against the
    current batch limit:

    - **pressure** (p99 over target, or a backlog deeper than one
      flush): grow the batch limit by ``grow`` and relax the delay back
      toward ``max_delay_ms`` — fuller batches amortize per-flush cost,
      which is the only way to drain a backlog;
    - **light load**: shrink the delay by ``shrink`` toward
      ``min_delay_ms`` (an idle server should not make requests wait for
      company) and decay the batch limit slowly.

    Thread-safe; :meth:`observe` is cheap enough for per-request use.
    """

    def __init__(
        self,
        target_p99_ms: float = 50.0,
        *,
        max_batch: int = 64,
        max_delay_ms: float = 5.0,
        min_batch: int = 1,
        min_delay_ms: float = 0.0,
        grow: float = 1.5,
        shrink: float = 0.75,
        adjust_every: int = 64,
        window: int = 2048,
    ):
        if target_p99_ms <= 0:
            raise ValueError(f"target_p99_ms must be > 0, got {target_p99_ms}")
        if min_batch < 1 or max_batch < min_batch:
            raise ValueError(
                f"need 1 <= min_batch <= max_batch, got "
                f"[{min_batch}, {max_batch}]"
            )
        if min_delay_ms < 0 or max_delay_ms < min_delay_ms:
            raise ValueError(
                f"need 0 <= min_delay_ms <= max_delay_ms, got "
                f"[{min_delay_ms}, {max_delay_ms}]"
            )
        if grow <= 1.0:
            raise ValueError(f"grow must be > 1, got {grow}")
        if not 0.0 < shrink < 1.0:
            raise ValueError(f"shrink must be in (0, 1), got {shrink}")
        if adjust_every < 1:
            raise ValueError(f"adjust_every must be >= 1, got {adjust_every}")
        self.target_p99_ms = target_p99_ms
        self.max_batch = max_batch
        self.min_batch = min_batch
        self.max_delay_ms = max_delay_ms
        self.min_delay_ms = min_delay_ms
        self.grow = grow
        self.shrink = shrink
        self.adjust_every = adjust_every
        # Start latency-lean: a modest batch limit and the full delay —
        # the first pressure signal grows the batch, the first quiet
        # window shrinks the delay.
        self.batch_limit = max(min_batch, min(max_batch, max(1, max_batch // 4)))
        self.delay_ms = max_delay_ms
        self.adjustments = 0
        self.pressure_events = 0
        self._hist = Histogram("slo_latency_seconds", window=window)
        self._lock = threading.Lock()
        self._since_adjust = 0
        self._peak_depth = 0

    def limits(self) -> Tuple[int, float]:
        """Current effective ``(batch_limit, delay_ms)``."""
        return self.batch_limit, self.delay_ms

    @property
    def observed_p99_ms(self) -> float:
        return self._hist.percentile(0.99) * 1000.0

    def observe(self, seconds: float, queue_depth: int = 0) -> None:
        """Feed one completed request's end-to-end latency."""
        self._hist.observe(seconds)
        with self._lock:
            self._peak_depth = max(self._peak_depth, queue_depth)
            self._since_adjust += 1
            if self._since_adjust < self.adjust_every:
                return
            self._since_adjust = 0
            peak, self._peak_depth = self._peak_depth, 0
        self._adjust(peak)

    def _adjust(self, peak_depth: int) -> None:
        p99_ms = self.observed_p99_ms
        pressure = p99_ms > self.target_p99_ms or peak_depth > self.batch_limit
        with self._lock:
            self.adjustments += 1
            if pressure:
                self.pressure_events += 1
                self.batch_limit = min(
                    self.max_batch,
                    max(self.batch_limit + 1, int(self.batch_limit * self.grow)),
                )
                self.delay_ms = min(
                    self.max_delay_ms, max(self.delay_ms, 0.05) / self.shrink
                )
            else:
                self.delay_ms = max(self.min_delay_ms, self.delay_ms * self.shrink)
                self.batch_limit = max(
                    self.min_batch,
                    self.batch_limit - max(1, self.batch_limit // 8),
                )
            # The hard box holds whatever the update rule did.
            self.batch_limit = max(
                self.min_batch, min(self.max_batch, self.batch_limit)
            )
            self.delay_ms = max(0.0, min(self.max_delay_ms, self.delay_ms))

    def snapshot(self) -> Dict[str, float]:
        return {
            "target_p99_ms": self.target_p99_ms,
            "observed_p99_ms": self.observed_p99_ms,
            "batch_limit": float(self.batch_limit),
            "delay_ms": self.delay_ms,
            "adjustments": float(self.adjustments),
            "pressure_events": float(self.pressure_events),
        }

    def __repr__(self) -> str:
        return (
            f"SLOController(target_p99_ms={self.target_p99_ms}, "
            f"batch_limit={self.batch_limit}, delay_ms={self.delay_ms:.2f})"
        )


class MicroBatcher:
    """Queue + worker thread flushing on the batch limit or flush delay.

    ``runner`` maps a list of payloads to a same-length list of results.
    Not started by default: call :meth:`start` (the server does) — requests
    submitted before ``start`` simply wait in the queue, which tests use to
    get deterministic flush sizes.

    ``controller`` (an :class:`SLOController`) makes the effective batch
    limit and flush delay adaptive; the constructor's ``max_batch`` and
    ``max_delay_ms`` stay hard upper bounds either way.
    ``shed_watermarks`` maps priority tiers to queue-depth fractions for
    early shedding (see module docs); without it every priority is
    admitted until the queue is full.  ``concurrency`` > 1 dispatches
    flushes onto a thread pool so they overlap (replica serving).
    """

    def __init__(
        self,
        runner: Callable[[List[Any]], Sequence[Any]],
        max_batch: int = 32,
        max_delay_ms: float = 2.0,
        max_queue: int = 1024,
        name: str = "batcher",
        *,
        controller: Optional[SLOController] = None,
        shed_watermarks: Optional[Mapping[int, float]] = None,
        concurrency: int = 1,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_ms < 0:
            raise ValueError(f"max_delay_ms must be >= 0, got {max_delay_ms}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        if shed_watermarks is not None:
            for tier, fraction in shed_watermarks.items():
                if not 0.0 < fraction <= 1.0:
                    raise ValueError(
                        f"shed watermark for priority {tier} must be in "
                        f"(0, 1], got {fraction}"
                    )
        self.runner = runner
        self.max_batch = max_batch
        self.max_delay_ms = max_delay_ms
        self.max_queue = max_queue
        self.name = name
        self.controller = controller
        self.concurrency = concurrency
        self._watermarks = dict(shed_watermarks) if shed_watermarks else None
        self._queue: "queue.Queue[Tuple[Any, Future]]" = queue.Queue(maxsize=max_queue)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        # Serializes submit's stopped-check+enqueue against stop's flag
        # set: without it a put can land after the post-join sweep and
        # park its Future forever.
        self._submit_lock = threading.Lock()
        self.batches = 0
        self.batched_requests = 0
        self.max_batch_seen = 0
        self.shed_requests = 0
        self.shed_by_priority: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MicroBatcher":
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            if self.concurrency > 1 and self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.concurrency,
                    thread_name_prefix=f"microbatcher-{self.name}-flush",
                )
            self._thread = threading.Thread(
                target=self._loop, name=f"microbatcher-{self.name}", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the worker; by default finishes queued requests first."""
        if not drain:
            while True:
                try:
                    _, fut = self._queue.get_nowait()
                except queue.Empty:
                    break
                fut.cancel()
        with self._submit_lock:
            # Under the submit lock: every future submit now rejects,
            # and every already-enqueued request is visible to the
            # worker's final drain or the sweep below.
            self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=timeout)
        executor, self._executor = self._executor, None
        if executor is not None:
            # In-flight dispatched flushes resolve their futures first.
            executor.shutdown(wait=True)
        # Post-join sweep: a request that slipped in between the worker's
        # final empty-check and its exit must still resolve, not park its
        # Future until the caller's timeout.
        leftovers = []
        while True:
            try:
                leftovers.append(self._queue.get_nowait())
            except queue.Empty:
                break
        for lo in range(0, len(leftovers), self.max_batch):
            batch = leftovers[lo : lo + self.max_batch]
            if drain:
                self._flush(batch)
            else:
                for _, fut in batch:
                    fut.cancel()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def submit(self, payload: Any, priority: int = NORMAL) -> Future:
        fut: Future = Future()
        with self._submit_lock:
            if self._stop.is_set():
                raise ServerOverloadedError(f"{self.name}: batcher is stopped")
            watermark = self._watermark(priority)
            if watermark < 1.0 and self._queue.qsize() >= watermark * self.max_queue:
                self.shed_requests += 1
                self.shed_by_priority[priority] = (
                    self.shed_by_priority.get(priority, 0) + 1
                )
                raise RequestShedError(
                    f"{self.name}: priority {priority} sheds at "
                    f"{watermark:.0%} of {self.max_queue} queued "
                    f"(depth {self._queue.qsize()})"
                )
            try:
                self._queue.put_nowait((payload, fut))
            except queue.Full:
                raise ServerOverloadedError(
                    f"{self.name}: request queue full "
                    f"({self._queue.maxsize} pending)"
                ) from None
        return fut

    def _watermark(self, priority: int) -> float:
        """The queue fraction above which ``priority`` is shed.

        Exact tier match wins; an unmapped priority uses the watermark
        of the closest mapped tier *above* it (more important), so an
        off-scale low priority degrades first rather than slipping
        through un-shed; priorities above every mapped tier never shed
        early.
        """
        if self._watermarks is None:
            return 1.0
        if priority in self._watermarks:
            return self._watermarks[priority]
        below = [tier for tier in self._watermarks if tier < priority]
        if not below:
            return 1.0
        return self._watermarks[max(below)]

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _limits(self) -> Tuple[int, float]:
        """Effective (batch limit, delay ms), clamped to the hard box."""
        if self.controller is None:
            return self.max_batch, self.max_delay_ms
        batch, delay_ms = self.controller.limits()
        return (
            max(1, min(self.max_batch, int(batch))),
            max(0.0, min(self.max_delay_ms, delay_ms)),
        )

    def _loop(self) -> None:
        import time

        get = self._queue.get
        get_nowait = self._queue.get_nowait
        while not (self._stop.is_set() and self._queue.empty()):
            try:
                batch = [get(timeout=0.02)]
            except queue.Empty:
                continue
            limit, delay_ms = self._limits()
            deadline = time.perf_counter() + delay_ms / 1000.0
            while len(batch) < limit:
                # Drain whatever is already queued before touching the
                # clock: a hot queue fills the batch without timeouts.
                try:
                    batch.append(get_nowait())
                    continue
                except queue.Empty:
                    pass
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    batch.append(get(timeout=remaining))
                except queue.Empty:
                    break
            if self._executor is not None:
                self._executor.submit(self._flush, batch)
            else:
                self._flush(batch)

    def _flush(self, batch: List[Tuple[Any, Future]]) -> None:
        batch = [
            (payload, fut)
            for payload, fut in batch
            if fut.set_running_or_notify_cancel()
        ]
        if not batch:
            return
        with self._lock:
            self.batches += 1
            self.batched_requests += len(batch)
            self.max_batch_seen = max(self.max_batch_seen, len(batch))
        payloads = [payload for payload, _ in batch]
        try:
            # With kernel-lowered plans, each KernelStage the runner
            # executes emits its own "kernel.stage" span nested under
            # this one — one columnar call per stage per flush.
            with obs_trace.span(
                "serve.batch",
                cat="serving",
                args={"name": self.name, "batch": len(payloads)},
            ):
                results = self.runner(payloads)
            if len(results) != len(payloads):
                raise RuntimeError(
                    f"batch runner returned {len(results)} results for "
                    f"{len(payloads)} requests"
                )
        except BaseException as exc:  # noqa: BLE001 - forwarded to callers
            for _, fut in batch:
                fut.set_exception(exc)
            return
        for (_, fut), result in zip(batch, results):
            fut.set_result(result)

    def __repr__(self) -> str:
        return (
            f"MicroBatcher(max_batch={self.max_batch}, "
            f"max_delay_ms={self.max_delay_ms}, "
            f"depth={self.queue_depth}, running={self.running})"
        )
