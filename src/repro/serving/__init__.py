"""Online model serving: compiled plans, micro-batching, serving cache.

The training side of this repo optimizes pipelines for *fit* throughput;
this package is the inference side — the production path the ROADMAP's
"heavy traffic" north star needs:

- :mod:`repro.serving.compiler` — lower a trained
  :class:`~repro.core.pipeline.FittedPipeline` into a flat
  :class:`InferencePlan` (no per-request graph walks; fused stages stay
  fused).
- :mod:`repro.serving.batcher` — dynamic micro-batching (flush on
  ``max_batch`` or ``max_delay_ms``) over a bounded queue.
- :mod:`repro.serving.cache` — the paper's cost-model cache selection
  re-aimed at cross-request reuse, keyed by input fingerprint with LRU
  eviction under a byte budget.
- :mod:`repro.serving.server` — :class:`ModelServer`: a multi-model
  registry with named versions, warm swap, and ``stats()`` reporting
  latency percentiles, throughput, queue depth and cache hit rate.
- :mod:`repro.serving.metrics` — the counters behind ``stats()``.

Quickstart::

    from repro.serving import ModelServer

    server = ModelServer(max_batch=64, max_delay_ms=2.0,
                         cache_budget_bytes=256e6)
    with server:
        server.register("reviews", fitted, version="v1",
                        warmup_items=sample_docs)
        label = server.predict("reviews", "great product, love it")
        print(server.stats().describe())
"""

from repro.serving.batcher import MicroBatcher, ServerOverloadedError
from repro.serving.cache import (
    ServingCache,
    choose_serving_cache_set,
    fingerprint,
)
from repro.serving.compiler import (
    InferenceOp,
    InferencePlan,
    compile_inference_plan,
)
from repro.serving.metrics import LatencyRecorder, ModelStats, ServerStats
from repro.serving.server import ModelServer, ServedModel

__all__ = [
    "InferenceOp",
    "InferencePlan",
    "LatencyRecorder",
    "MicroBatcher",
    "ModelServer",
    "ModelStats",
    "ServedModel",
    "ServerOverloadedError",
    "ServerStats",
    "ServingCache",
    "choose_serving_cache_set",
    "compile_inference_plan",
    "fingerprint",
]
