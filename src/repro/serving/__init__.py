"""Online model serving: compiled plans, micro-batching, serving cache.

The training side of this repo optimizes pipelines for *fit* throughput;
this package is the inference side — the production path the ROADMAP's
"heavy traffic" north star needs:

- :mod:`repro.serving.compiler` — lower a trained
  :class:`~repro.core.pipeline.FittedPipeline` into a flat
  :class:`InferencePlan` (no per-request graph walks; fused stages stay
  fused).
- :mod:`repro.serving.batcher` — dynamic micro-batching (flush on
  ``max_batch`` or ``max_delay_ms``) over a bounded queue, with an
  optional SLO feedback controller (:class:`SLOController`) and
  priority-tier load shedding (:class:`RequestShedError`).
- :mod:`repro.serving.cache` — the paper's cost-model cache selection
  re-aimed at cross-request reuse, keyed by input fingerprint with LRU
  eviction under a byte budget.
- :mod:`repro.serving.server` — :class:`ModelServer`: a multi-model
  registry with named versions, warm swap, and ``stats()`` reporting
  latency percentiles, throughput, queue depth and cache hit rate.
- :mod:`repro.serving.replicas` — the multi-process tier:
  :class:`ReplicaSet` ships compiled programs to persistent worker
  processes (``ModelServer(replicas=N)``) over the actor-pool runtime.
- :mod:`repro.serving.async_server` — :class:`AsyncModelServer`, the
  asyncio front-end (in-flight requests cost coroutines, not threads).
- :mod:`repro.serving.metrics` — the counters behind ``stats()``.

Quickstart::

    from repro.serving import ModelServer

    server = ModelServer(max_batch=64, max_delay_ms=2.0,
                         cache_budget_bytes=256e6)
    with server:
        server.register("reviews", fitted, version="v1",
                        warmup_items=sample_docs)
        label = server.predict("reviews", "great product, love it")
        print(server.stats().describe())

``docs/SERVING.md`` has the full knob reference.
"""

from repro.serving.async_server import AsyncModelServer
from repro.serving.batcher import (
    HIGH,
    LOW,
    NORMAL,
    MicroBatcher,
    RequestShedError,
    ServerOverloadedError,
    SLOController,
)
from repro.serving.cache import (
    ServingCache,
    choose_serving_cache_set,
    fingerprint,
)
from repro.serving.compiler import (
    InferenceOp,
    InferencePlan,
    compile_inference_plan,
)
from repro.serving.metrics import LatencyRecorder, ModelStats, ServerStats
from repro.serving.replicas import ReplicaSet
from repro.serving.server import ModelServer, ServedModel

__all__ = [
    "HIGH",
    "LOW",
    "NORMAL",
    "AsyncModelServer",
    "InferenceOp",
    "InferencePlan",
    "LatencyRecorder",
    "MicroBatcher",
    "ModelServer",
    "ModelStats",
    "ReplicaSet",
    "RequestShedError",
    "SLOController",
    "ServedModel",
    "ServerOverloadedError",
    "ServerStats",
    "ServingCache",
    "choose_serving_cache_set",
    "compile_inference_plan",
    "fingerprint",
]
