"""Asyncio front-end: thousands of in-flight requests as coroutines.

:meth:`ModelServer.submit` already returns a
:class:`concurrent.futures.Future`, so the server core is naturally
asynchronous — what a thread-per-request client pays for is the *waiting*
(one OS thread parked per outstanding ``result()`` call).
:class:`AsyncModelServer` bridges that Future into the event loop with
:func:`asyncio.wrap_future`: an awaiting coroutine costs a heap object,
not a stack, so an async gateway holds thousands of concurrent requests
over one thread while the micro-batcher underneath sees exactly the open
traffic it needs to form full batches.

The wrapper is deliberately thin: no request path is duplicated, every
submission funnels through the synchronous server's single entry point
(cache fast path, priority shedding, batching, metrics all included), and
the registry methods delegate.  Backpressure surfaces unchanged —
:class:`~repro.serving.batcher.ServerOverloadedError` and
:class:`~repro.serving.batcher.RequestShedError` raise inside the
awaiting coroutine.

Usage::

    server = ModelServer(replicas=2, slo_target_p99_ms=20.0)
    server.register("m", fitted)
    async with AsyncModelServer(server) as srv:
        preds = await asyncio.gather(*(srv.predict("m", x) for x in items))
"""

from __future__ import annotations

import asyncio
from typing import Any, List, Optional, Sequence

from repro.serving.batcher import NORMAL
from repro.serving.server import ModelServer


class AsyncModelServer:
    """Event-loop adapter over a (possibly replica-backed) ModelServer.

    Owns no execution machinery: construction wraps an existing
    :class:`~repro.serving.server.ModelServer` (or builds a fresh one
    from the given knobs when ``server`` is omitted).  Entering the
    async context starts the underlying server; exiting stops it —
    through :meth:`ModelServer.close` when it owns replicas — without
    blocking the event loop.
    """

    def __init__(self, server: Optional[ModelServer] = None, **knobs: Any):
        if server is not None and knobs:
            raise ValueError(
                "pass either an existing server or construction knobs, "
                f"not both (got knobs {sorted(knobs)})"
            )
        self.server = server if server is not None else ModelServer(**knobs)

    # ------------------------------------------------------------------
    # Registry (synchronous: compilation is a deliberate, rare act)
    # ------------------------------------------------------------------
    def register(self, name: str, fitted, **kwargs: Any):
        return self.server.register(name, fitted, **kwargs)

    def deploy(self, name: str, version: str):
        return self.server.deploy(name, version)

    def models(self) -> List[str]:
        return self.server.models()

    def stats(self, name: Optional[str] = None, version: Optional[str] = None):
        return self.server.stats(name, version)

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def predict(
        self,
        name: str,
        item: Any,
        version: Optional[str] = None,
        priority: int = NORMAL,
    ) -> Any:
        """Await one prediction; overload/shedding raises in the caller."""
        fut = self.server.submit(name, item, version=version, priority=priority)
        return await asyncio.wrap_future(fut)

    async def predict_many(
        self,
        name: str,
        items: Sequence[Any],
        version: Optional[str] = None,
        priority: int = NORMAL,
    ) -> List[Any]:
        """Submit every item open-loop, then await them all.

        All submissions enter the batcher before the first await, so the
        flush sees the full open traffic — the async analogue of the
        synchronous ``predict_many``.
        """
        futures = [
            asyncio.wrap_future(
                self.server.submit(name, item, version=version, priority=priority)
            )
            for item in items
        ]
        return list(await asyncio.gather(*futures))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AsyncModelServer":
        self.server.start()
        return self

    async def stop(self) -> None:
        """Stop without blocking the loop (drain runs in an executor)."""
        loop = asyncio.get_running_loop()
        if self.server.replicas:
            await loop.run_in_executor(None, self.server.close)
        else:
            await loop.run_in_executor(None, self.server.stop)

    async def __aenter__(self) -> "AsyncModelServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    def __repr__(self) -> str:
        return f"AsyncModelServer({self.server!r})"
