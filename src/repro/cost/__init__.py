"""Cost model framework (paper Section 3).

The cost of a physical operator ``f`` on statistics ``A_s`` with resources
``R`` is split into an operator-specific part (a :class:`CostProfile` of
flops, memory-bytes and network-bytes along the critical path) and a
cluster-specific part (the weights ``R_exec``/``R_coord`` derived from the
:class:`~repro.cluster.resources.ResourceDescriptor`)::

    c(f, A_s, R) = R_exec * c_exec(f, A_s, R_w) + R_coord * c_coord(f, A_s, R_w)
"""

from repro.cost.profile import CostProfile
from repro.cost.model import CostModel, estimate_cost, execution_seconds

__all__ = ["CostProfile", "CostModel", "estimate_cost", "execution_seconds"]
