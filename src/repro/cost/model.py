"""CostModel interface and the cost equation (paper Eq. 1).

Operator developers implement :meth:`CostModel.cost` returning a
:class:`~repro.cost.profile.CostProfile`; the optimizer converts profiles to
comparable scalars (estimated seconds) using the cluster's resource
descriptor.  As in the paper, the estimate need not equal real runtime — its
job is to avoid order-of-magnitude mistakes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cost.profile import CostProfile

if TYPE_CHECKING:
    from repro.cluster.resources import ResourceDescriptor
    from repro.core.stats import DataStats


class CostModel:
    """Operator-specific cost functions.

    Subclasses describe one *physical* operator.  ``cost`` returns the
    critical-path profile for training/applying the operator on data with
    the given statistics using ``workers`` nodes.
    """

    #: Human-readable name of the physical operator this model prices.
    name: str = "unnamed"

    def cost(self, stats: "DataStats", workers: int) -> CostProfile:
        raise NotImplementedError

    def feasible(self, stats: "DataStats", resources: "ResourceDescriptor") -> bool:
        """Whether the operator can run at all (e.g. memory fits).

        Mirrors the paper's observation that e.g. the exact solver crashes
        beyond 4k features on the Amazon workload: infeasible options are
        excluded before costing.
        """
        return True


def execution_seconds(profile: CostProfile,
                      resources: "ResourceDescriptor") -> float:
    """Convert a profile to estimated seconds on the given cluster.

    ``R_exec`` weighs local compute (flops at the node's GFLOP/s, bytes at
    memory bandwidth) and ``R_coord`` weighs network traffic at the link
    speed.  Compute and memory traffic overlap is ignored — we take the sum,
    which is pessimistic but monotone, which is all plan selection needs.
    """
    exec_time = (profile.flops / resources.cpu_flops
                 + profile.bytes / resources.memory_bandwidth)
    coord_time = (profile.network / resources.network_bandwidth
                  + profile.tasks * resources.task_overhead)
    return exec_time + coord_time


def estimate_cost(model: CostModel, stats: "DataStats",
                  resources: "ResourceDescriptor") -> float:
    """Price one physical operator: Eq. (1) of the paper."""
    profile = model.cost(stats, resources.num_nodes)
    return execution_seconds(profile, resources)
