"""CostProfile: the operator-specific half of the cost model."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostProfile:
    """Critical-path resource requirements of one operator execution.

    Mirrors the paper's ``CostProfile(flops, bytes, network)``:

    - ``flops``: floating-point operations on the most loaded node.
    - ``bytes``: bytes read/written through local memory on the most loaded
      node (used to price memory-bandwidth-bound work).
    - ``network``: bytes through the most loaded network link.
    - ``tasks``: distributed passes / task launches (priced at the
      cluster's per-task overhead).  The paper notes constants "are
      necessary in practice"; the task term is what keeps iterative
      solvers honestly priced when per-pass overhead rivals compute.

    Profiles add component-wise, and scale by a constant, so per-stage
    profiles compose into pipeline profiles.
    """

    flops: float = 0.0
    bytes: float = 0.0
    network: float = 0.0
    tasks: float = 0.0

    def __add__(self, other: "CostProfile") -> "CostProfile":
        return CostProfile(self.flops + other.flops,
                           self.bytes + other.bytes,
                           self.network + other.network,
                           self.tasks + other.tasks)

    def __mul__(self, scalar: float) -> "CostProfile":
        return CostProfile(self.flops * scalar,
                           self.bytes * scalar,
                           self.network * scalar,
                           self.tasks * scalar)

    __rmul__ = __mul__

    @staticmethod
    def zero() -> "CostProfile":
        return CostProfile(0.0, 0.0, 0.0, 0.0)
