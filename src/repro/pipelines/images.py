"""VOC / ImageNet Fisher-vector image classification pipelines.

The paper's Figure 5 DAG: ``GrayScaler -> SIFT`` feeds three consumers —
a ``ColumnSampler -> PCA`` training branch, a ``ColumnSampler -> GMM``
training branch (after dimensionality reduction), and the main flow where
the fitted PCA and Fisher-vector transformers apply to all descriptors,
followed by normalization and a linear solve.  The shared SIFT prefix is
the reuse opportunity the materialization optimizer exploits (Figure 11).
"""

from __future__ import annotations

from repro.core.pipeline import Pipeline
from repro.dataset.context import Context
from repro.nodes.images import GrayScaler, LCSExtractor, SIFTExtractor
from repro.nodes.learning.fisher import FisherVectorEstimator
from repro.nodes.learning.gmm import GMMEstimator
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.learning.pca import PCAEstimator
from repro.nodes.numeric import ColumnSampler, Normalizer, SignedPower
from repro.workloads.base import Workload


def voc_pipeline(ctx: Context, workload: Workload,
                 pca_dims: int = 32, gmm_components: int = 8,
                 sift_stride: int = 8, sampled_descriptors: int = 200,
                 partitions: int = 4, seed: int = 0) -> Pipeline:
    """Build the VOC Fisher-vector pipeline (Chatfield et al. [11])."""
    data = workload.train_data(ctx, partitions)
    labels = workload.train_label_vectors(ctx, partitions)

    featurize = (Pipeline.identity()
                 .and_then(GrayScaler())
                 .and_then(SIFTExtractor(stride=sift_stride)))
    pca_train = featurize.and_then(ColumnSampler(sampled_descriptors, seed))
    reduced = featurize.and_then_trained_on(
        PCAEstimator(pca_dims), pca_train, data)
    gmm_train = reduced.and_then(ColumnSampler(sampled_descriptors, seed + 1))
    encoded = reduced.and_then_trained_on(
        FisherVectorEstimator(GMMEstimator(gmm_components, seed=seed)),
        gmm_train, data)
    return (encoded
            .and_then(SignedPower(0.5))
            .and_then(Normalizer())
            .and_then(LinearSolver(), data, labels))


def imagenet_pipeline(ctx: Context, workload: Workload,
                      pca_dims: int = 32, gmm_components: int = 16,
                      sift_stride: int = 8, sampled_descriptors: int = 200,
                      partitions: int = 4, seed: int = 0) -> Pipeline:
    """ImageNet pipeline: SIFT + LCS branches, Fisher-encoded and gathered.

    The paper's ImageNet pipeline adds an LCS (colour) branch next to SIFT
    (Table 4); both are Fisher-encoded and concatenated before the solve.
    For simplicity the two encoded branches are summed feature-wise via a
    gather + combine, matching the original's concatenation semantics.
    """
    from repro.core.pipeline import Pipeline as P
    from repro.nodes.numeric import VectorCombiner

    data = workload.train_data(ctx, partitions)
    labels = workload.train_label_vectors(ctx, partitions)

    def fisher_branch(extract_pipeline: Pipeline, branch_seed: int) -> Pipeline:
        pca_train = extract_pipeline.and_then(
            ColumnSampler(sampled_descriptors, branch_seed))
        reduced = extract_pipeline.and_then_trained_on(
            PCAEstimator(pca_dims, seed=branch_seed), pca_train, data)
        gmm_train = reduced.and_then(
            ColumnSampler(sampled_descriptors, branch_seed + 1))
        return reduced.and_then_trained_on(
            FisherVectorEstimator(
                GMMEstimator(gmm_components, seed=branch_seed)),
            gmm_train, data)

    root = P.identity()
    sift = root.and_then(GrayScaler()).and_then(
        SIFTExtractor(stride=sift_stride))
    lcs = root.and_then(LCSExtractor(stride=sift_stride))
    branches = [fisher_branch(sift, seed), fisher_branch(lcs, seed + 100)]
    return (P.gather(branches)
            .and_then(VectorCombiner())
            .and_then(SignedPower(0.5))
            .and_then(Normalizer())
            .and_then(LinearSolver(), data, labels))
