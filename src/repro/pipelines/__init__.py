"""End-to-end pipeline builders for the paper's workloads (Table 4)."""

from repro.pipelines.amazon import amazon_pipeline
from repro.pipelines.cifar import cifar_pipeline
from repro.pipelines.images import imagenet_pipeline, voc_pipeline
from repro.pipelines.timit import timit_pipeline
from repro.pipelines.youtube import youtube_pipeline

__all__ = [
    "amazon_pipeline",
    "cifar_pipeline",
    "imagenet_pipeline",
    "timit_pipeline",
    "voc_pipeline",
    "youtube_pipeline",
]
