"""YouTube-8M replication: pre-featurized vectors + linear / logistic model.

The benchmark's videos arrive already featurized by a deep network (1024-d
frame means); the paper's replication trains a linear classifier in minutes
and a slower converged logistic regression (Section 5.2).
"""

from __future__ import annotations

from repro.core.pipeline import Pipeline
from repro.dataset.context import Context
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.learning.logistic import LogisticRegressionEstimator
from repro.workloads.base import Workload


def youtube_pipeline(ctx: Context, workload: Workload,
                     model: str = "linear", max_iter: int = 31,
                     partitions: int = 4) -> Pipeline:
    """Build the YouTube-8M classifier: ``model`` is linear | logistic."""
    data = workload.train_data(ctx, partitions)
    labels = workload.train_label_vectors(ctx, partitions)
    if model == "linear":
        est = LinearSolver()
    elif model == "logistic":
        est = LogisticRegressionEstimator(max_iter=max_iter)
    else:
        raise ValueError(f"model must be linear|logistic, got {model!r}")
    return Pipeline.identity().and_then(est, data, labels)
