"""The TIMIT kernel-SVM pipeline: gathered random features + linear solve.

Approximates an RBF kernel machine (paper Section 5.1): several blocks of
random cosine features are computed in parallel branches, gathered, and
concatenated before a least-squares solve — exactly the structure
``RandomFeatures, Pipeline.gather, LinearSolver`` of Table 4.
"""

from __future__ import annotations

from repro.core.pipeline import Pipeline
from repro.dataset.context import Context
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.learning.random_features import CosineRandomFeatures
from repro.nodes.numeric import VectorCombiner
from repro.workloads.base import Workload


def timit_pipeline(ctx: Context, workload: Workload,
                   num_feature_blocks: int = 4, block_size: int = 512,
                   gamma: float = 0.01, partitions: int = 4) -> Pipeline:
    """Build the kernel-approximation pipeline.

    Total solve features = ``num_feature_blocks * block_size`` (the paper
    uses 528k; defaults give laptop scale).
    """
    data = workload.train_data(ctx, partitions)
    labels = workload.train_label_vectors(ctx, partitions)
    base = Pipeline.identity()
    branches = [
        base.and_then(CosineRandomFeatures(block_size, gamma, seed=i), data)
        for i in range(num_feature_blocks)
    ]
    return (Pipeline.gather(branches)
            .and_then(VectorCombiner())
            .and_then(LinearSolver(), data, labels))
