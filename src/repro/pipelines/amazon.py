"""The Amazon Reviews text classification pipeline (paper Figure 2).

``Trim -> LowerCase -> Tokenizer -> NGramsFeaturizer(1..2) ->
TermFrequency -> CommonSparseFeatures -> LinearSolver``.

The training data flows through the same featurization prefix both to
select the common sparse features and to train the classifier — the
common sub-expression the whole-pipeline optimizer merges and the
materialization optimizer caches.
"""

from __future__ import annotations

from repro.core.pipeline import Pipeline
from repro.dataset.context import Context
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.text import (
    CommonSparseFeatures,
    LowerCase,
    NGramsFeaturizer,
    TermFrequency,
    Tokenizer,
    Trim,
    unit_weighting,
)
from repro.workloads.base import Workload


def amazon_pipeline(ctx: Context, workload: Workload,
                    num_features: int = 2000, ngrams: int = 2,
                    lbfgs_iters: int = 30, partitions: int = 4,
                    l2_reg: float = 1e-8) -> Pipeline:
    """Build the text classification pipeline over a generated workload.

    ``l2_reg`` reaches every physical solver the optimizer may select,
    which makes it the hyperparameter knob for warm-retrain and sweep
    experiments (``lbfgs_iters`` only matters when L-BFGS wins the cost
    model).
    """
    data = workload.train_data(ctx, partitions)
    labels = workload.train_label_vectors(ctx, partitions)
    return (Pipeline.identity()
            .and_then(Trim())
            .and_then(LowerCase())
            .and_then(Tokenizer())
            .and_then(NGramsFeaturizer(1, ngrams))
            .and_then(TermFrequency(unit_weighting()))
            .and_then(CommonSparseFeatures(num_features), data)
            .and_then(LinearSolver(lbfgs_iters=lbfgs_iters, l2_reg=l2_reg),
                      data, labels))
