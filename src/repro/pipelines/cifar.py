"""CIFAR-10 pipeline: learned convolution filters + rectify + pool + solve.

The Coates & Ng [16] architecture the paper uses for its CIFAR comparison:
random patches -> ZCA whitening -> K-Means filters -> convolution ->
symmetric rectification -> spatial pooling -> linear solve.
"""

from __future__ import annotations

from repro.core.pipeline import Pipeline
from repro.dataset.context import Context
from repro.nodes.images import Pooler, SymmetricRectifier
from repro.nodes.learning.filter_learning import ConvolutionalFilterLearner
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.numeric import Flatten
from repro.workloads.base import Workload


def cifar_pipeline(ctx: Context, workload: Workload,
                   num_filters: int = 32, patch_size: int = 6,
                   pool_grid: int = 2, alpha: float = 0.25,
                   partitions: int = 4, seed: int = 0) -> Pipeline:
    """Build the CIFAR convolutional featurization pipeline.

    Solve features = ``pool_grid^2 * 2 * num_filters`` (the rectifier
    doubles the filter responses).
    """
    data = workload.train_data(ctx, partitions)
    labels = workload.train_label_vectors(ctx, partitions)
    image_shape = workload.train_items[0].shape
    learner = ConvolutionalFilterLearner(
        num_filters=num_filters, patch_size=patch_size,
        image_shape=image_shape, seed=seed)
    return (Pipeline.identity()
            .and_then(learner, data)
            .and_then(SymmetricRectifier(alpha))
            .and_then(Pooler(pool_grid, "sum"))
            .and_then(Flatten())
            .and_then(LinearSolver(), data, labels))
