"""Evaluation metrics used in the paper's Table 5.

Accuracy for Amazon/TIMIT/CIFAR, top-k error for ImageNet, and mean
average precision for VOC.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def accuracy(predicted: Sequence[int], actual: Sequence[int]) -> float:
    """Fraction of exact class matches."""
    if len(predicted) != len(actual):
        raise ValueError(f"length mismatch: {len(predicted)} vs {len(actual)}")
    if not actual:
        raise ValueError("empty evaluation set")
    hits = sum(1 for p, a in zip(predicted, actual) if p == a)
    return hits / len(actual)


def top_k_accuracy(score_rows: Sequence[np.ndarray],
                   actual: Sequence[int], k: int = 5) -> float:
    """Fraction of examples whose true class is in the top-k scores."""
    if len(score_rows) != len(actual):
        raise ValueError(f"length mismatch: {len(score_rows)} vs "
                         f"{len(actual)}")
    if not actual:
        raise ValueError("empty evaluation set")
    hits = 0
    for scores, label in zip(score_rows, actual):
        arr = np.asarray(scores).ravel()
        kk = min(k, arr.size)
        top = np.argpartition(-arr, kk - 1)[:kk]
        if label in top:
            hits += 1
    return hits / len(actual)


def mean_average_precision(score_rows: Sequence[np.ndarray],
                           actual: Sequence[int],
                           num_classes: int) -> float:
    """Macro mAP: average precision per class, averaged over classes.

    Each class is treated as a binary retrieval problem ranked by its
    score column (the VOC evaluation protocol, simplified to single-label
    ground truth).
    """
    scores = np.vstack([np.asarray(s).ravel() for s in score_rows])
    labels = np.asarray(actual)
    aps: List[float] = []
    for c in range(num_classes):
        relevant = labels == c
        if not relevant.any():
            continue
        order = np.argsort(-scores[:, c])
        rel_sorted = relevant[order]
        cum_hits = np.cumsum(rel_sorted)
        precision_at = cum_hits / (np.arange(len(rel_sorted)) + 1)
        ap = float((precision_at * rel_sorted).sum() / rel_sorted.sum())
        aps.append(ap)
    if not aps:
        raise ValueError("no classes present in the evaluation set")
    return float(np.mean(aps))


def confusion_matrix(predicted: Sequence[int], actual: Sequence[int],
                     num_classes: int) -> np.ndarray:
    """``C[i, j]`` = count of items with true class i predicted as j."""
    if len(predicted) != len(actual):
        raise ValueError(f"length mismatch: {len(predicted)} vs "
                         f"{len(actual)}")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for p, a in zip(predicted, actual):
        if not (0 <= int(p) < num_classes and 0 <= int(a) < num_classes):
            raise ValueError(f"label out of range [0, {num_classes}): "
                             f"predicted={p}, actual={a}")
        matrix[int(a), int(p)] += 1
    return matrix


def precision_recall_f1(predicted: Sequence[int], actual: Sequence[int],
                        num_classes: int) -> dict:
    """Macro-averaged precision, recall and F1 over present classes."""
    matrix = confusion_matrix(predicted, actual, num_classes)
    precisions, recalls, f1s = [], [], []
    for c in range(num_classes):
        tp = matrix[c, c]
        predicted_c = matrix[:, c].sum()
        actual_c = matrix[c, :].sum()
        if actual_c == 0:
            continue
        precision = tp / predicted_c if predicted_c else 0.0
        recall = tp / actual_c
        f1 = (2 * precision * recall / (precision + recall)
              if precision + recall else 0.0)
        precisions.append(precision)
        recalls.append(recall)
        f1s.append(f1)
    if not precisions:
        raise ValueError("no classes present in the evaluation set")
    return {"precision": float(np.mean(precisions)),
            "recall": float(np.mean(recalls)),
            "f1": float(np.mean(f1s))}


class MulticlassMetrics:
    """Bundle of evaluation results for one classifier run."""

    def __init__(self, score_rows: Sequence[np.ndarray],
                 actual: Sequence[int], num_classes: int):
        self.scores = [np.asarray(s).ravel() for s in score_rows]
        self.actual = list(actual)
        self.num_classes = num_classes
        self.predicted = [int(np.argmax(s)) for s in self.scores]

    @property
    def accuracy(self) -> float:
        return accuracy(self.predicted, self.actual)

    def top_k(self, k: int) -> float:
        return top_k_accuracy(self.scores, self.actual, k)

    @property
    def mean_average_precision(self) -> float:
        return mean_average_precision(self.scores, self.actual,
                                      self.num_classes)

    @property
    def confusion(self) -> np.ndarray:
        return confusion_matrix(self.predicted, self.actual,
                                self.num_classes)

    def summary(self) -> dict:
        out = {"accuracy": self.accuracy,
               "top_5": self.top_k(5),
               "mAP": self.mean_average_precision}
        out.update(precision_recall_f1(self.predicted, self.actual,
                                       self.num_classes))
        return out
