"""Execution context: cache manager + instrumentation for datasets."""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.dataset.cache import CacheManager, CachePolicy


@dataclass
class ExecutionStats:
    """Counters the materialization experiments read back.

    ``compute_counts[dataset_id]`` is the number of partition computations
    performed for that dataset — recomputation of uncached intermediates
    shows up directly here, which is how Figure 10's comparisons are
    measured.  Updates are locked: the pipelined backend records computes
    from several threads, and an unguarded read-modify-write would drop
    counts.
    """

    compute_counts: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    elements_computed: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record_compute(self, dataset_id: int, num_elements: int) -> None:
        with self._lock:
            self.compute_counts[dataset_id] += 1
            self.elements_computed += num_elements

    def total_computations(self) -> int:
        return sum(self.compute_counts.values())

    def reset(self) -> None:
        with self._lock:
            self.compute_counts.clear()
            self.elements_computed = 0


class Context:
    """Owns the cache and stats shared by a family of datasets.

    Analogous to a SparkContext restricted to what the KeystoneML optimizer
    needs: a place to parallelize data, a cache with a byte budget, and
    execution counters.
    """

    def __init__(self, cache_budget_bytes: float = float("inf"),
                 policy: Optional[CachePolicy] = None,
                 default_partitions: int = 4):
        self.cache = CacheManager(cache_budget_bytes, policy)
        self.stats = ExecutionStats()
        self.default_partitions = default_partitions
        self._next_dataset_id = 0
        self._id_lock = threading.Lock()

    def next_dataset_id(self) -> int:
        # Locked: pipelined estimator fits may derive datasets on pool
        # threads, and duplicate ids would alias (id, partition) cache keys.
        with self._id_lock:
            self._next_dataset_id += 1
            return self._next_dataset_id

    def parallelize(self, items, num_partitions: Optional[int] = None) -> "Dataset":
        """Create a source :class:`Dataset` from an in-memory sequence."""
        from repro.dataset.dataset import Dataset

        return Dataset.from_items(self, list(items),
                                  num_partitions or self.default_partitions)

    def set_policy(self, policy: CachePolicy,
                   budget_bytes: Optional[float] = None) -> None:
        """Swap the caching policy (and optionally the budget), keeping stats."""
        budget = budget_bytes if budget_bytes is not None else self.cache.budget
        self.cache = CacheManager(budget, policy)

    def reset_stats(self) -> None:
        self.stats.reset()
