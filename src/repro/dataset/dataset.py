"""Lazy, partitioned, lineage-tracked dataset — the Spark-RDD substitute.

A :class:`Dataset` never holds data directly (unless it is a source): it
records how each partition is computed from its parents.  Actions
(``collect``, ``count``, ``reduce`` ...) trigger partition computation, which
consults the context's :class:`~repro.dataset.cache.CacheManager` when the
dataset is marked cached.  Every partition computation is recorded in
:class:`~repro.dataset.context.ExecutionStats`, so recomputation caused by
cache misses is directly observable — this is the mechanism behind the
automatic-materialization experiments (paper Section 5.4).
"""

from __future__ import annotations

import random
import threading
from typing import Any, Callable, Iterable, List, Tuple

import numpy as np

from repro.dataset.context import Context
from repro.dataset.sizing import estimate_partition_size


def tree_combine(partials: List[Any], comb: Callable[[Any, Any], Any]) -> Any:
    """Pairwise binary combining tree over ``partials`` (non-empty).

    The single definition of the tree shape used by
    :meth:`Dataset.tree_aggregate` *and* by estimators that merge
    per-partition sufficient statistics computed elsewhere (the process
    backend's stat-merge path) — both must reduce in exactly the same
    order for results to stay byte-identical.
    """
    if not partials:
        raise ValueError("tree_combine requires at least one partial")
    level = list(partials)
    while len(level) > 1:
        nxt = []
        for j in range(0, len(level), 2):
            if j + 1 < len(level):
                nxt.append(comb(level[j], level[j + 1]))
            else:
                nxt.append(level[j])
        level = nxt
    return level[0]


class _StoredPartitions:
    """Compute function over pre-materialized partitions.

    Used by unpickled datasets and by backends that register partitions
    computed elsewhere (worker processes) — both hand over exclusively
    owned row lists, so only the outer list is copied here.  Each pull
    returns a shallow copy, matching ``from_items`` — consumers may
    mutate the returned row lists.
    """

    def __init__(self, partitions: List[List[Any]]):
        self.partitions = list(partitions)

    def __call__(self, i: int) -> List[Any]:
        return list(self.partitions[i])


class Dataset:
    """A lazy partitioned collection with deterministic recompute semantics.

    Instances are created via :meth:`Context.parallelize` or by transforming
    existing datasets.  Transformations (``map``, ``filter``, ...) are lazy;
    actions (``collect``, ``count``, ...) force computation partition by
    partition.
    """

    def __init__(self, ctx: Context, num_partitions: int,
                 compute: Callable[[int], List[Any]],
                 parents: Tuple["Dataset", ...] = (),
                 name: str = ""):
        self.ctx = ctx
        self.id = ctx.next_dataset_id()
        self.num_partitions = num_partitions
        self._compute = compute
        self.parents = parents
        self.name = name or f"dataset-{self.id}"
        self.should_cache = False
        # Per-partition in-flight guards for cached datasets: threads
        # racing the same cold partition wait for one compute instead of
        # duplicating the whole upstream flow (dict.setdefault is atomic).
        self._inflight: dict = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_items(cls, ctx: Context, items: List[Any],
                   num_partitions: int) -> "Dataset":
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        n = len(items)
        bounds = [round(i * n / num_partitions) for i in range(num_partitions + 1)]
        slices = [items[bounds[i]:bounds[i + 1]] for i in range(num_partitions)]

        def compute(i: int) -> List[Any]:
            return list(slices[i])

        return cls(ctx, num_partitions, compute, name="source")

    # ------------------------------------------------------------------
    # Partition resolution (cache-aware)
    # ------------------------------------------------------------------
    def partition(self, i: int) -> List[Any]:
        """Materialize partition ``i``, consulting the cache if enabled."""
        if not 0 <= i < self.num_partitions:
            raise IndexError(f"partition {i} out of range [0, {self.num_partitions})")
        if not self.should_cache:
            rows = self._compute(i)
            self.ctx.stats.record_compute(self.id, len(rows))
            return rows
        key = (self.id, i)
        hit = self.ctx.cache.get(key)
        if hit is not None:
            return hit
        # Cold partition: compute under a per-partition lock so concurrent
        # pulls (the pipelined backend) do the work once.  Lineage is a
        # DAG of distinct datasets, so a compute never re-enters its own
        # (dataset, partition) lock.
        with self._inflight.setdefault(i, threading.Lock()):
            # peek, not get: the miss was already counted above.
            hit = self.ctx.cache.peek(key)
            if hit is not None:
                return hit
            rows = self._compute(i)
            self.ctx.stats.record_compute(self.id, len(rows))
            self.ctx.cache.put(key, rows, estimate_partition_size(rows))
            return rows

    def _iter_partitions(self) -> Iterable[List[Any]]:
        for i in range(self.num_partitions):
            yield self.partition(i)

    def iter_partitions(self) -> Iterable[List[Any]]:
        """Yield every partition's row list, in partition order."""
        return self._iter_partitions()

    # ------------------------------------------------------------------
    # Pickling (materialize-on-serialize)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle as materialized partitions.

        Lineage (``_compute`` closures, parents, the owning context) is
        process-local and unpicklable by design; a dataset crossing a
        pickle boundary is frozen into its partition contents instead.
        Executing a plan against an unpickled source re-roots it into the
        execution context exactly like any other foreign dataset.
        """
        return {
            "name": self.name,
            "num_partitions": self.num_partitions,
            "partitions": [self.partition(i)
                           for i in range(self.num_partitions)],
            "should_cache": self.should_cache,
        }

    def __setstate__(self, state):
        ctx = Context()
        self.ctx = ctx
        self.id = ctx.next_dataset_id()
        self.num_partitions = state["num_partitions"]
        self._compute = _StoredPartitions(state["partitions"])
        self.parents = ()
        self.name = state["name"]
        self.should_cache = state["should_cache"]
        self._inflight = {}

    # ------------------------------------------------------------------
    # Transformations (lazy)
    # ------------------------------------------------------------------
    def map(self, f: Callable[[Any], Any], name: str = "") -> "Dataset":
        def compute(i: int) -> List[Any]:
            return [f(x) for x in self.partition(i)]

        return Dataset(self.ctx, self.num_partitions, compute, (self,),
                       name or f"map({self.name})")

    def flat_map(self, f: Callable[[Any], Iterable[Any]], name: str = "") -> "Dataset":
        def compute(i: int) -> List[Any]:
            out: List[Any] = []
            for x in self.partition(i):
                out.extend(f(x))
            return out

        return Dataset(self.ctx, self.num_partitions, compute, (self,),
                       name or f"flat_map({self.name})")

    def filter(self, pred: Callable[[Any], bool], name: str = "") -> "Dataset":
        def compute(i: int) -> List[Any]:
            return [x for x in self.partition(i) if pred(x)]

        return Dataset(self.ctx, self.num_partitions, compute, (self,),
                       name or f"filter({self.name})")

    def map_partitions(self, f: Callable[[List[Any]], List[Any]],
                       name: str = "") -> "Dataset":
        def compute(i: int) -> List[Any]:
            return list(f(self.partition(i)))

        return Dataset(self.ctx, self.num_partitions, compute, (self,),
                       name or f"map_partitions({self.name})")

    def zip(self, other: "Dataset", name: str = "") -> "Dataset":
        """Pairwise zip; both datasets must have identical partitioning."""
        if other.num_partitions != self.num_partitions:
            raise ValueError(
                "zip requires equal partition counts: "
                f"{self.num_partitions} != {other.num_partitions}")

        def compute(i: int) -> List[Any]:
            left, right = self.partition(i), other.partition(i)
            if len(left) != len(right):
                raise ValueError(
                    f"zip partition {i} length mismatch: {len(left)} != {len(right)}")
            return list(zip(left, right))

        return Dataset(self.ctx, self.num_partitions, compute, (self, other),
                       name or f"zip({self.name},{other.name})")

    def zip_with_index(self) -> "Dataset":
        offsets = [0]
        for i in range(self.num_partitions):
            offsets.append(offsets[-1] + len(self.partition(i)))

        def compute(i: int) -> List[Any]:
            base = offsets[i]
            return [(x, base + j) for j, x in enumerate(self.partition(i))]

        return Dataset(self.ctx, self.num_partitions, compute, (self,),
                       f"zip_with_index({self.name})")

    def union(self, other: "Dataset") -> "Dataset":
        total = self.num_partitions + other.num_partitions

        def compute(i: int) -> List[Any]:
            if i < self.num_partitions:
                return self.partition(i)
            return other.partition(i - self.num_partitions)

        return Dataset(self.ctx, total, compute, (self, other),
                       f"union({self.name},{other.name})")

    def sample(self, fraction: float, seed: int = 0) -> "Dataset":
        """Deterministic Bernoulli sample of roughly ``fraction`` of rows."""
        if not 0 <= fraction <= 1:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")

        def compute(i: int) -> List[Any]:
            rng = random.Random(seed * 1_000_003 + i)
            return [x for x in self.partition(i) if rng.random() < fraction]

        return Dataset(self.ctx, self.num_partitions, compute, (self,),
                       f"sample({self.name})")

    def glom(self) -> "Dataset":
        """One element per partition: the list of that partition's rows."""
        def compute(i: int) -> List[Any]:
            return [self.partition(i)]

        return Dataset(self.ctx, self.num_partitions, compute, (self,),
                       f"glom({self.name})")

    # ------------------------------------------------------------------
    # Caching
    # ------------------------------------------------------------------
    def cache(self) -> "Dataset":
        self.should_cache = True
        return self

    def unpersist(self) -> "Dataset":
        self.should_cache = False
        self.ctx.cache.invalidate(lambda key: key[0] == self.id)
        return self

    # ------------------------------------------------------------------
    # Actions (eager)
    # ------------------------------------------------------------------
    def collect(self) -> List[Any]:
        out: List[Any] = []
        for part in self._iter_partitions():
            out.extend(part)
        return out

    def count(self) -> int:
        return sum(len(part) for part in self._iter_partitions())

    def take(self, n: int) -> List[Any]:
        out: List[Any] = []
        for part in self._iter_partitions():
            out.extend(part[:n - len(out)])
            if len(out) >= n:
                break
        return out

    def first(self) -> Any:
        got = self.take(1)
        if not got:
            raise ValueError(f"dataset {self.name} is empty")
        return got[0]

    def reduce(self, f: Callable[[Any, Any], Any]) -> Any:
        acc = None
        seen = False
        for part in self._iter_partitions():
            for x in part:
                acc = x if not seen else f(acc, x)
                seen = True
        if not seen:
            raise ValueError(f"reduce on empty dataset {self.name}")
        return acc

    def aggregate(self, zero: Any, seq: Callable[[Any, Any], Any],
                  comb: Callable[[Any, Any], Any]) -> Any:
        """Per-partition fold + combine.

        ``zero`` is deep-copied per partition, so mutable accumulators
        (Counters, lists, arrays) are safe with in-place ``seq``/``comb``.
        """
        import copy

        partials = []
        for part in self._iter_partitions():
            acc = copy.deepcopy(zero)
            for x in part:
                acc = seq(acc, x)
            partials.append(acc)
        result = copy.deepcopy(zero)
        for p in partials:
            result = comb(result, p)
        return result

    def tree_aggregate(self, zero: Any, seq: Callable[[Any, Any], Any],
                       comb: Callable[[Any, Any], Any], depth: int = 2) -> Any:
        """Aggregation with a combining tree (models Spark's treeAggregate).

        Functionally identical to :meth:`aggregate`; the tree shape matters
        only for the communication cost models, but we keep the reduction
        order consistent with a binary combine tree for determinism.
        ``zero`` is deep-copied per partition (mutable accumulators are
        safe).
        """
        import copy

        partials = []
        for part in self._iter_partitions():
            acc = copy.deepcopy(zero)
            for x in part:
                acc = seq(acc, x)
            partials.append(acc)
        if not partials:
            return copy.deepcopy(zero)
        return comb(copy.deepcopy(zero), tree_combine(partials, comb))

    # ------------------------------------------------------------------
    # Numeric helpers
    # ------------------------------------------------------------------
    def to_numpy(self) -> np.ndarray:
        """Stack rows into a 2-D array (1-D rows) or 1-D array (scalars)."""
        rows = self.collect()
        return np.asarray(rows)

    def estimated_size_bytes(self, sample_partitions: int = 1) -> int:
        """Estimate total materialized size by measuring a few partitions."""
        k = min(sample_partitions, self.num_partitions)
        measured = sum(estimate_partition_size(self.partition(i)) for i in range(k))
        return int(measured * self.num_partitions / k)

    def __repr__(self) -> str:
        return (f"Dataset(id={self.id}, name={self.name!r}, "
                f"partitions={self.num_partitions}, cached={self.should_cache})")
