"""Byte-size estimation for cached partitions.

The materialization optimizer needs sizes of intermediate outputs.  The paper
estimates sizes by profiling a sample and extrapolating linearly; this module
provides the per-object measurement that profiling step uses.
"""

from __future__ import annotations

import sys
from typing import Any

import numpy as np
import scipy.sparse as sp

# Rough per-element overhead of a Python list cell (pointer) used when we
# shortcut homogeneous lists by measuring the first element.
_POINTER_BYTES = 8
# Lists longer than this are sampled instead of walked exhaustively.
_SAMPLE_THRESHOLD = 256


def estimate_size(obj: Any) -> int:
    """Estimate the memory footprint of ``obj`` in bytes.

    Handles numpy arrays, scipy sparse matrices, strings, and (possibly
    nested) containers.  For long homogeneous lists the estimate samples a
    few elements and extrapolates, which keeps profiling cheap.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if sp.issparse(obj):
        csr = obj.tocsr() if not sp.issparse(obj) else obj
        total = 0
        for attr in ("data", "indices", "indptr", "row", "col", "offsets"):
            arr = getattr(csr, attr, None)
            if isinstance(arr, np.ndarray):
                total += int(arr.nbytes)
        return max(total, 48)
    if isinstance(obj, (bytes, bytearray, str)):
        return sys.getsizeof(obj)
    if isinstance(obj, (int, float, bool, complex)):
        return sys.getsizeof(obj)
    if isinstance(obj, dict):
        inner = sum(estimate_size(k) + estimate_size(v) for k, v in obj.items())
        return sys.getsizeof(obj) + inner
    if isinstance(obj, (list, tuple)):
        n = len(obj)
        if n == 0:
            return sys.getsizeof(obj)
        if n > _SAMPLE_THRESHOLD:
            step = n // _SAMPLE_THRESHOLD
            sampled = obj[::step]
            per_elem = sum(estimate_size(x) for x in sampled) / len(sampled)
            return int(n * (per_elem + _POINTER_BYTES))
        return sys.getsizeof(obj) + sum(estimate_size(x) for x in obj)
    if hasattr(obj, "nbytes"):
        return int(obj.nbytes)
    return sys.getsizeof(obj)


def estimate_partition_size(rows: list) -> int:
    """Estimate the footprint of a materialized partition (a list of rows)."""
    return estimate_size(rows)
