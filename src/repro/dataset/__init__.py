"""In-process substitute for a distributed dataflow engine (Spark RDDs).

KeystoneML executes pipelines over lazy, partitioned, lineage-tracked
collections.  This package provides the same semantics in a single process:

- :class:`~repro.dataset.dataset.Dataset` — a lazy partitioned collection
  supporting ``map``/``map_partitions``/``zip``/``cache`` with deterministic
  recompute-on-cache-miss.
- :class:`~repro.dataset.cache.CacheManager` — a byte-budgeted cache with
  pluggable eviction policies (LRU, Spark-style admission-controlled LRU).
- :class:`~repro.dataset.context.Context` — owns a cache manager and the
  execution statistics used by the materialization experiments.
"""

from repro.dataset.cache import (
    AdmissionControlledLRUPolicy,
    CacheManager,
    CachePolicy,
    LRUPolicy,
    PinnedPolicy,
)
from repro.dataset.context import Context, ExecutionStats
from repro.dataset.dataset import Dataset
from repro.dataset.sizing import estimate_size

__all__ = [
    "AdmissionControlledLRUPolicy",
    "CacheManager",
    "CachePolicy",
    "Context",
    "Dataset",
    "ExecutionStats",
    "LRUPolicy",
    "PinnedPolicy",
    "estimate_size",
]
