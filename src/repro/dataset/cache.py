"""Byte-budgeted partition cache with pluggable eviction policies.

Three policies matter to the paper's experiments (Section 5.4):

- :class:`LRUPolicy` — plain least-recently-used, the Spark default.
- :class:`AdmissionControlledLRUPolicy` — LRU plus Spark's implicit admission
  control: an object larger than a fixed fraction of the budget is never
  admitted.  The paper observes this causes LRU to *worsen* with more memory
  on the Amazon pipeline.
- :class:`PinnedPolicy` — the KeystoneML strategy: only a pre-selected cache
  set (chosen by the greedy materialization algorithm) is admitted, and
  pinned entries are never evicted.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional


@dataclass
class CacheEntry:
    key: Hashable
    value: list
    size: int


class CachePolicy:
    """Decides admission and eviction for a :class:`CacheManager`."""

    def admits(self, key: Hashable, size: int, manager: "CacheManager") -> bool:
        raise NotImplementedError

    def victim(self, manager: "CacheManager") -> Optional[Hashable]:
        """Return the key to evict next, or ``None`` if nothing is evictable."""
        raise NotImplementedError

    def touched(self, key: Hashable, manager: "CacheManager") -> None:
        """Called on every cache hit; policies may update recency state."""


class LRUPolicy(CachePolicy):
    """Classic LRU: admit anything that can possibly fit, evict oldest."""

    def admits(self, key, size, manager):
        return size <= manager.budget

    def victim(self, manager):
        for key in manager.entries:
            return key
        return None

    def touched(self, key, manager):
        manager.entries.move_to_end(key)


class AdmissionControlledLRUPolicy(LRUPolicy):
    """LRU with Spark-style admission control.

    Objects larger than ``fraction`` of the total budget are refused, which
    reproduces Spark's behaviour of silently not caching huge blocks.
    """

    def __init__(self, fraction: float = 0.6):
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction

    def admits(self, key, size, manager):
        return size <= manager.budget * self.fraction


class PinnedPolicy(CachePolicy):
    """Admit only keys in a fixed cache set; never evict them.

    This is how KeystoneML's executor realizes the cache set chosen by the
    greedy materialization optimizer.
    """

    def __init__(self, cache_set: set):
        self.cache_set = set(cache_set)

    def admits(self, key, size, manager):
        # Keys are (dataset_id, partition); pinning a dataset id pins all of
        # its partitions.
        pinned = key in self.cache_set or (
            isinstance(key, tuple) and key and key[0] in self.cache_set)
        return pinned and size <= manager.budget

    def victim(self, manager):
        return None


class CacheManager:
    """Holds materialized partitions subject to a byte budget.

    Keys are ``(dataset_id, partition_index)`` pairs; values are lists of
    rows.  Eviction happens at insert time until the new entry fits, per the
    configured policy.

    Thread-safe: the pipelined execution backend pulls partitions of shared
    datasets from several threads, so every compound operation (hit
    bookkeeping, the admit/evict/insert sequence) runs under one lock —
    without it, concurrent evictions race ``entries.pop`` and corrupt the
    ``used`` accounting.  Policy callbacks run under the lock and must not
    call back into the manager.
    """

    def __init__(self, budget_bytes: float = float("inf"),
                 policy: Optional[CachePolicy] = None):
        self.budget = budget_bytes
        self.policy = policy or LRUPolicy()
        self.entries: OrderedDict[Hashable, CacheEntry] = OrderedDict()
        self.used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejections = 0
        self._lock = threading.RLock()

    def get(self, key: Hashable) -> Optional[list]:
        with self._lock:
            entry = self.entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            self.policy.touched(key, self)
            return entry.value

    def peek(self, key: Hashable) -> Optional[list]:
        """Like :meth:`get` but without hit/miss accounting.

        For re-checks after waiting on an in-flight compute, where the
        original lookup already counted the miss.
        """
        with self._lock:
            entry = self.entries.get(key)
            if entry is None:
                return None
            self.policy.touched(key, self)
            return entry.value

    def contains(self, key: Hashable) -> bool:
        with self._lock:
            return key in self.entries

    def put(self, key: Hashable, value: list, size: int) -> bool:
        """Insert ``value``; returns True if the entry was admitted."""
        with self._lock:
            if key in self.entries:
                return True
            if not self.policy.admits(key, size, self):
                self.rejections += 1
                return False
            while self.used + size > self.budget:
                victim = self.policy.victim(self)
                if victim is None:
                    self.rejections += 1
                    return False
                self._evict(victim)
            self.entries[key] = CacheEntry(key, value, size)
            self.used += size
            return True

    def _evict(self, key: Hashable) -> None:
        entry = self.entries.pop(key)
        self.used -= entry.size
        self.evictions += 1

    def invalidate(self, predicate) -> None:
        """Drop all entries whose key matches ``predicate``."""
        with self._lock:
            for key in [k for k in self.entries if predicate(k)]:
                entry = self.entries.pop(key)
                self.used -= entry.size

    def clear(self) -> None:
        with self._lock:
            self.entries.clear()
            self.used = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self.entries)
