"""Observability: content-keyed tracing, metrics, cost-model calibration.

Three pieces, layered bottom-up:

- :mod:`repro.obs.trace` — a :class:`Tracer` recording spans keyed by op
  content key across every execution path (parent process, process-pool
  shards, actor workers, serving), with Chrome ``trace_event`` export
  and per-op aggregation.  Disabled by default; the no-op fast path
  costs one global read per instrumentation site.
- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and bounded-reservoir histograms unifying training-report
  counters and serving stats.
- :mod:`repro.obs.calibrate` — a :class:`CostModelCalibrator` replaying
  observed spans against the cluster simulator's predictions and
  fitting the correction that feeds back into
  ``ShardingPass(workers="auto", calibration=...)``.
"""

from repro.obs.calibrate import CalibrationResult, CostModelCalibrator
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    Tracer,
    aggregate,
    aggregate_table,
    chrome_trace,
    export_chrome_trace,
)
from repro.obs import trace

__all__ = [
    "CalibrationResult",
    "CostModelCalibrator",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "aggregate",
    "aggregate_table",
    "chrome_trace",
    "export_chrome_trace",
    "trace",
]
