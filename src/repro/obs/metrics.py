"""A process-local metrics registry: counters, gauges, bounded histograms.

One :class:`MetricsRegistry` unifies the counters scattered across the
training path (:class:`~repro.core.executor.TrainingReport`) and the
serving tier (``ModelServer.stats()``): both render into a registry via
their ``fill_registry`` methods, giving a single flat ``to_dict()`` view
of a run.  All instruments are thread-safe and hold bounded memory —
a :class:`Histogram` keeps a fixed-size reservoir of recent samples
(exact counts and totals are kept separately), so long-lived servers
never grow an unbounded latency list.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Dict, List, Optional


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value (queue depth, bytes resident, ratios)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Bounded-reservoir distribution: exact count/total, recent window.

    The reservoir is a ring buffer of the last ``window`` observations —
    enough for stable tail percentiles at serving rates while holding
    memory constant.  ``percentile(q)`` is nearest-rank over the window
    with ``q`` in [0, 1] (the smallest value covering a ``q`` fraction).
    """

    __slots__ = ("name", "_lock", "_window", "count", "total")

    def __init__(self, name: str, window: int = 8192):
        self.name = name
        self._lock = threading.Lock()
        self._window: deque = deque(maxlen=window)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            self._window.append(value)

    @property
    def window_size(self) -> int:
        return self._window.maxlen or 0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def values(self) -> List[float]:
        """A snapshot of the current reservoir (at most ``window`` items)."""
        with self._lock:
            return list(self._window)

    def percentile(self, q: float) -> float:
        with self._lock:
            window = sorted(self._window)
        if not window:
            return 0.0
        idx = min(max(math.ceil(q * len(window)) - 1, 0), len(window) - 1)
        return window[idx]

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """A named collection of instruments with a flat dict rendering.

    Instruments are created on first use (``counter``/``gauge``/
    ``histogram``) and identified by name; asking for an existing name
    with a different instrument type raises.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, cls, *args) -> Any:
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = self._instruments[name] = cls(name, *args)
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, window: int = 8192) -> Histogram:
        return self._get(name, Histogram, window)

    # -- convenience ---------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def get(self, name: str) -> Optional[Any]:
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    # -- rendering -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Flat snapshot: counters/gauges to numbers, histograms to
        ``{count, mean, p50, p95, p99}`` sub-dicts."""
        with self._lock:
            items = list(self._instruments.items())
        out: Dict[str, Any] = {}
        for name, inst in sorted(items):
            if isinstance(inst, Histogram):
                out[name] = inst.snapshot()
            else:
                out[name] = inst.value
        return out

    def describe(self) -> str:
        lines = []
        for name, value in self.to_dict().items():
            if isinstance(value, dict):
                detail = ", ".join(f"{k}={v:.4g}" for k, v in value.items())
                lines.append(f"{name}: {detail}")
            elif isinstance(value, float):
                lines.append(f"{name}: {value:.4g}")
            else:
                lines.append(f"{name}: {value}")
        return "\n".join(lines)
