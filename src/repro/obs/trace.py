"""Content-keyed structured tracing across backends, workers, and serving.

A :class:`Tracer` records spans — timed intervals with parent links —
as plain dicts, so buffers can be pickled across process boundaries
and piggybacked on worker replies.  Spans optionally carry the
content-addressed **op key** of the work they measure (see
:mod:`repro.core.program`): the same logical op then correlates across
backends, repeated fits, and serving versions, regardless of which
process or worker executed it.

Design points:

* **No-op fast path.**  Instrumentation sites call the module-level
  :func:`span` / :func:`event` helpers, which read one module global and
  branch.  With tracing disabled (the default) the cost is a dict lookup
  and an ``is None`` test — no allocation, no locking.
* **Cross-process clocks.**  Span start timestamps come from
  ``time.time()`` (wall clock, comparable across processes on one
  machine); durations come from ``time.perf_counter()`` deltas taken in
  the recording process.  Chrome's trace viewer lines workers up on the
  shared wall clock.
* **Bounded buffers.**  A tracer holds at most ``max_spans`` records and
  counts drops beyond that; workers :meth:`~Tracer.drain` their buffer
  into each reply, the parent :meth:`~Tracer.absorb`\\ s them with
  per-span worker attribution.

Span records are dicts with keys ``id``, ``parent`` (both strings,
globally unique via the recording pid), ``name``, ``cat``, ``key`` (op
content key or ``""``), ``ts``/``dur`` (microseconds), ``pid``,
``proc`` (process name), ``tid``, ``args``, and ``kind`` (``"span"`` or
``"event"``); absorbed records gain ``worker``.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence


def _proc_name() -> str:
    try:
        return multiprocessing.current_process().name
    except Exception:  # pragma: no cover - defensive
        return "process"


class _NullSpan:
    """The disabled-tracing stand-in: a reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager recording one span into its tracer on exit."""

    __slots__ = ("_tracer", "_rec", "_t0")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        cat: str,
        key: Optional[str],
        args: Optional[Dict[str, Any]],
    ):
        self._tracer = tracer
        self._rec = {
            "name": name,
            "cat": cat,
            "key": key or "",
            "args": args or {},
        }
        self._t0 = 0.0

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        stack = tracer._stack()
        rec = self._rec
        rec["id"] = tracer._new_id()
        rec["parent"] = stack[-1] if stack else None
        rec["ts"] = time.time() * 1e6
        rec["pid"] = os.getpid()
        rec["proc"] = _proc_name()
        rec["tid"] = threading.get_ident()
        rec["kind"] = "span"
        stack.append(rec["id"])
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        rec = self._rec
        rec["dur"] = (time.perf_counter() - self._t0) * 1e6
        stack = self._tracer._stack()
        if stack and stack[-1] == rec["id"]:
            stack.pop()
        self._tracer._append(rec)
        return False


class Tracer:
    """A bounded, thread-safe span buffer with parent/child nesting.

    One tracer serves a whole run; nesting is tracked per thread via a
    thread-local span stack, so concurrent backends produce well-nested
    traces per ``(pid, tid)`` lane.
    """

    def __init__(self, max_spans: int = 100_000):
        self.max_spans = max_spans
        self.dropped = 0
        self._lock = threading.Lock()
        self._spans: List[Dict[str, Any]] = []
        self._seq = itertools.count(1)
        self._pid = os.getpid()
        self._tls = threading.local()

    # -- recording -----------------------------------------------------
    def span(
        self,
        name: str,
        *,
        cat: str = "op",
        key: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> _SpanHandle:
        """A context manager timing one interval under ``name``."""
        return _SpanHandle(self, name, cat, key, args)

    def event(
        self,
        name: str,
        *,
        cat: str = "event",
        key: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record an instant event (e.g. ``worker_restart``)."""
        stack = self._stack()
        self._append(
            {
                "name": name,
                "cat": cat,
                "key": key or "",
                "args": args or {},
                "id": self._new_id(),
                "parent": stack[-1] if stack else None,
                "ts": time.time() * 1e6,
                "dur": 0.0,
                "pid": os.getpid(),
                "proc": _proc_name(),
                "tid": threading.get_ident(),
                "kind": "event",
            }
        )

    def record(
        self,
        name: str,
        *,
        seconds: float,
        cat: str = "op",
        key: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record an already-measured interval ending now.

        The hot-loop alternative to :meth:`span` for code that already
        times itself (shard interpreters): one clock read, no context
        manager.
        """
        stack = self._stack()
        self._append(
            {
                "name": name,
                "cat": cat,
                "key": key or "",
                "args": args or {},
                "id": self._new_id(),
                "parent": stack[-1] if stack else None,
                "ts": time.time() * 1e6 - seconds * 1e6,
                "dur": seconds * 1e6,
                "pid": os.getpid(),
                "proc": _proc_name(),
                "tid": threading.get_ident(),
                "kind": "span",
            }
        )

    def _new_id(self) -> str:
        return f"{self._pid}-{next(self._seq)}"

    def _stack(self) -> List[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _append(self, rec: Dict[str, Any]) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
            else:
                self._spans.append(rec)

    # -- transport -----------------------------------------------------
    def drain(self) -> List[Dict[str, Any]]:
        """Return and clear the buffered records (worker reply payload)."""
        with self._lock:
            out, self._spans = self._spans, []
            return out

    def absorb(
        self,
        records: Optional[Iterable[Dict[str, Any]]],
        *,
        worker: Optional[str] = None,
    ) -> None:
        """Merge records drained from another process into this buffer.

        ``worker`` attributes every absorbed span to the worker lane it
        came from; records that already carry a worker tag keep it.
        """
        if not records:
            return
        with self._lock:
            for rec in records:
                if len(self._spans) >= self.max_spans:
                    self.dropped += 1
                    continue
                if worker is not None and "worker" not in rec:
                    rec = dict(rec)
                    rec["worker"] = worker
                self._spans.append(rec)

    # -- inspection ----------------------------------------------------
    @property
    def spans(self) -> List[Dict[str, Any]]:
        """A snapshot of every buffered record (spans and events)."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def aggregate(self) -> List[Dict[str, Any]]:
        return aggregate(self.spans)

    def aggregate_table(self) -> List[str]:
        return aggregate_table(self.spans)

    def chrome_trace(self) -> Dict[str, Any]:
        return chrome_trace(self.spans)

    def export_chrome_trace(self, path: str) -> str:
        return export_chrome_trace(self.spans, path)


# ----------------------------------------------------------------------
# Module-level active tracer (the instrumentation entry points)
# ----------------------------------------------------------------------

_active: Optional[Tracer] = None


def enable(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the active tracer."""
    global _active
    _active = tracer if tracer is not None else Tracer()
    return _active


def disable() -> Optional[Tracer]:
    """Deactivate tracing; returns the tracer that was active, if any."""
    global _active
    tracer, _active = _active, None
    return tracer


def active() -> Optional[Tracer]:
    """The active tracer, or ``None`` when tracing is disabled."""
    return _active


def enabled() -> bool:
    return _active is not None


def span(
    name: str,
    *,
    cat: str = "op",
    key: Optional[str] = None,
    args: Optional[Dict[str, Any]] = None,
):
    """A span on the active tracer, or a shared no-op when disabled."""
    tracer = _active
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, cat=cat, key=key, args=args)


def event(
    name: str,
    *,
    cat: str = "event",
    key: Optional[str] = None,
    args: Optional[Dict[str, Any]] = None,
) -> None:
    """An instant event on the active tracer; no-op when disabled."""
    tracer = _active
    if tracer is not None:
        tracer.event(name, cat=cat, key=key, args=args)


def absorb(
    records: Optional[Iterable[Dict[str, Any]]],
    *,
    worker: Optional[str] = None,
) -> None:
    """Absorb worker-drained records into the active tracer, if any."""
    tracer = _active
    if tracer is not None:
        tracer.absorb(records, worker=worker)


def instrument(
    name: str,
    fn: Callable[..., Any],
    *,
    cat: str = "op",
    key: Optional[str] = None,
    node_id: Optional[int] = None,
) -> Callable[..., Any]:
    """Wrap ``fn`` so each call runs under a span when tracing is active.

    The disabled path costs one global read and a branch per call — safe
    to leave on hot per-partition code paths permanently.
    """
    span_args = {"node_id": node_id} if node_id is not None else None

    def traced(*args: Any, **kwargs: Any) -> Any:
        tracer = _active
        if tracer is None:
            return fn(*args, **kwargs)
        with tracer.span(name, cat=cat, key=key, args=span_args):
            return fn(*args, **kwargs)

    return traced


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


def chrome_trace(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Render span records as a Chrome ``trace_event`` document.

    The result loads in ``chrome://tracing`` and Perfetto: spans become
    ``"ph": "X"`` complete events, instants become ``"ph": "i"``, and
    per-pid metadata events name each worker lane.
    """
    events: List[Dict[str, Any]] = []
    proc_names: Dict[int, str] = {}
    for rec in records:
        pid = rec.get("pid", 0)
        proc_names.setdefault(pid, rec.get("proc", f"pid {pid}"))
        args = dict(rec.get("args") or {})
        if rec.get("key"):
            args["key"] = rec["key"]
        if rec.get("worker"):
            args["worker"] = rec["worker"]
        ev = {
            "name": rec.get("name", "?"),
            "cat": rec.get("cat", "op"),
            "ts": rec.get("ts", 0.0),
            "pid": pid,
            "tid": rec.get("tid", 0),
            "args": args,
        }
        if rec.get("kind") == "event":
            ev["ph"] = "i"
            ev["s"] = "p"
        else:
            ev["ph"] = "X"
            ev["dur"] = rec.get("dur", 0.0)
        events.append(ev)
    for pid, name in proc_names.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(records: Sequence[Dict[str, Any]], path: str) -> str:
    """Write :func:`chrome_trace` JSON to ``path``; returns ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(records), fh)
    return path


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------


def aggregate(records: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-op totals grouped by content key (falling back to span name).

    Returns rows sorted by total seconds descending, each with ``name``,
    ``key``, ``count``, ``seconds``, and the set of process/worker lanes
    the op ran in (``procs``).
    """
    rows: Dict[str, Dict[str, Any]] = {}
    for rec in records:
        if rec.get("kind") == "event":
            continue
        group = rec.get("key") or rec.get("name", "?")
        row = rows.get(group)
        if row is None:
            row = rows[group] = {
                "name": rec.get("name", "?"),
                "key": rec.get("key", ""),
                "count": 0,
                "seconds": 0.0,
                "procs": set(),
            }
        row["count"] += 1
        row["seconds"] += rec.get("dur", 0.0) / 1e6
        row["procs"].add(rec.get("worker") or rec.get("proc", "?"))
    return sorted(rows.values(), key=lambda r: -r["seconds"])


def aggregate_table(records: Sequence[Dict[str, Any]]) -> List[str]:
    """The :func:`aggregate` rows formatted as fixed-width text lines."""
    rows = aggregate(records)
    lines = [f"{'op':<34} {'key':<14} {'count':>6} {'seconds':>9}  procs"]
    for row in rows:
        key = row["key"][:12] if row["key"] else "-"
        procs = ",".join(sorted(row["procs"]))
        lines.append(
            f"{row['name'][:34]:<34} {key:<14} {row['count']:>6} "
            f"{row['seconds']:>9.4f}  {procs}"
        )
    return lines


def node_seconds(
    records: Sequence[Dict[str, Any]],
    cats: Sequence[str] = ("op",),
) -> Dict[int, float]:
    """Total observed seconds per plan node id, from span ``args``.

    Only spans whose category is in ``cats`` contribute (worker-side op
    spans measure exclusive compute; parent-side ``fit`` spans are
    inclusive of nested waves and would double-count).
    """
    out: Dict[int, float] = {}
    for rec in records:
        if rec.get("kind") == "event" or rec.get("cat") not in cats:
            continue
        nid = (rec.get("args") or {}).get("node_id")
        if nid is None:
            continue
        out[nid] = out.get(nid, 0.0) + rec.get("dur", 0.0) / 1e6
    return out
