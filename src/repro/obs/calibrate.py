"""Cost-model calibration: replay observed spans against the simulator.

The optimizer's sharding and backend decisions rest on
:class:`~repro.cluster.simulator.ClusterSimulator` predictions built from
warmup-time profiles.  The :class:`CostModelCalibrator` closes the loop:
it joins the *measured* per-node seconds of a real run (from tracer
spans, see :func:`repro.obs.trace.node_seconds`, or from a
:class:`~repro.core.executor.TrainingReport`) with the simulator's
predicted stage seconds for the same nodes, then fits a single
multiplicative compute-rate correction.

The correction is the geometric mean of observed/predicted ratios — the
scale minimizing the root-mean-square log error, so calibration never
increases the error metric it reports.  The result feeds back into
``ShardingPass(workers="auto", calibration=...)`` (scaling the simulated
compute seconds and coordination bytes), and the before/after error
ratio is recorded to ``BENCH_costmodel_eval`` so CI gates prediction
truthfulness alongside speed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import trace as _trace


@dataclass(frozen=True)
class CalibrationResult:
    """A fitted correction plus the error it removed.

    ``compute_scale`` multiplies predicted compute seconds (>1 means the
    simulator was optimistic); ``network_scale`` multiplies coordinated
    bytes.  Errors are RMS |log(predicted/observed)| before and after
    applying the scale.
    """

    compute_scale: float = 1.0
    network_scale: float = 1.0
    error_before: float = 0.0
    error_after: float = 0.0
    samples: int = 0

    @property
    def error_ratio(self) -> float:
        """Before/after error — >1 means calibration helped (gated)."""
        if self.samples == 0:
            return 1.0
        return self.error_before / max(self.error_after, 1e-9)

    def describe(self) -> str:
        return (
            f"calibration over {self.samples} stages: "
            f"compute x{self.compute_scale:.3f}, "
            f"network x{self.network_scale:.3f}; "
            f"rms log error {self.error_before:.4f} -> "
            f"{self.error_after:.4f} "
            f"(ratio {self.error_ratio:.2f}x)"
        )


class CostModelCalibrator:
    """Accumulates (predicted, observed) stage pairs and fits the scale.

    Feed it either raw pairs via :meth:`observe` or a whole run via
    :meth:`observe_plan`, which prices every profiled node of the plan
    with the same stage rule ``ShardingPass(workers="auto")`` uses
    (:func:`repro.core.passes.simulated_node_stages`, at one worker —
    the serial prediction) and joins it against measured seconds.
    """

    def __init__(self, resources=None):
        self.resources = resources
        self._pairs: List[Tuple[str, float, float]] = []

    # -- feeding -------------------------------------------------------
    def observe(
        self, label: str, predicted_seconds: float, observed_seconds: float
    ) -> None:
        """Record one stage; pairs with a non-positive side are ignored
        (log-space ratios are undefined for them)."""
        if predicted_seconds > 0.0 and observed_seconds > 0.0:
            self._pairs.append((label, predicted_seconds, observed_seconds))

    def observe_plan(self, plan, spans=None, report=None) -> int:
        """Join a profiled plan's predictions with a run's measurements.

        ``spans`` supplies worker/parent op spans (category ``"op"``,
        carrying ``node_id`` args); ``report`` supplies
        ``TrainingReport.node_seconds`` as a fallback for nodes without
        spans.  Returns the number of pairs added.
        """
        from repro.cluster.resources import ResourceDescriptor
        from repro.cluster.simulator import ClusterSimulator
        from repro.core.passes import simulated_node_stages

        state = plan.state
        resources = self.resources or state.resources or ResourceDescriptor()
        observed: Dict[int, float] = {}
        if report is not None:
            observed.update(report.node_seconds)
            for nid, seconds in getattr(report, "estimator_seconds", {}).items():
                observed[nid] = observed.get(nid, 0.0) + seconds
        if spans is not None:
            # Span measurements win over report fallback where both exist.
            observed.update(_trace.node_seconds(spans, cats=("op",)))
        sim = ClusterSimulator(resources.with_nodes(1), overhead_per_stage=0.0)
        added = 0
        for node, stage in simulated_node_stages(state, resources=resources):
            seconds = observed.get(node.id)
            if seconds is None:
                continue
            before = len(self._pairs)
            self.observe(node.label, sim.time_stage(stage), seconds)
            added += len(self._pairs) - before
        return added

    # -- fitting -------------------------------------------------------
    @property
    def pairs(self) -> List[Tuple[str, float, float]]:
        return list(self._pairs)

    def error(self, scale: float = 1.0) -> float:
        """RMS |log(scale * predicted / observed)| over recorded pairs."""
        if not self._pairs:
            return 0.0
        total = 0.0
        for _, predicted, observed in self._pairs:
            total += math.log(scale * predicted / observed) ** 2
        return math.sqrt(total / len(self._pairs))

    def calibrate(self) -> CalibrationResult:
        """Fit the compute scale; identity when nothing was observed."""
        if not self._pairs:
            return CalibrationResult()
        mean_log = sum(
            math.log(observed / predicted) for _, predicted, observed in self._pairs
        ) / len(self._pairs)
        scale = math.exp(mean_log)
        return CalibrationResult(
            compute_scale=scale,
            network_scale=1.0,
            error_before=self.error(1.0),
            error_after=self.error(scale),
            samples=len(self._pairs),
        )

    # -- rendering -----------------------------------------------------
    def table(self, scale: float = 1.0) -> List[str]:
        """Observed-vs-predicted lines, one per recorded stage."""
        lines = [f"{'stage':<34} {'predicted s':>12} {'observed s':>12} {'ratio':>7}"]
        for label, predicted, observed in self._pairs:
            lines.append(
                f"{label[:34]:<34} {predicted * scale:>12.4f} "
                f"{observed:>12.4f} {observed / (predicted * scale):>7.2f}"
            )
        return lines
