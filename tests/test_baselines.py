"""Tests for the simulated comparison systems."""

import numpy as np
import pytest

from repro.baselines import (
    SystemMLSolver,
    TensorFlowSim,
    VowpalWabbitSolver,
    keystone_cifar_time,
    tensorflow_cifar_time,
)
from repro.cluster.resources import ResourceDescriptor
from repro.dataset import Context
from repro.nodes.learning.linear import LinearMapper


@pytest.fixture
def ctx():
    return Context(default_partitions=4)


def _problem(ctx, n=300, d=8, k=2, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, d))
    x_true = rng.standard_normal((d, k))
    b = a @ x_true
    return (ctx.parallelize(list(a), 4), ctx.parallelize(list(b), 4),
            a, b, x_true)


class TestVowpalWabbit:
    def test_converges_towards_exact(self, ctx):
        data, labels, a, b, x_true = _problem(ctx)
        vw = VowpalWabbitSolver(passes=30).fit(data, labels)
        zero = LinearMapper(np.zeros_like(vw.weights))
        assert vw.training_loss(data, labels) < \
            0.2 * zero.training_loss(data, labels)

    def test_more_passes_help(self, ctx):
        data, labels, *_ = _problem(ctx, seed=1)
        few = VowpalWabbitSolver(passes=1).fit(data, labels)
        many = VowpalWabbitSolver(passes=40).fit(data, labels)
        assert many.training_loss(data, labels) <= \
            few.training_loss(data, labels)

    def test_invalid_passes(self):
        with pytest.raises(ValueError, match="passes"):
            VowpalWabbitSolver(passes=0)


class TestSystemML:
    def test_cg_matches_exact_solution(self, ctx):
        data, labels, a, b, x_true = _problem(ctx)
        sysml = SystemMLSolver(max_iter=50, l2_reg=1e-10).fit(data, labels)
        np.testing.assert_allclose(sysml.weights, x_true, atol=1e-4)

    def test_conversion_flag(self, ctx):
        data, labels, *_ = _problem(ctx, seed=2)
        converted = SystemMLSolver(max_iter=20).fit(data, labels)
        direct = SystemMLSolver(max_iter=20, convert_input=False).fit(
            data, labels)
        np.testing.assert_allclose(converted.weights, direct.weights,
                                   atol=1e-8)

    def test_sparse_input(self, ctx):
        import scipy.sparse as sp

        rng = np.random.default_rng(3)
        rows = [sp.random(1, 30, density=0.3, format="csr",
                          random_state=i) for i in range(100)]
        x_true = rng.standard_normal((30, 2))
        ys = [np.asarray(r @ x_true).ravel() for r in rows]
        model = SystemMLSolver(max_iter=60, l2_reg=1e-10).fit(
            ctx.parallelize(rows, 4), ctx.parallelize(ys, 4))
        np.testing.assert_allclose(model.weights, x_true, atol=1e-3)

    def test_invalid_iters(self):
        with pytest.raises(ValueError, match="max_iter"):
            SystemMLSolver(max_iter=0)


class TestTensorFlowSim:
    """Table 6's scaling shapes."""

    def test_strong_scaling_improves_then_degrades(self):
        times = {w: tensorflow_cifar_time(w, "strong")
                 for w in (1, 2, 4, 8, 16, 32)}
        best = min(times, key=times.get)
        assert best in (2, 4, 8)          # optimum at small cluster
        assert times[32] > times[best]    # coordination blows up
        assert times[1] > times[best]

    def test_weak_scaling_fails_at_large_scale(self):
        assert tensorflow_cifar_time(16, "weak") is None
        assert tensorflow_cifar_time(32, "weak") is None
        assert tensorflow_cifar_time(4, "weak") is not None

    def test_keystone_keeps_scaling(self):
        times = [keystone_cifar_time(w) for w in (1, 2, 4, 8, 16, 32)]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_keystone_overtakes_tensorflow(self):
        """TF wins small clusters; KeystoneML wins at 8+ nodes (Table 6)."""
        tf4 = tensorflow_cifar_time(4, "strong")
        ks4 = keystone_cifar_time(4)
        tf32 = tensorflow_cifar_time(32, "strong")
        ks32 = keystone_cifar_time(32)
        assert ks32 < tf32
        assert ks32 < ks4

    def test_invalid_scaling_mode(self):
        sim = TensorFlowSim(ResourceDescriptor())
        with pytest.raises(ValueError, match="strong|weak"):
            sim.time_to_accuracy_minutes(4, scaling="diagonal")
