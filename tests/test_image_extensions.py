"""Tests for CenterCrop, Resizer, PixelNormalizer, HOGExtractor."""

import numpy as np
import pytest

from repro.nodes.images import (
    CenterCrop,
    HOGExtractor,
    PixelNormalizer,
    Resizer,
)


def _image(h=32, w=32, c=3, seed=0):
    return np.random.default_rng(seed).random((h, w, c))


class TestCenterCrop:
    def test_shape(self):
        out = CenterCrop(16).apply(_image(32, 32))
        assert out.shape == (16, 16, 3)

    def test_centered(self):
        img = np.zeros((8, 8, 1))
        img[3:5, 3:5, 0] = 1.0
        out = CenterCrop(2).apply(img)
        np.testing.assert_allclose(out[:, :, 0], 1.0)

    def test_too_small(self):
        with pytest.raises(ValueError, match="smaller"):
            CenterCrop(64).apply(_image(32, 32))

    def test_invalid_size(self):
        with pytest.raises(ValueError, match="size"):
            CenterCrop(0)


class TestResizer:
    def test_shape(self):
        out = Resizer(10, 20).apply(_image(32, 32))
        assert out.shape == (10, 20, 3)

    def test_identity_resize(self):
        img = _image(8, 8)
        np.testing.assert_allclose(Resizer(8, 8).apply(img), img)

    def test_upscale(self):
        img = np.arange(4.0).reshape(2, 2, 1)
        out = Resizer(4, 4).apply(img)
        assert out.shape == (4, 4, 1)
        assert out[0, 0, 0] == img[0, 0, 0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            Resizer(0, 4)


class TestPixelNormalizer:
    def test_zero_mean_unit_std(self):
        out = PixelNormalizer().apply(_image(16, 16))
        assert abs(out.mean()) < 1e-10
        assert abs(out.std() - 1.0) < 1e-6

    def test_constant_image_safe(self):
        out = PixelNormalizer().apply(np.full((4, 4, 1), 3.0))
        assert np.all(np.isfinite(out))


class TestHOG:
    def test_dims(self):
        out = HOGExtractor(cell=8, bins=9).apply(_image(32, 32))
        assert out.shape == (4 * 4 * 9,)

    def test_normalized(self):
        out = HOGExtractor().apply(_image(32, 32, 1, seed=1))
        assert np.linalg.norm(out) == pytest.approx(1.0, abs=1e-6)

    def test_oriented_structure(self):
        """A pure horizontal gradient concentrates one orientation bin."""
        img = np.tile(np.linspace(0, 1, 32), (32, 1))
        out = HOGExtractor(cell=8, bins=9).apply(img)
        per_bin = out.reshape(-1, 9).sum(axis=0)
        assert per_bin.max() > 5 * (np.median(per_bin) + 1e-12)

    def test_color_accepted(self):
        assert HOGExtractor().apply(_image(16, 16, 3)).ndim == 1

    def test_too_small(self):
        with pytest.raises(ValueError, match="smaller"):
            HOGExtractor(cell=16).apply(np.zeros((8, 8)))
