"""Pickle round-trip contracts: the prerequisite for process workers.

ProcessPoolBackend ships operators, fitted models and plan fragments
across a spawn boundary, so everything the training/inference DAGs carry
must survive ``pickle.dumps``/``loads`` with byte-identical behaviour:

- every registry workload's ``FittedPipeline`` round-trips and predicts
  byte-identically (single-item and batch);
- a ``PhysicalPlan`` annotated by each pass stack (none / pipe / full /
  full+sharding) round-trips — decision log, profile, cache set, shard
  roles intact — and the unpickled plan *trains* to byte-identical
  predictions;
- datasets pickle by materializing their partitions (lineage is
  process-local by design);
- small user functions (the paper's ``x => 1`` weighting lambda) pack
  through :mod:`repro.core.serde`;
- a lowered :class:`~repro.core.program.OpProgram` — the process
  backend's wire format — round-trips with content keys, slots and
  byte-identical replay intact.
"""

import pickle

import pytest

from repro.core.optimizer import Optimizer, passes_for_level
from repro.core.passes import ShardingPass
from repro.core.serde import pack_callable, unpack_callable
from repro.dataset import Context
from repro.nodes.text import TermFrequency
from repro.workloads import amazon_reviews
from workload_scenarios import SCENARIOS, comparable


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


class TestFittedPipelineRoundTrip:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_registry_fitted_pipelines_roundtrip(self, name):
        pipe, items = SCENARIOS[name](Context())
        fitted = pipe.fit(level="none")
        expected = comparable([fitted.apply(x) for x in items])

        loaded = roundtrip(fitted)
        assert comparable([loaded.apply(x) for x in items]) == expected
        batch = loaded.apply_dataset(Context().parallelize(items, 3))
        assert comparable(batch.collect()) == expected

    def test_roundtrip_twice_is_stable(self):
        """The first round-trip materializes lazily-built state; a second
        one must behave identically (no one-shot __getstate__)."""
        pipe, items = SCENARIOS["timit"](Context())
        fitted = pipe.fit(level="none")
        expected = comparable([fitted.apply(x) for x in items])
        loaded = roundtrip(roundtrip(fitted))
        assert comparable([loaded.apply(x) for x in items]) == expected


def _text_builder(ctx, wl):
    from workload_scenarios import _text_pipeline

    return _text_pipeline(ctx, wl)


PASS_STACKS = {
    "none": lambda: passes_for_level("none"),
    "pipe": lambda: passes_for_level("pipe", sample_sizes=(20, 40)),
    "full": lambda: passes_for_level("full", sample_sizes=(20, 40)),
    "full+sharding": lambda: (passes_for_level("full", sample_sizes=(20, 40))
                              + [ShardingPass(workers=4)]),
}


class TestPlanStateRoundTrip:
    @pytest.mark.parametrize("stack", sorted(PASS_STACKS))
    def test_annotated_plan_roundtrips_and_trains(self, stack):
        wl = amazon_reviews(120, 12, vocab_size=200, seed=0)
        plan = Optimizer(PASS_STACKS[stack]()).optimize(
            _text_builder(Context(), wl))
        expected = comparable(plan.execute().apply_dataset(
            wl.test_data(Context())).collect())

        loaded = roundtrip(plan)
        state = loaded.state
        assert loaded.passes == plan.passes
        assert [d.name for d in state.decisions] == \
            [d.name for d in plan.state.decisions]
        assert state.cache_ids == plan.state.cache_ids
        assert state.shard_workers == plan.state.shard_workers
        assert state.shard_roles == plan.state.shard_roles
        if plan.profile is not None:
            assert set(state.profile.nodes) == set(plan.profile.nodes)
        assert loaded.explain() == plan.explain()

        got = comparable(loaded.execute().apply_dataset(
            wl.test_data(Context())).collect())
        assert got == expected


class TestOpProgramRoundTrip:
    @pytest.mark.parametrize("name", ["amazon", "timit"])
    def test_lowered_program_roundtrips(self, name):
        from repro.core.program import lower_inference_program
        from repro.serving.compiler import InferencePlan

        pipe, items = SCENARIOS[name](Context())
        fitted = pipe.fit(level="none")
        program = lower_inference_program(fitted)
        loaded = roundtrip(program)
        assert [op.key for op in loaded] == [op.key for op in program]
        assert [op.slot for op in loaded] == [op.slot for op in program]
        assert loaded.root_slots == program.root_slots
        assert loaded.input_slot == program.input_slot
        got = comparable([InferencePlan(loaded).run_item(x) for x in items])
        assert got == comparable([fitted.apply(x) for x in items])


class TestDatasetPickling:
    def test_materializes_partitions(self):
        ctx = Context()
        ds = ctx.parallelize(list(range(20)), 5).map(lambda x: x * x)
        loaded = roundtrip(ds)
        assert loaded.num_partitions == 5
        assert loaded.collect() == [x * x for x in range(20)]
        # Pulls must not alias internal storage.
        first = loaded.partition(0)
        first.append(999)
        assert loaded.partition(0) == [0, 1, 4, 9]


class TestCallablePacking:
    def test_plain_function_passes_through(self):
        tag, payload = pack_callable(len)
        assert tag == "pickle" and payload is len

    def test_lambda_roundtrips(self):
        packed = roundtrip(pack_callable(lambda c: 1.0))
        assert unpack_callable(packed)(7) == 1.0

    def test_closure_over_plain_data_roundtrips(self):
        scale = 3.0
        packed = roundtrip(pack_callable(lambda x: x * scale))
        assert unpack_callable(packed)(2) == 6.0

    def test_keyword_only_defaults_survive(self):
        packed = roundtrip(pack_callable(lambda c, *, base=2.0: c * base))
        fn = unpack_callable(packed)
        assert fn(3) == 6.0
        assert fn(3, base=10.0) == 30.0

    def test_closure_over_unpicklable_state_raises(self):
        import threading

        lock = threading.Lock()
        with pytest.raises(TypeError, match="closes over"):
            pack_callable(lambda x: (lock, x))

    def test_term_frequency_lambda_weighting(self):
        tf = roundtrip(TermFrequency(lambda c: float(c > 1)))
        assert tf.apply(["a", "a", "b"]) == {"a": 1.0, "b": 0.0}
