"""Integration tests: alternative pipelines built from the extended
operator library (TF-IDF text, HOG images) still train and predict well."""

import numpy as np

from repro.core.pipeline import Pipeline
from repro.dataset import Context
from repro.evaluation import MulticlassMetrics, accuracy
from repro.nodes.images import HOGExtractor
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.numeric import (
    InterceptAdder,
    MaxClassifier,
    MinMaxScaler,
    Normalizer,
)
from repro.nodes.text import (
    CommonSparseFeatures,
    IDFEstimator,
    LowerCase,
    NGramsFeaturizer,
    StopWordRemover,
    SuffixStemmer,
    TermFrequency,
    Tokenizer,
)
from repro.workloads import amazon_reviews, voc_images


class TestTfidfTextPipeline:
    def test_full_text_stack_beats_chance(self):
        ctx = Context()
        wl = amazon_reviews(400, 100, vocab_size=1000, seed=0)
        data = wl.train_data(ctx)
        labels = wl.train_label_vectors(ctx)
        pipe = (Pipeline.identity()
                .and_then(LowerCase())
                .and_then(Tokenizer())
                .and_then(StopWordRemover())
                .and_then(SuffixStemmer())
                .and_then(NGramsFeaturizer(1, 2))
                .and_then(TermFrequency())
                .and_then(IDFEstimator(), data)
                .and_then(CommonSparseFeatures(500), data)
                .and_then(LinearSolver(lbfgs_iters=25), data, labels))
        fitted = pipe.fit(sample_sizes=(30, 60))
        preds = [MaxClassifier().apply(s) for s in
                 fitted.apply_dataset(wl.test_data(ctx)).collect()]
        assert accuracy(preds, wl.test_labels) > 0.75

    def test_idf_and_common_features_share_prefix_via_cse(self):
        """Two estimators bound to the same data merge their featurization."""
        ctx = Context()
        wl = amazon_reviews(200, 20, vocab_size=500, seed=1)
        data = wl.train_data(ctx)
        labels = wl.train_label_vectors(ctx)
        pipe = (Pipeline.identity()
                .and_then(Tokenizer())
                .and_then(TermFrequency())
                .and_then(IDFEstimator(), data)
                .and_then(CommonSparseFeatures(200), data)
                .and_then(LinearSolver(lbfgs_iters=10), data, labels))
        fitted = pipe.fit(level="pipe", sample_sizes=(20, 40))
        assert fitted.training_report.cse_nodes_removed > 0


class TestHogImagePipeline:
    def test_hog_classifier_beats_chance(self):
        ctx = Context()
        wl = voc_images(80, 40, size=48, num_classes=4, noise=0.3, seed=0)
        data = wl.train_data(ctx)
        labels = wl.train_label_vectors(ctx)
        pipe = (Pipeline.identity()
                .and_then(HOGExtractor(cell=8, bins=9))
                .and_then(Normalizer())
                .and_then(InterceptAdder())
                .and_then(LinearSolver(), data, labels))
        fitted = pipe.fit(sample_sizes=(10, 20))
        scores = fitted.apply_dataset(wl.test_data(ctx)).collect()
        metrics = MulticlassMetrics(scores, wl.test_labels, wl.num_classes)
        assert metrics.accuracy > 0.5  # chance = 0.25
        assert metrics.summary()["f1"] > 0.4

    def test_minmax_scaler_inside_pipeline(self):
        ctx = Context()
        wl = voc_images(30, 10, size=48, num_classes=3, seed=1)
        data = wl.train_data(ctx)
        labels = wl.train_label_vectors(ctx)
        pipe = (Pipeline.identity()
                .and_then(HOGExtractor(cell=8))
                .and_then(MinMaxScaler(), data)
                .and_then(LinearSolver(), data, labels))
        fitted = pipe.fit(level="pipe", sample_sizes=(8, 16))
        out = fitted.apply(wl.test_items[0])
        assert np.asarray(out).shape == (3,)
