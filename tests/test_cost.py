"""Tests for the cost-model framework (CostProfile, Eq. 1 pricing)."""

import pytest

from repro.cluster.resources import ResourceDescriptor
from repro.core.stats import DataStats
from repro.cost import CostModel, CostProfile, estimate_cost, execution_seconds


class TestCostProfile:
    def test_addition(self):
        a = CostProfile(1, 2, 3)
        b = CostProfile(10, 20, 30)
        total = a + b
        assert (total.flops, total.bytes, total.network) == (11, 22, 33)

    def test_scaling(self):
        p = CostProfile(1, 2, 3) * 4
        assert (p.flops, p.bytes, p.network) == (4, 8, 12)

    def test_rmul(self):
        p = 2 * CostProfile(1, 1, 1)
        assert p.flops == 2

    def test_zero_identity(self):
        p = CostProfile(5, 6, 7)
        total = p + CostProfile.zero()
        assert total == p

    def test_frozen(self):
        p = CostProfile(1, 2, 3)
        with pytest.raises(Exception):
            p.flops = 10


class TestPricing:
    def test_execution_seconds_components(self):
        res = ResourceDescriptor(cpu_flops=1e9, memory_bandwidth=1e9,
                                 network_bandwidth=1e8)
        p = CostProfile(flops=2e9, bytes=3e9, network=5e8)
        assert execution_seconds(p, res) == pytest.approx(2 + 3 + 5)

    def test_faster_cluster_cheaper(self):
        slow = ResourceDescriptor(cpu_flops=1e9)
        fast = ResourceDescriptor(cpu_flops=1e12)
        p = CostProfile(flops=1e12)
        assert execution_seconds(p, fast) < execution_seconds(p, slow)

    def test_estimate_cost_uses_workers(self):
        class PerWorkerModel(CostModel):
            name = "per-worker"

            def cost(self, stats, workers):
                return CostProfile(flops=1e9 / workers)

        res1 = ResourceDescriptor(num_nodes=1, cpu_flops=1e9)
        res8 = ResourceDescriptor(num_nodes=8, cpu_flops=1e9)
        stats = DataStats(n=100, d=10)
        model = PerWorkerModel()
        assert estimate_cost(model, stats, res8) == pytest.approx(
            estimate_cost(model, stats, res1) / 8)

    def test_default_feasible(self):
        class AnyModel(CostModel):
            def cost(self, stats, workers):
                return CostProfile()

        res = ResourceDescriptor()
        assert AnyModel().feasible(DataStats(n=1), res)


class TestDataStats:
    def test_nnz_per_row(self):
        stats = DataStats(n=100, d=1000, sparsity=0.01)
        assert stats.nnz_per_row == pytest.approx(10)

    def test_is_sparse(self):
        assert DataStats(n=1, d=10, sparsity=0.01).is_sparse
        assert not DataStats(n=1, d=10, sparsity=0.9).is_sparse

    def test_with_k(self):
        stats = DataStats(n=5, d=3).with_k(7)
        assert stats.k == 7
        assert stats.n == 5

    def test_total_bytes(self):
        stats = DataStats(n=10, bytes_per_row=100.0)
        assert stats.total_bytes == 1000
