"""Unit tests for the observability subsystem (repro.obs)."""

import json
import os
import threading

import pytest

from repro.core.executor import TrainingReport
from repro.obs import (
    CostModelCalibrator,
    Histogram,
    MetricsRegistry,
    Tracer,
    aggregate,
)
from repro.obs import trace as obs_trace


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with tracing disabled."""
    obs_trace.disable()
    yield
    obs_trace.disable()


class TestTracer:
    def test_nesting_assigns_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("tick")
        spans = tracer.spans
        by_name = {s["name"]: s for s in spans}
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["tick"]["parent"] == by_name["inner"]["id"]
        assert by_name["tick"]["kind"] == "event"
        # inner closed before outer: duration containment holds
        outer, inner = by_name["outer"], by_name["inner"]
        assert inner["dur"] <= outer["dur"]

    def test_ids_are_globally_unique_strings(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        rec = tracer.spans[0]
        assert rec["id"].startswith(f"{os.getpid()}-")

    def test_record_is_post_hoc(self):
        tracer = Tracer()
        tracer.record("op", seconds=0.5, key="k1", args={"node_id": 3})
        rec = tracer.spans[0]
        assert rec["dur"] == pytest.approx(0.5e6)
        assert rec["key"] == "k1"
        assert rec["kind"] == "span"

    def test_bounded_buffer_counts_drops(self):
        tracer = Tracer(max_spans=2)
        for _ in range(5):
            tracer.event("e")
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_drain_and_absorb_round_trip(self):
        worker = Tracer()
        worker.record("op", seconds=0.1, key="k")
        drained = worker.drain()
        assert len(worker) == 0
        parent = Tracer()
        parent.absorb(drained, worker="shard0")
        assert parent.spans[0]["worker"] == "shard0"

    def test_chrome_trace_is_valid_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", key="k1"):
            tracer.event("mark")
        path = str(tmp_path / "trace.json")
        tracer.export_chrome_trace(path)
        with open(path) as fh:
            doc = json.load(fh)
        phases = {ev["ph"] for ev in doc["traceEvents"]}
        assert phases == {"X", "i", "M"}
        complete = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert complete[0]["args"]["key"] == "k1"
        meta = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
        assert meta[0]["name"] == "process_name"

    def test_aggregate_groups_by_content_key(self):
        tracer = Tracer()
        tracer.record("tokenize@A", seconds=0.2, key="same")
        tracer.record("tokenize@B", seconds=0.3, key="same")
        tracer.record("other", seconds=0.1)
        rows = aggregate(tracer.spans)
        assert rows[0]["key"] == "same"
        assert rows[0]["count"] == 2
        assert rows[0]["seconds"] == pytest.approx(0.5)

    def test_node_seconds_filters_by_category(self):
        tracer = Tracer()
        tracer.record("op", seconds=0.2, args={"node_id": 7})
        with tracer.span("fit", cat="fit", args={"node_id": 7}):
            pass
        seconds = obs_trace.node_seconds(tracer.spans)
        assert seconds == {7: pytest.approx(0.2)}


class TestModuleLevelFastPath:
    def test_disabled_span_is_shared_noop(self):
        assert obs_trace.span("x") is obs_trace.span("y")
        with obs_trace.span("x"):
            pass  # no tracer: nothing recorded, nothing raised
        obs_trace.event("e")
        obs_trace.absorb([{"name": "r"}])

    def test_enable_disable(self):
        tracer = obs_trace.enable()
        assert obs_trace.active() is tracer
        with obs_trace.span("x"):
            pass
        assert obs_trace.disable() is tracer
        assert not obs_trace.enabled()
        assert len(tracer) == 1

    def test_instrument_checks_per_call(self):
        calls = []
        fn = obs_trace.instrument("wrapped", lambda v: calls.append(v), node_id=1)
        fn(1)  # disabled: plain call
        tracer = obs_trace.enable()
        fn(2)
        obs_trace.disable()
        fn(3)
        assert calls == [1, 2, 3]
        assert len(tracer) == 1
        assert tracer.spans[0]["args"] == {"node_id": 1}


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.inc("requests")
        reg.inc("requests", 2)
        reg.set("depth", 4.0)
        for v in [1.0, 2.0, 3.0]:
            reg.observe("latency", v)
        out = reg.to_dict()
        assert out["requests"] == 3
        assert out["depth"] == 4.0
        assert out["latency"]["count"] == 3
        assert out["latency"]["mean"] == pytest.approx(2.0)

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_create_or_get_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")

    def test_histogram_window_is_bounded(self):
        h = Histogram("h", window=4)
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100  # exact count survives eviction
        assert h.total == pytest.approx(sum(range(100)))
        assert len(h.values()) == 4  # but the reservoir is bounded
        assert h.percentile(0.0) == 96.0

    def test_histogram_percentile_matches_latency_recorder(self):
        from repro.serving.metrics import LatencyRecorder

        values = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0]
        h = Histogram("h")
        rec = LatencyRecorder()
        for v in values:
            h.observe(v)
            rec.record(v)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert h.percentile(q) == rec.percentile(q)

    def test_thread_safety_of_counter(self):
        reg = MetricsRegistry()

        def bump():
            for _ in range(1000):
                reg.inc("n")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.get("n").value == 4000


class TestTrainingReportSummary:
    def _report(self):
        return TrainingReport(
            level="full", backend="actors[workers=2]",
            optimize_seconds=0.5, execute_seconds=2.0,
            cse_nodes_removed=3, recomputations=7,
            actor_iterative=["KMeansEstimator"], worker_restarts=1,
            shard_state_hits=4, shard_state_misses=2,
            bytes_shipped=1024, bytes_mapped=2048)

    def test_summary_mentions_the_facts(self):
        text = self._report().summary()
        assert "actors[workers=2]" in text
        assert "2.000s" in text
        assert "4 hits" in text
        assert "restarts 1" in text

    def test_summary_omits_irrelevant_sections(self):
        text = TrainingReport(level="none", backend="local").summary()
        assert "actors:" not in text
        assert "process:" not in text

    def test_to_dict_is_registry_backed(self):
        out = self._report().to_dict()
        assert out["backend"] == "actors[workers=2]"
        assert out["execute_seconds"] == 2.0
        assert out["worker_restarts"] == 1
        assert out["bytes_shipped"] == 1024

    def test_fill_registry_prefixes(self):
        reg = self._report().fill_registry(prefix="training")
        assert reg.get("training.worker_restarts").value == 1


class TestCostModelCalibrator:
    def test_calibration_reduces_error(self):
        cal = CostModelCalibrator()
        for pred, obs in [(1.0, 2.1), (2.0, 3.9), (0.5, 1.05)]:
            cal.observe("n", pred, obs)
        result = cal.calibrate()
        assert result.samples == 3
        assert result.compute_scale == pytest.approx(2.0, rel=0.1)
        assert result.error_after < result.error_before
        assert result.error_ratio > 1.0

    def test_empty_calibrator_is_identity(self):
        result = CostModelCalibrator().calibrate()
        assert result.compute_scale == 1.0
        assert result.error_ratio == 1.0

    def test_nonpositive_pairs_skipped(self):
        cal = CostModelCalibrator()
        cal.observe("n", 0.0, 1.0)
        cal.observe("n", 1.0, 0.0)
        assert cal.pairs == []


class TestPlanObservedExplain:
    def _plan(self):
        from repro.core.optimizer import Optimizer, passes_for_level
        from repro.core.pipeline import Pipeline
        from repro.dataset import Context
        from repro.nodes.text import (
            CommonSparseFeatures,
            TermFrequency,
            Tokenizer,
        )

        ctx = Context()
        data = ctx.parallelize([f"doc {i % 5}" for i in range(20)], 2)
        pipe = (
            Pipeline.identity()
            .and_then(Tokenizer())
            .and_then(TermFrequency(lambda c: 1.0))
            .and_then(CommonSparseFeatures(5), data)
        )
        return Optimizer(passes_for_level("none")).optimize(pipe)

    def test_observed_explain_annotates_empty_trace(self):
        text = self._plan().explain(observed=True)
        assert "no spans recorded" in text

    def test_observed_explain_renders_span_table(self):
        plan = self._plan()
        tracer = obs_trace.enable()
        try:
            plan.execute()
        finally:
            obs_trace.disable()
        text = plan.explain(observed=True, tracer=tracer)
        assert "observed ops" in text
        assert "Tokenizer" in text

    def test_sharding_pass_accepts_calibration(self):
        from repro.cluster.resources import r3_4xlarge
        from repro.cluster.simulator import ClusterSimulator
        from repro.core.optimizer import Optimizer, passes_for_level
        from repro.core.passes import ShardingPass, simulated_node_stages
        from repro.core.pipeline import Pipeline
        from repro.dataset import Context
        from repro.nodes.text import (
            CommonSparseFeatures,
            TermFrequency,
            Tokenizer,
        )

        ctx = Context()
        data = ctx.parallelize([f"doc {i % 5}" for i in range(40)], 2)
        pipe = (
            Pipeline.identity()
            .and_then(Tokenizer())
            .and_then(TermFrequency(lambda c: 1.0))
            .and_then(CommonSparseFeatures(5), data)
        )
        plan = Optimizer(passes_for_level("full", sample_sizes=(10, 20))).optimize(
            pipe, resources=r3_4xlarge(4)
        )
        sim = ClusterSimulator(r3_4xlarge(1), overhead_per_stage=0.0)
        base = sum(
            sim.time_stage(stage) for _, stage in simulated_node_stages(plan.state)
        )
        doubled = sum(
            sim.time_stage(stage)
            for _, stage in simulated_node_stages(plan.state, compute_scale=2.0)
        )
        assert doubled == pytest.approx(2.0 * base, rel=1e-6)
        # and the pass itself accepts a calibration object
        result = CostModelCalibrator()
        for pred, obs in [(1.0, 2.0), (2.0, 4.0)]:
            result.observe("n", pred, obs)
        ShardingPass(workers="auto", calibration=result.calibrate())
