"""Tests for numeric vector operators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.dataset import Context
from repro.nodes.numeric import (
    Cacher,
    ClassLabelIndicator,
    ColumnSampler,
    Densify,
    Flatten,
    MaxClassifier,
    Normalizer,
    SignedPower,
    Sparsify,
    StandardScaler,
    TopKClassifier,
    VectorCombiner,
)


class TestConversions:
    def test_densify(self):
        row = sp.csr_matrix(([3.0], ([0], [1])), shape=(1, 4))
        np.testing.assert_allclose(Densify().apply(row), [0, 3, 0, 0])

    def test_sparsify_roundtrip(self):
        vec = np.array([0.0, 1.0, 0.0, 2.0])
        row = Sparsify().apply(vec)
        assert sp.issparse(row)
        np.testing.assert_allclose(Densify().apply(row), vec)

    def test_flatten_matrix(self):
        out = Flatten().apply(np.ones((2, 3)))
        assert out.shape == (6,)

    def test_flatten_sparse(self):
        out = Flatten().apply(sp.csr_matrix((1, 5)))
        assert out.shape == (5,)


class TestNormalizer:
    def test_unit_norm(self):
        out = Normalizer().apply(np.array([3.0, 4.0]))
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_zero_vector_safe(self):
        out = Normalizer().apply(np.zeros(3))
        assert np.all(np.isfinite(out))

    def test_matrix_rows_normalized(self):
        mat = np.array([[3.0, 4.0], [6.0, 8.0]])
        out = Normalizer().apply(mat)
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), [1.0, 1.0])

    def test_sparse_row(self):
        row = sp.csr_matrix(np.array([[3.0, 4.0]]))
        out = Normalizer().apply(row)
        assert abs(np.sqrt(out.multiply(out).sum()) - 1.0) < 1e-6


class TestSignedPower:
    def test_preserves_sign(self):
        out = SignedPower(0.5).apply(np.array([-4.0, 9.0]))
        np.testing.assert_allclose(out, [-2.0, 3.0])

    def test_identity_power(self):
        vec = np.array([-1.5, 2.5])
        np.testing.assert_allclose(SignedPower(1.0).apply(vec), vec)


class TestStandardScaler:
    def test_standardizes(self):
        ctx = Context()
        rng = np.random.default_rng(0)
        rows = [rng.normal(5.0, 2.0, size=4) for _ in range(500)]
        scaler = StandardScaler().fit(ctx.parallelize(rows, 4))
        out = np.vstack([scaler.apply(r) for r in rows])
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-6)

    def test_without_std(self):
        ctx = Context()
        rows = [np.array([1.0, 10.0]), np.array([3.0, 20.0])]
        scaler = StandardScaler(with_std=False).fit(ctx.parallelize(rows, 1))
        out = scaler.apply(np.array([2.0, 15.0]))
        np.testing.assert_allclose(out, [0.0, 0.0], atol=1e-9)


class TestColumnSampler:
    def test_subsamples_large_matrix(self):
        sampler = ColumnSampler(10, seed=0)
        out = sampler.apply(np.arange(200.0).reshape(50, 4))
        assert out.shape == (10, 4)

    def test_passes_small_matrix(self):
        mat = np.ones((5, 4))
        out = ColumnSampler(10).apply(mat)
        assert out.shape == (5, 4)

    def test_deterministic(self):
        mat = np.arange(400.0).reshape(100, 4)
        a = ColumnSampler(7, seed=3).apply(mat)
        b = ColumnSampler(7, seed=3).apply(mat)
        np.testing.assert_array_equal(a, b)

    def test_rejects_vector(self):
        with pytest.raises(ValueError, match="2-D"):
            ColumnSampler(5).apply(np.ones(10))

    def test_invalid_count(self):
        with pytest.raises(ValueError, match="num_samples"):
            ColumnSampler(0)


class TestLabels:
    def test_indicator(self):
        vec = ClassLabelIndicator(4).apply(2)
        np.testing.assert_allclose(vec, [-1, -1, 1, -1])

    def test_indicator_custom_negative(self):
        vec = ClassLabelIndicator(3, negative=0.0).apply(0)
        np.testing.assert_allclose(vec, [1, 0, 0])

    def test_indicator_needs_multiclass(self):
        with pytest.raises(ValueError, match="num_classes"):
            ClassLabelIndicator(1)

    def test_max_classifier(self):
        assert MaxClassifier().apply(np.array([0.1, 0.9, 0.5])) == 1

    def test_max_classifier_sparse(self):
        row = sp.csr_matrix(np.array([[0.0, 2.0, 1.0]]))
        assert MaxClassifier().apply(row) == 1

    def test_topk(self):
        out = TopKClassifier(2).apply(np.array([0.1, 0.9, 0.5]))
        assert out == [1, 2]

    def test_topk_larger_than_dims(self):
        out = TopKClassifier(10).apply(np.array([0.3, 0.1]))
        assert out == [0, 1]

    def test_topk_invalid(self):
        with pytest.raises(ValueError, match="k must"):
            TopKClassifier(0)


class TestCombiners:
    def test_vector_combiner(self):
        out = VectorCombiner().apply([np.ones(2), np.zeros(3)])
        np.testing.assert_allclose(out, [1, 1, 0, 0, 0])

    def test_vector_combiner_with_sparse(self):
        out = VectorCombiner().apply([sp.csr_matrix(np.ones((1, 2))),
                                      np.zeros(2)])
        assert out.shape == (4,)

    def test_cacher_identity(self):
        assert Cacher().apply("anything") == "anything"
