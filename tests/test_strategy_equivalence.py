"""Caching and optimization must never change pipeline *results*.

The paper's optimizations rely on operators being deterministic and
side-effect free; these integration tests verify the invariant the whole
design rests on: any combination of optimization level, caching strategy,
memory budget, and fusion yields the same fitted pipeline outputs.
"""

import numpy as np
import pytest

from repro.dataset import Context
from repro.pipelines import amazon_pipeline, timit_pipeline, voc_pipeline
from repro.workloads import amazon_reviews, timit_frames, voc_images


def _scores(fitted, wl):
    ctx = Context()
    return [np.asarray(s, dtype=float).ravel()
            for s in fitted.apply_dataset(wl.test_data(ctx)).take(20)]


class TestAmazonInvariance:
    @pytest.fixture(scope="class")
    def setup(self):
        wl = amazon_reviews(300, 40, vocab_size=800, seed=3)

        def build():
            ctx = Context()
            return amazon_pipeline(ctx, wl, num_features=300,
                                   lbfgs_iters=15)

        reference = _scores(build().fit(level="none"), wl)
        return wl, build, reference

    @pytest.mark.parametrize("strategy", ["greedy", "lru", "rule"])
    def test_strategies_equal_results(self, setup, strategy):
        wl, build, reference = setup
        fitted = build().fit(level="pipe", sample_sizes=(20, 40),
                             cache_strategy=strategy,
                             mem_budget_bytes=5e6)
        for a, b in zip(reference, _scores(fitted, wl)):
            np.testing.assert_allclose(a, b, atol=1e-8)

    def test_fusion_equal_results(self, setup):
        wl, build, reference = setup
        fitted = build().fit(level="pipe", sample_sizes=(20, 40),
                             fuse=True)
        for a, b in zip(reference, _scores(fitted, wl)):
            np.testing.assert_allclose(a, b, atol=1e-8)

    def test_tiny_budget_equal_results(self, setup):
        wl, build, reference = setup
        fitted = build().fit(level="pipe", sample_sizes=(20, 40),
                             mem_budget_bytes=0)
        for a, b in zip(reference, _scores(fitted, wl)):
            np.testing.assert_allclose(a, b, atol=1e-8)


class TestTimitInvariance:
    def test_levels_equal_results(self):
        wl = timit_frames(200, 30, dim=32, num_classes=5, seed=1)

        def build():
            ctx = Context()
            return timit_pipeline(ctx, wl, num_feature_blocks=2,
                                  block_size=32, gamma=0.05)

        # "none" runs default L-BFGS; "pipe" same solver with caching —
        # identical math, so identical scores.
        ref = _scores(build().fit(level="none"), wl)
        cached = _scores(build().fit(level="pipe", sample_sizes=(20, 40)),
                         wl)
        for a, b in zip(ref, cached):
            np.testing.assert_allclose(a, b, atol=1e-8)


class TestVocInvariance:
    def test_caching_strategies_equal_results(self):
        wl = voc_images(30, 10, size=48, num_classes=3, seed=2)

        def build():
            ctx = Context()
            return voc_pipeline(ctx, wl, pca_dims=8, gmm_components=3,
                                sampled_descriptors=60)

        ref = None
        for strategy in ("greedy", "lru", "rule"):
            fitted = build().fit(level="pipe", sample_sizes=(8, 16),
                                 cache_strategy=strategy,
                                 mem_budget_bytes=1e8)
            scores = _scores(fitted, wl)
            if ref is None:
                ref = scores
            else:
                for a, b in zip(ref, scores):
                    np.testing.assert_allclose(a, b, atol=1e-7)
