"""Tests for the linear solvers and their Table-1 cost models."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cluster.resources import ResourceDescriptor, local_machine, \
    r3_4xlarge
from repro.core.stats import DataStats
from repro.dataset import Context
from repro.nodes.learning.linear import (
    BlockCoordinateSolver,
    DistributedQRSolver,
    LBFGSSolver,
    LinearMapper,
    LinearSolver,
    LocalQRCostModel,
    LocalQRSolver,
    SGDSolver,
)


@pytest.fixture
def ctx():
    return Context(default_partitions=4)


def _planted_problem(ctx, n=200, d=10, k=3, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, d))
    x_true = rng.standard_normal((d, k))
    b = a @ x_true + noise * rng.standard_normal((n, k))
    data = ctx.parallelize(list(a), 4)
    labels = ctx.parallelize(list(b), 4)
    return data, labels, x_true


class TestSolverCorrectness:
    @pytest.mark.parametrize("solver_cls,atol", [
        (LocalQRSolver, 1e-6),
        (DistributedQRSolver, 1e-6),
        (LBFGSSolver, 1e-3),
        (BlockCoordinateSolver, 1e-4),
    ])
    def test_recovers_planted_model(self, ctx, solver_cls, atol):
        data, labels, x_true = _planted_problem(ctx)
        if solver_cls is BlockCoordinateSolver:
            model = solver_cls(block_size=4, epochs=20).fit(data, labels)
        elif solver_cls is LBFGSSolver:
            model = solver_cls(max_iter=200).fit(data, labels)
        else:
            model = solver_cls().fit(data, labels)
        np.testing.assert_allclose(model.weights, x_true, atol=atol)

    def test_sgd_reduces_loss(self, ctx):
        data, labels, x_true = _planted_problem(ctx, noise=0.1)
        model = SGDSolver(epochs=20, learning_rate=0.02).fit(data, labels)
        baseline = LinearMapper(np.zeros_like(model.weights))
        assert model.training_loss(data, labels) < \
            0.5 * baseline.training_loss(data, labels)

    def test_lbfgs_sparse_input(self, ctx):
        rng = np.random.default_rng(1)
        d, n = 50, 150
        x_true = rng.standard_normal((d, 2))
        rows, ys = [], []
        for _ in range(n):
            row = sp.random(1, d, density=0.2, format="csr",
                            random_state=rng.integers(1 << 31))
            rows.append(row)
            ys.append(np.asarray(row @ x_true).ravel())
        data = ctx.parallelize(rows, 4)
        labels = ctx.parallelize(ys, 4)
        model = LBFGSSolver(max_iter=300).fit(data, labels)
        assert model.training_loss(data, labels) < 1e-3

    def test_solvers_agree(self, ctx):
        data, labels, _ = _planted_problem(ctx, noise=0.2, seed=2)
        exact = LocalQRSolver().fit(data, labels)
        dist = DistributedQRSolver().fit(data, labels)
        np.testing.assert_allclose(exact.weights, dist.weights, atol=1e-6)

    def test_ridge_shrinks_weights(self, ctx):
        data, labels, _ = _planted_problem(ctx, seed=3)
        plain = LocalQRSolver(l2_reg=1e-10).fit(data, labels)
        ridge = LocalQRSolver(l2_reg=100.0).fit(data, labels)
        assert np.linalg.norm(ridge.weights) < np.linalg.norm(plain.weights)

    def test_iteration_counting(self, ctx):
        data, labels, _ = _planted_problem(ctx)
        solver = LBFGSSolver(max_iter=5)
        solver.fit(data, labels)
        assert 1 <= solver.iterations_run <= 5 + 22  # scipy may line-search

    def test_block_solver_weight_reflects_blocks(self, ctx):
        data, labels, _ = _planted_problem(ctx, d=10)
        solver = BlockCoordinateSolver(block_size=3, epochs=2)
        solver.fit(data, labels)
        assert solver.weight == 2 * 4  # ceil(10/3) = 4 blocks x 2 epochs


class TestLinearMapper:
    def test_apply_dense_and_sparse_rows(self):
        mapper = LinearMapper(np.eye(3))
        np.testing.assert_allclose(mapper.apply(np.array([1.0, 2.0, 3.0])),
                                   [1, 2, 3])
        row = sp.csr_matrix(np.array([[1.0, 0.0, 2.0]]))
        np.testing.assert_allclose(mapper.apply(row), [1, 0, 2])

    def test_intercept(self):
        mapper = LinearMapper(np.eye(2), intercept=np.array([10.0, 20.0]))
        np.testing.assert_allclose(mapper.apply(np.array([1.0, 1.0])),
                                   [11.0, 21.0])

    def test_apply_partition_matches_apply(self, ctx):
        rng = np.random.default_rng(0)
        mapper = LinearMapper(rng.standard_normal((4, 2)))
        rows = [rng.standard_normal(4) for _ in range(5)]
        batch = mapper.apply_partition(rows)
        single = [mapper.apply(r) for r in rows]
        np.testing.assert_allclose(np.vstack(batch), np.vstack(single))


class TestParameterValidation:
    def test_lbfgs_bad_iters(self):
        with pytest.raises(ValueError, match="max_iter"):
            LBFGSSolver(max_iter=0)

    def test_block_bad_params(self):
        with pytest.raises(ValueError, match="block_size"):
            BlockCoordinateSolver(block_size=0)
        with pytest.raises(ValueError, match="epochs"):
            BlockCoordinateSolver(epochs=0)

    def test_sgd_bad_epochs(self):
        with pytest.raises(ValueError, match="epochs"):
            SGDSolver(epochs=0)


class TestCostModelSelection:
    """The paper's Figure 6 selection patterns."""

    def _choice(self, stats, res):
        solver = LinearSolver()
        return type(solver.optimize(stats, res)).__name__

    def test_sparse_features_choose_lbfgs(self):
        stats = DataStats(n=1_000_000, d=100_000, k=2, sparsity=0.001)
        assert self._choice(stats, r3_4xlarge(16)) == "LBFGSSolver"

    def test_small_dense_chooses_exact(self):
        stats = DataStats(n=2_000_000, d=1024, k=2, sparsity=1.0)
        assert self._choice(stats, r3_4xlarge(16)) in (
            "LocalQRSolver", "DistributedQRSolver")

    def test_wide_dense_multiclass_chooses_block(self):
        stats = DataStats(n=2_000_000, d=65_536, k=147, sparsity=1.0)
        assert self._choice(stats, r3_4xlarge(16)) == \
            "BlockCoordinateSolver"

    def test_exact_infeasible_when_memory_exceeded(self):
        """The paper's exact-solver crash beyond 4k sparse features."""
        stats = DataStats(n=65_000_000, d=8192, k=2, sparsity=0.001)
        model = LocalQRCostModel(LocalQRSolver())
        assert not model.feasible(stats, r3_4xlarge(16))

    def test_local_feasible_small(self):
        stats = DataStats(n=1000, d=10, k=2)
        model = LocalQRCostModel(LocalQRSolver())
        assert model.feasible(stats, local_machine())

    def test_cost_table_lists_all_options(self):
        solver = LinearSolver()
        table = solver.cost_table(DataStats(n=1000, d=10, k=2),
                                  local_machine())
        names = {name for name, _ in table}
        assert names == {"local-qr", "distributed-qr", "lbfgs",
                         "block-solver"}

    def test_no_feasible_option_raises(self):
        stats = DataStats(n=int(1e15), d=int(1e9), k=1000, sparsity=1.0)
        tiny = ResourceDescriptor(num_nodes=1, memory_bytes=1e6)
        with pytest.raises(RuntimeError, match="no feasible"):
            LinearSolver().optimize(stats, tiny)

    def test_unoptimized_default_solver(self, ctx):
        data, labels, x_true = _planted_problem(ctx)
        model = LinearSolver(lbfgs_iters=200).fit(data, labels)  # L-BFGS
        np.testing.assert_allclose(model.weights, x_true, atol=1e-3)

    def test_unknown_default_rejected(self, ctx):
        data, labels, _ = _planted_problem(ctx)
        with pytest.raises(ValueError, match="unknown default"):
            LinearSolver(default="quantum").fit(data, labels)
