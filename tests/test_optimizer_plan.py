"""Tests for the composable optimizer: pass registry, plans, shims."""

import pytest

from repro.core import graph as g
from repro.core.operators import LabelEstimator, Transformer
from repro.core.optimizer import Optimizer, default_passes, passes_for_level
from repro.core.passes import (
    CSEPass,
    FusionPass,
    MaterializationPass,
    OperatorSelectionPass,
    Pass,
    ProfilingPass,
)
from repro.core.pipeline import Pipeline
from repro.dataset import Context
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.text import (
    CommonSparseFeatures,
    LowerCase,
    NGramsFeaturizer,
    TermFrequency,
    Tokenizer,
)
from repro.workloads import amazon_reviews


class Add(Transformer):
    def __init__(self, c):
        self.c = c

    def apply(self, x):
        return x + self.c


class MeanShift(LabelEstimator):
    def fit(self, data, labels):
        mean = sum(data.collect()) / data.count()

        class Sub(Transformer):
            def apply(self, x, _m=mean):
                return x - _m

        return Sub()


def numeric_pipeline(ctx):
    data = ctx.parallelize([float(i) for i in range(30)], 2)
    labels = ctx.parallelize([float(i) for i in range(30)], 2)
    return (Pipeline.identity()
            .and_then(Add(1.0))
            .and_then(Add(2.0))
            .and_then(MeanShift(), data, labels))


def text_pipeline(ctx, wl):
    data = wl.train_data(ctx)
    labels = wl.train_label_vectors(ctx)
    return (Pipeline.identity()
            .and_then(LowerCase())
            .and_then(Tokenizer())
            .and_then(NGramsFeaturizer(1, 2))
            .and_then(TermFrequency(lambda c: 1.0))
            .and_then(CommonSparseFeatures(200), data)
            .and_then(LinearSolver(), data, labels))


class Tag(Pass):
    """A user-defined no-op pass that leaves a mark in the decision log."""

    def __init__(self, tag, log=None):
        self.tag = tag
        self.log = log

    @property
    def name(self):
        return f"Tag({self.tag})"

    def run(self, state):
        if self.log is not None:
            self.log.append(self.tag)
        state.annotate(tag=self.tag)


class TestRegistry:
    def test_default_passes_are_full_stack(self):
        names = Optimizer().pass_names()
        assert names == ["CSEPass", "OperatorSelectionPass",
                         "MaterializationPass"]

    def test_insert_before_after_remove(self):
        opt = Optimizer(default_passes())
        opt.insert_before("OperatorSelectionPass", Tag("a"))
        opt.insert_after("MaterializationPass", Tag("b"))
        opt.remove("CSEPass")
        assert opt.pass_names() == ["Tag(a)", "OperatorSelectionPass",
                                    "MaterializationPass", "Tag(b)"]

    def test_unknown_pass_name_raises(self):
        with pytest.raises(KeyError, match="no pass named"):
            Optimizer().remove("NoSuchPass")

    def test_passes_run_in_registry_order(self):
        log = []
        opt = Optimizer([Tag("first", log), Tag("second", log),
                         Tag("third", log)])
        plan = opt.optimize(numeric_pipeline(Context()))
        assert log == ["first", "second", "third"]
        assert plan.passes == ["Tag(first)", "Tag(second)", "Tag(third)"]


class TestCustomPass:
    def test_custom_pass_round_trips_and_explains(self):
        opt = Optimizer(passes_for_level("pipe", sample_sizes=(5, 10)))
        opt.insert_after("CSEPass", Tag("custom"))
        plan = opt.optimize(numeric_pipeline(Context()))
        assert "Tag(custom)" in plan.passes
        assert "tag=custom" in plan.explain()
        # The plan still trains correctly with the extra pass in place.
        fitted = plan.execute()
        assert fitted.apply(1.0) is not None

    def test_rewrite_pass_can_change_the_dag(self):
        class DropAdds(Pass):
            """Delete every Add transformer node (a user rewrite)."""

            def run(self, state):
                dropped = 0
                memo = {}

                def rebuild(node):
                    nonlocal dropped
                    if node.id in memo:
                        return memo[node.id]
                    new_parents = tuple(rebuild(p) for p in node.parents)
                    if (node.kind == g.TRANSFORMER
                            and isinstance(node.op, Add)):
                        dropped += 1
                        out = new_parents[0]
                    elif all(a is b for a, b in zip(new_parents,
                                                    node.parents)):
                        out = node
                    else:
                        out = g.OpNode(node.kind, node.op, new_parents,
                                       node.label)
                    memo[node.id] = out
                    return out

                state.sink = rebuild(state.sink)
                state.annotate(dropped=dropped)

        plan = Optimizer([DropAdds()]).optimize(numeric_pipeline(Context()))
        labels = [n.label for n in g.ancestors([plan.sink])]
        assert "Add" not in labels
        # Two Adds on the inference path plus their training-flow copies.
        assert "dropped=4" in plan.explain()


class TestPhysicalPlan:
    def test_explain_lists_decisions(self):
        wl = amazon_reviews(200, 20, vocab_size=300, seed=0)
        opt = Optimizer(passes_for_level("full", sample_sizes=(20, 40)))
        plan = opt.optimize(text_pipeline(Context(), wl))
        text = plan.explain()
        for name in ("CSEPass", "OperatorSelectionPass",
                     "MaterializationPass"):
            assert name in text
        assert "nodes_removed=" in text
        assert "selections={" in text and "LinearSolver" in text
        assert "strategy=greedy" in text
        assert "cache set" in text
        for label in plan.cache_set_labels:
            assert label in text

    def test_same_labeled_selections_not_shadowed(self):
        # Two distinct LinearSolver estimators share the default label;
        # explain() must report both physical choices, id-disambiguated.
        wl = amazon_reviews(200, 20, vocab_size=300, seed=0)
        ctx = Context()
        data, labels = wl.train_data(ctx), wl.train_label_vectors(ctx)
        base = (Pipeline.identity()
                .and_then(LowerCase())
                .and_then(Tokenizer())
                .and_then(NGramsFeaturizer(1, 1))
                .and_then(TermFrequency(lambda c: 1.0))
                .and_then(CommonSparseFeatures(100), data))
        branch1 = base.and_then(LinearSolver(), data, labels)
        branch2 = base.and_then(LinearSolver(), data, labels)
        pipe = Pipeline.gather([branch1, branch2])

        opt = Optimizer(passes_for_level("full", sample_sizes=(20, 40)))
        plan = opt.optimize(pipe)
        assert len(plan.selections) == 2
        selection_entry = [d for d in plan.decisions
                           if d.name == "OperatorSelectionPass"][0]
        annotated = selection_entry.details["selections"]
        assert len(annotated) == 2
        assert all(key.startswith("LinearSolver#") for key in annotated)

    def test_estimates_before_execution(self):
        ctx = Context()
        opt = Optimizer(passes_for_level("full", sample_sizes=(5, 10)))
        plan = opt.optimize(numeric_pipeline(ctx))
        assert plan.estimated_runtime_seconds() >= 0.0
        assert plan.estimated_cache_bytes() >= 0.0

    def test_no_profile_means_no_estimates(self):
        plan = Optimizer(passes_for_level("none")).optimize(
            numeric_pipeline(Context()))
        assert plan.estimated_runtime_seconds() is None
        assert plan.profile is None

    def test_to_dot_highlights_cache_set(self):
        opt = Optimizer(passes_for_level("full", sample_sizes=(5, 10)))
        plan = opt.optimize(numeric_pipeline(Context()))
        dot = plan.to_dot()
        assert dot.count("fillcolor") == len(plan.cache_set)

    def test_stale_profile_estimates_degrade_to_none(self):
        # Without a MaterializationPass guard, inspection must not crash
        # on a profile whose node ids the rewrite invalidated.
        plan = Optimizer([CSEPass(), ProfilingPass((5, 10)), FusionPass()]) \
            .optimize(numeric_pipeline(Context()))
        assert plan.estimated_runtime_seconds() is None
        assert "FusionPass" in plan.explain()

    def test_replacement_state_keeps_decision_log(self):
        class Replace(Pass):
            def run(self, state):
                from repro.core.plan import PlanState

                return PlanState(sink=state.sink,
                                 input_node=state.input_node,
                                 resources=state.resources)

        plan = Optimizer([Tag("a"), Replace(), Tag("b")]).optimize(
            numeric_pipeline(Context()))
        assert plan.passes == ["Tag(a)", "Replace", "Tag(b)"]

    def test_stale_cache_set_refused_at_execute(self):
        # A rewrite after MaterializationPass orphans the cache ids;
        # execute must refuse rather than silently recompute everything.
        from repro.core.operators import Iterative

        class IterShift(MeanShift, Iterative):
            weight = 6  # iterated input: greedy always caches upstream

        ctx = Context()
        data = ctx.parallelize([float(i) for i in range(30)], 2)
        labels = ctx.parallelize([float(i) for i in range(30)], 2)
        pipe = (Pipeline.identity().and_then(Add(1.0)).and_then(Add(2.0))
                .and_then(IterShift(), data, labels))
        passes = [CSEPass(), ProfilingPass((5, 10)), MaterializationPass(),
                  FusionPass()]
        plan = Optimizer(passes).optimize(pipe)
        assert plan.cache_set, "expected the iterated input to be cached"
        assert plan.estimated_cache_bytes() is None
        with pytest.raises(ValueError, match="cache set is stale"):
            plan.execute()

    def test_stale_profile_detected(self):
        # Fusing after profiling invalidates node identities; the
        # materialization pass must refuse rather than mis-cost the plan.
        passes = [CSEPass(), ProfilingPass((5, 10)), FusionPass(),
                  MaterializationPass()]
        with pytest.raises(ValueError, match="profile is stale"):
            Optimizer(passes).optimize(numeric_pipeline(Context()))


class TestLevelShims:
    @pytest.mark.parametrize("level,expected", [
        ("none", ["MaterializationPass"]),
        ("pipe", ["CSEPass", "ProfilingPass", "MaterializationPass"]),
        ("full", ["CSEPass", "OperatorSelectionPass", "MaterializationPass"]),
    ])
    def test_level_pass_lists(self, level, expected):
        assert [p.name for p in passes_for_level(level)] == expected

    def test_fit_reports_passes(self):
        fitted = numeric_pipeline(Context()).fit(level="pipe",
                                                 sample_sizes=(5, 10))
        assert fitted.training_report.passes == [
            "CSEPass", "ProfilingPass", "MaterializationPass"]

    def test_fit_accepts_explicit_passes(self):
        fitted = numeric_pipeline(Context()).fit(
            passes=[CSEPass(), MaterializationPass()])
        assert fitted.training_report.passes == ["CSEPass",
                                                 "MaterializationPass"]
        assert fitted.training_report.level == "custom"
        assert fitted.apply(1.0) is not None

    def test_fit_validates_level_even_with_explicit_passes(self):
        with pytest.raises(ValueError, match="unknown optimization level"):
            numeric_pipeline(Context()).fit(level="turbo",
                                            passes=[MaterializationPass()])

    def test_fit_rejects_shim_kwargs_alongside_passes(self):
        with pytest.raises(TypeError, match="no effect when passes="):
            numeric_pipeline(Context()).fit(fuse=True,
                                            passes=[MaterializationPass()])
        with pytest.raises(TypeError, match="no effect when passes="):
            numeric_pipeline(Context()).fit(sample_sizes=(5, 10),
                                            passes=[MaterializationPass()])
        # Explicitly passing the default value is still an explicit pass.
        with pytest.raises(TypeError, match="no effect when passes="):
            numeric_pipeline(Context()).fit(sample_sizes=(256, 512),
                                            passes=[MaterializationPass()])

    def test_shim_equivalent_to_explicit_passes(self):
        """fit(level=...) and optimize(passes_for_level(...)).execute()
        produce identical predictions on an end-to-end text pipeline."""
        wl = amazon_reviews(200, 20, vocab_size=300, seed=0)
        test_docs = ["great product love it", "terrible waste of money"]

        via_fit = text_pipeline(Context(), wl).fit(level="full",
                                                   sample_sizes=(20, 40))
        plan = Optimizer(passes_for_level("full", sample_sizes=(20, 40))) \
            .optimize(text_pipeline(Context(), wl))
        via_plan = plan.execute()

        assert (via_fit.training_report.passes
                == via_plan.training_report.passes)
        for doc in test_docs:
            assert list(via_fit.apply(doc)) == pytest.approx(
                list(via_plan.apply(doc)))

    def test_plan_decisions_match_fit_report(self):
        wl = amazon_reviews(200, 20, vocab_size=300, seed=0)
        plan = Optimizer(passes_for_level("full", sample_sizes=(20, 40))) \
            .optimize(text_pipeline(Context(), wl), level="full")
        fitted = plan.execute()
        report = fitted.training_report
        assert report.level == "full"
        assert report.cache_set == plan.cache_set
        assert report.selections == plan.selections


class TestFusionRespectsLevel:
    def _fused_labels(self, fitted):
        return [lbl for lbl in fitted.training_report.node_labels.values()
                if "FusedTransformer" in lbl]

    def test_fuse_ignored_at_level_none(self):
        """Regression: fuse=True used to bypass the optimization level."""
        with pytest.warns(UserWarning, match="fuse=True ignored"):
            fitted = numeric_pipeline(Context()).fit(level="none", fuse=True)
        assert "FusionPass" not in fitted.training_report.passes
        assert self._fused_labels(fitted) == []

    def test_fuse_applies_at_optimized_levels(self):
        fitted = numeric_pipeline(Context()).fit(level="pipe", fuse=True,
                                                 sample_sizes=(5, 10))
        assert "FusionPass" in fitted.training_report.passes
        assert len(self._fused_labels(fitted)) > 0
        assert fitted.training_report.fused_nodes_removed > 0

    def test_fusion_pass_position(self):
        names = [p.name for p in passes_for_level("full", fuse=True)]
        assert names == ["CSEPass", "FusionPass", "OperatorSelectionPass",
                         "MaterializationPass"]


class TestMaterializationPass:
    def test_unknown_strategy_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown caching strategy"):
            MaterializationPass(strategy="bogus")

    def test_lru_without_profile_marks_intermediates(self):
        plan = Optimizer([MaterializationPass(strategy="lru",
                                              mem_budget_bytes=1e9)]) \
            .optimize(numeric_pipeline(Context()))
        assert plan.state.use_lru
        assert len(plan.cache_set) > 0
