"""Failure injection: errors surface clearly, never silently corrupt."""

import multiprocessing
import os

import numpy as np
import pytest

from repro.core.backends import ActorBackend
from repro.core.operators import Estimator, Transformer
from repro.core.optimizer import Optimizer, passes_for_level
from repro.core.pipeline import Pipeline
from repro.dataset import Context
from repro.nodes.learning.kmeans import KMeansEstimator
from repro.nodes.learning.linear import LBFGSSolver, LocalQRSolver
from repro.nodes.text import CommonSparseFeatures
from workload_scenarios import comparable


class ExplodingTransformer(Transformer):
    """Fails on a specific poison value."""

    def apply(self, x):
        if x == "poison":
            raise RuntimeError("poisoned item reached the transformer")
        return x


class ExplodingEstimator(Estimator):
    def fit(self, data):
        raise RuntimeError("estimator exploded during fit")


class TestErrorPropagation:
    def test_transformer_error_surfaces_on_action(self):
        ctx = Context()
        ds = ctx.parallelize(["ok", "poison"], 2).map(
            ExplodingTransformer().apply)
        with pytest.raises(RuntimeError, match="poisoned"):
            ds.collect()

    def test_lazy_until_action(self):
        ctx = Context()
        # Building the plan never executes the poisoned element.
        ds = ctx.parallelize(["poison"], 1).map(ExplodingTransformer().apply)
        ds2 = ds.map(lambda x: x)  # still no execution
        assert ds2.num_partitions == 1

    def test_estimator_error_fails_fit(self):
        ctx = Context()
        data = ctx.parallelize([1.0, 2.0], 1)
        pipe = Pipeline.identity().and_then(ExplodingEstimator(), data)
        with pytest.raises(RuntimeError, match="exploded"):
            pipe.fit(level="none")

    def test_profiler_propagates_operator_errors(self):
        ctx = Context()
        data = ctx.parallelize(["a", "poison", "b"] * 20, 2)
        pipe = (Pipeline.identity()
                .and_then(ExplodingTransformer())
                .and_then(ExplodingEstimator(), data))
        # Profiling executes on a sample that contains the poison value.
        with pytest.raises(RuntimeError):
            pipe.fit(level="full", sample_sizes=(10, 20))

    def test_cached_dataset_does_not_cache_failures(self):
        ctx = Context()
        state = {"fail": True}

        def flaky(x):
            if state["fail"]:
                raise RuntimeError("transient")
            return x

        ds = ctx.parallelize([1, 2], 1).map(flaky).cache()
        with pytest.raises(RuntimeError):
            ds.collect()
        state["fail"] = False
        assert ds.collect() == [1, 2]  # recovers; no poisoned cache entry


class TestDegenerateInputs:
    def test_solver_on_single_row(self):
        ctx = Context()
        data = ctx.parallelize([np.array([1.0, 2.0])], 1)
        labels = ctx.parallelize([np.array([1.0])], 1)
        model = LocalQRSolver(l2_reg=1e-3).fit(data, labels)
        assert np.all(np.isfinite(model.weights))

    def test_solver_with_empty_partitions(self):
        ctx = Context()
        # 2 rows across 4 partitions: two partitions are empty.
        data = ctx.parallelize([np.ones(3), np.zeros(3)], 4)
        labels = ctx.parallelize([np.ones(1), -np.ones(1)], 4)
        model = LBFGSSolver(max_iter=10).fit(data, labels)
        assert model.weights.shape == (3, 1)

    def test_solver_on_empty_dataset(self):
        ctx = Context()
        data = ctx.parallelize([], 2)
        labels = ctx.parallelize([], 2)
        with pytest.raises((ValueError, ZeroDivisionError)):
            LocalQRSolver().fit(data, labels)

    def test_constant_features_with_ridge(self):
        ctx = Context()
        rows = [np.ones(4)] * 20
        ys = [np.array([1.0, -1.0])] * 20
        model = LocalQRSolver(l2_reg=1e-3).fit(
            ctx.parallelize(rows, 2), ctx.parallelize(ys, 2))
        assert np.all(np.isfinite(model.weights))

    def test_mismatched_feature_label_counts(self):
        ctx = Context()
        data = ctx.parallelize([np.ones(2)] * 10, 2)
        labels = ctx.parallelize([np.ones(1)] * 8, 2)
        with pytest.raises(ValueError):
            LBFGSSolver(max_iter=2).fit(data, labels)

    def test_nan_features_produce_nan_not_hang(self):
        ctx = Context()
        rows = [np.array([np.nan, 1.0])] * 10
        ys = [np.array([1.0])] * 10
        model = LBFGSSolver(max_iter=3).fit(ctx.parallelize(rows, 2),
                                            ctx.parallelize(ys, 2))
        # The solver terminates; result may be NaN but must not hang.
        assert model.weights.shape == (2, 1)


def _die_once(sentinel: str) -> None:
    """Hard-kill the current *actor* process, exactly once per sentinel.

    Runs everywhere (the same operator code executes in the parent for
    the serial reference fit) but only fires inside an actor worker;
    ``O_EXCL`` makes the kill once-per-test even across racing workers.
    ``os._exit`` skips all cleanup — the pipe just goes dead, exactly
    like an OOM-killed or segfaulted worker.
    """
    if not multiprocessing.current_process().name.startswith("repro-actor"):
        return
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(fd)
    os._exit(1)


class KillOnceTransformer(Transformer):
    """Module-level (spawn-picklable); kills its worker mid-featurize."""

    def __init__(self, sentinel: str):
        self.sentinel = sentinel

    def apply(self, item):
        _die_once(self.sentinel)
        return {str(item): 1.0}


class KillOncePassKMeans(KMeansEstimator):
    """K-means whose first in-worker pass kills the worker."""

    def __init__(self, sentinel: str, k: int, **kwargs):
        super().__init__(k, **kwargs)
        self.sentinel = sentinel

    def partition_pass_stats(self, payload, rows):
        _die_once(self.sentinel)
        return super().partition_pass_stats(payload, rows)


class TestActorFaultTolerance:
    """Worker death is survivable: bounded respawn + retry, identical
    results, and the restart recorded in the TrainingReport."""

    TIMEOUT = 120.0

    def test_worker_killed_mid_fit_recovers_byte_identically(
            self, tmp_path):
        docs = [f"doc {i % 7}" for i in range(24)]

        def build(ctx, sentinel):
            data = ctx.parallelize(docs, 4)
            pipe = (Pipeline.identity()
                    .and_then(KillOnceTransformer(sentinel))
                    .and_then(CommonSparseFeatures(5), data))
            return Optimizer(passes_for_level("none")).optimize(pipe)

        sentinel = str(tmp_path / "mid_fit.kill")
        reference = build(Context(), sentinel).execute()
        with ActorBackend(workers=2, task_timeout=self.TIMEOUT,
                          reuse_pool=False) as backend:
            fitted = build(Context(), sentinel).execute(backend=backend)
        report = fitted.training_report
        assert os.path.exists(sentinel), "kill never fired in a worker"
        assert report.worker_restarts > 0
        assert not report.process_fallback, report.process_fallback
        got = comparable([fitted.apply(d).toarray() for d in docs])
        want = comparable([reference.apply(d).toarray() for d in docs])
        assert got == want

    def test_trace_survives_worker_death(self, tmp_path):
        """A kill mid-featurization leaves a complete, well-nested trace
        with a ``worker_restart`` event — and byte-identical results."""
        from repro.obs import trace as obs_trace

        docs = [f"doc {i % 7}" for i in range(24)]

        def build(ctx, sentinel):
            data = ctx.parallelize(docs, 4)
            pipe = (Pipeline.identity()
                    .and_then(KillOnceTransformer(sentinel))
                    .and_then(CommonSparseFeatures(5), data))
            return Optimizer(passes_for_level("none")).optimize(pipe)

        sentinel = str(tmp_path / "traced.kill")
        reference = build(Context(), sentinel).execute()
        tracer = obs_trace.Tracer()
        obs_trace.enable(tracer)
        try:
            with ActorBackend(workers=2, task_timeout=self.TIMEOUT,
                              reuse_pool=False) as backend:
                fitted = build(Context(), sentinel).execute(backend=backend)
        finally:
            obs_trace.disable()
        report = fitted.training_report
        assert os.path.exists(sentinel), "kill never fired in a worker"
        assert report.worker_restarts > 0

        spans = tracer.spans
        restarts = [s for s in spans if s["name"] == "worker_restart"]
        assert restarts, "worker_restart event missing from the trace"
        assert all(s["kind"] == "event" for s in restarts)

        # Both sides of the pipe made it into one buffer: parent-side
        # fit/wave spans, and spans recorded inside surviving workers
        # (the killed worker's in-flight buffer is lost with it).
        parent_pid = os.getpid()
        assert any(s["pid"] == parent_pid and s["kind"] == "span"
                   for s in spans)
        worker_spans = [s for s in spans if s["pid"] != parent_pid]
        assert worker_spans, "no in-worker spans in the merged trace"
        assert all(s["proc"].startswith("repro-actor")
                   for s in worker_spans)

        # Well-nested: every parent link resolves, and each child's
        # interval sits inside its parent's (5 ms slack for mixing the
        # wall-clock ts with perf_counter durations).
        by_id = {s["id"]: s for s in spans}
        linked = 0
        for s in spans:
            if s["parent"] is None:
                continue
            assert s["parent"] in by_id, f"dangling parent on {s['name']}"
            par = by_id[s["parent"]]
            slack = 5e3
            assert s["ts"] >= par["ts"] - slack
            assert s["ts"] + s["dur"] <= par["ts"] + par["dur"] + slack
            linked += 1
        assert linked > 0, "no parent-linked spans at all"

        got = comparable([fitted.apply(d).toarray() for d in docs])
        want = comparable([reference.apply(d).toarray() for d in docs])
        assert got == want

    def test_worker_killed_mid_iteration_recovers_byte_identically(
            self, tmp_path):
        rng = np.random.default_rng(7)
        pts = [rng.normal(size=6) + (i % 3) * 4.0 for i in range(96)]

        def build_kmeans(ctx, sentinel):
            data = ctx.parallelize(pts, 4)
            head = KillOncePassKMeans(sentinel, 3, max_iter=4, seed=2)
            pipe = (Pipeline.identity()
                    .and_then(DoubleVector())
                    .and_then(head, data))
            return Optimizer(passes_for_level("none")).optimize(pipe)

        sentinel = str(tmp_path / "mid_iter.kill")
        reference = build_kmeans(Context(), sentinel).execute()
        with ActorBackend(workers=2, task_timeout=self.TIMEOUT,
                          reuse_pool=False) as backend:
            fitted = build_kmeans(Context(), sentinel).execute(
                backend=backend)
        report = fitted.training_report
        assert os.path.exists(sentinel), "kill never fired in a worker"
        assert report.worker_restarts > 0
        assert "KillOncePassKMeans" in report.actor_iterative
        got = comparable([fitted.apply(p) for p in pts[:12]])
        want = comparable([reference.apply(p) for p in pts[:12]])
        assert got == want


class DoubleVector(Transformer):
    """Module-level deterministic featurizer for the k-means flows."""

    def apply(self, item):
        return np.asarray(item, dtype=np.float64) * 2.0


class TestPipelineMisuse:
    def test_apply_unfitted_pipeline_has_no_apply(self):
        pipe = Pipeline.identity()
        assert not hasattr(pipe, "apply")

    def test_double_fit_is_independent(self):
        ctx = Context()
        data = ctx.parallelize([1.0, 2.0, 3.0], 1)

        class Mean(Estimator):
            def fit(self, d):
                m = sum(d.collect()) / d.count()

                class Sub(Transformer):
                    def apply(self, x, _m=m):
                        return x - _m

                return Sub()

        pipe = Pipeline.identity().and_then(Mean(), data)
        a = pipe.fit(level="none")
        b = pipe.fit(level="none")
        assert a.apply(5.0) == b.apply(5.0)
