"""Integration tests: all six paper pipelines train and beat chance."""

import numpy as np
import pytest

from repro.dataset import Context
from repro.evaluation import accuracy, mean_average_precision, top_k_accuracy
from repro.nodes.numeric import MaxClassifier
from repro.pipelines import (
    amazon_pipeline,
    cifar_pipeline,
    imagenet_pipeline,
    timit_pipeline,
    voc_pipeline,
    youtube_pipeline,
)
from repro.workloads import (
    amazon_reviews,
    cifar10_images,
    imagenet_images,
    timit_frames,
    voc_images,
    youtube8m,
)


def _accuracy(fitted, ctx, workload):
    scores = fitted.apply_dataset(workload.test_data(ctx)).collect()
    preds = [MaxClassifier().apply(s) for s in scores]
    return accuracy(preds, workload.test_labels), scores


class TestAmazon:
    def test_beats_chance_with_full_optimization(self):
        ctx = Context()
        wl = amazon_reviews(400, 100, vocab_size=1000, seed=0)
        fitted = amazon_pipeline(ctx, wl, num_features=500).fit(
            sample_sizes=(40, 80))
        acc, _ = _accuracy(fitted, ctx, wl)
        assert acc > 0.8  # chance = 0.5

    def test_report_has_solver_selection(self):
        # Large enough n that the sparse L-BFGS solver wins the cost
        # comparison, as on the paper's full-size Amazon dataset.
        ctx = Context()
        wl = amazon_reviews(2500, 50, vocab_size=800, seed=1)
        fitted = amazon_pipeline(ctx, wl, num_features=400).fit(
            sample_sizes=(30, 60))
        assert "LBFGSSolver" in fitted.training_report.selections.values()


class TestTimit:
    def test_beats_chance(self):
        ctx = Context()
        wl = timit_frames(500, 120, dim=64, num_classes=8, seed=0)
        fitted = timit_pipeline(ctx, wl, num_feature_blocks=3,
                                block_size=128, gamma=0.02).fit(
            sample_sizes=(40, 80))
        acc, _ = _accuracy(fitted, ctx, wl)
        assert acc > 0.6  # chance = 0.125

    def test_gather_structure_concatenates_features(self):
        ctx = Context()
        wl = timit_frames(100, 20, dim=16, num_classes=4, seed=1)
        fitted = timit_pipeline(ctx, wl, num_feature_blocks=2,
                                block_size=32).fit(level="none")
        scores = fitted.apply(wl.test_items[0])
        assert np.asarray(scores).shape == (4,)


class TestVOC:
    def test_beats_chance_and_reports_map(self):
        ctx = Context()
        wl = voc_images(80, 40, size=48, num_classes=4, noise=0.3, seed=0)
        fitted = voc_pipeline(ctx, wl, pca_dims=16, gmm_components=4,
                              sampled_descriptors=150).fit(
            sample_sizes=(10, 20))
        acc, scores = _accuracy(fitted, ctx, wl)
        assert acc > 0.45  # chance = 0.25
        m = mean_average_precision(scores, wl.test_labels, wl.num_classes)
        assert m > 0.4


class TestImageNet:
    def test_top_k_beats_chance(self):
        ctx = Context()
        wl = imagenet_images(60, 30, size=48, num_classes=5, noise=0.3,
                             seed=0)
        fitted = imagenet_pipeline(ctx, wl, pca_dims=12, gmm_components=4,
                                   sampled_descriptors=80).fit(
            sample_sizes=(8, 16))
        acc, scores = _accuracy(fitted, ctx, wl)
        top2 = top_k_accuracy(scores, wl.test_labels, k=2)
        assert top2 > 0.6  # chance top-2 = 0.4


class TestCifar:
    def test_beats_chance(self):
        ctx = Context()
        wl = cifar10_images(200, 80, num_classes=5, noise=0.3, seed=0)
        fitted = cifar_pipeline(ctx, wl, num_filters=16, patch_size=5).fit(
            sample_sizes=(20, 40))
        acc, _ = _accuracy(fitted, ctx, wl)
        assert acc > 0.5  # chance = 0.2


class TestYoutube:
    def test_linear_and_logistic(self):
        ctx = Context()
        wl = youtube8m(400, 100, dim=64, num_classes=10, seed=0)
        for model in ("linear", "logistic"):
            fitted = youtube_pipeline(ctx, wl, model=model).fit(
                sample_sizes=(40, 80))
            acc, _ = _accuracy(fitted, ctx, wl)
            assert acc > 0.7  # chance = 0.1

    def test_invalid_model(self):
        ctx = Context()
        wl = youtube8m(50, 10, dim=8, num_classes=3)
        with pytest.raises(ValueError, match="linear|logistic"):
            youtube_pipeline(ctx, wl, model="transformer")
