"""Tests for the text featurization operators."""

import pytest
import scipy.sparse as sp

from repro.dataset import Context
from repro.nodes.text import (
    CommonSparseFeatures,
    HashingTF,
    LowerCase,
    NGramsFeaturizer,
    SparseFeatureVectorizer,
    TermFrequency,
    Tokenizer,
    Trim,
)


class TestBasicTransforms:
    def test_trim(self):
        assert Trim().apply("  hello \n") == "hello"

    def test_lowercase(self):
        assert LowerCase().apply("HeLLo") == "hello"

    def test_tokenizer_splits_punctuation(self):
        assert Tokenizer().apply("Hello, world! 42") == \
            ["Hello", "world", "42"]

    def test_tokenizer_keeps_apostrophes(self):
        assert Tokenizer().apply("don't stop") == ["don't", "stop"]

    def test_tokenizer_empty(self):
        assert Tokenizer().apply("...") == []


class TestNGrams:
    def test_unigrams_and_bigrams(self):
        out = NGramsFeaturizer(1, 2).apply(["a", "b", "c"])
        assert out == ["a", "b", "c", "a b", "b c"]

    def test_bigrams_only(self):
        assert NGramsFeaturizer(2, 2).apply(["a", "b", "c"]) == ["a b", "b c"]

    def test_short_input(self):
        assert NGramsFeaturizer(1, 3).apply(["x"]) == ["x"]

    def test_invalid_range(self):
        with pytest.raises(ValueError, match="lo <= hi"):
            NGramsFeaturizer(3, 2)


class TestTermFrequency:
    def test_counts(self):
        tf = TermFrequency()
        assert tf.apply(["a", "b", "a"]) == {"a": 2.0, "b": 1.0}

    def test_binary_weighting(self):
        tf = TermFrequency(lambda c: 1.0)
        assert tf.apply(["a", "a", "a"]) == {"a": 1.0}


class TestCommonSparseFeatures:
    def _corpus(self, ctx):
        docs = [{"common": 1.0, f"rare{i}": 1.0} for i in range(20)]
        return ctx.parallelize(docs, 4)

    def test_selects_most_frequent(self):
        ctx = Context()
        vec = CommonSparseFeatures(1).fit(self._corpus(ctx))
        assert list(vec.vocabulary) == ["common"]

    def test_vector_shape_and_content(self):
        ctx = Context()
        vec = CommonSparseFeatures(5).fit(self._corpus(ctx))
        row = vec.apply({"common": 2.0, "unknown": 1.0})
        assert row.shape == (1, 5)
        assert row[0, vec.vocabulary["common"]] == 2.0
        assert row.nnz == 1

    def test_oov_terms_dropped(self):
        vec = SparseFeatureVectorizer({"a": 0})
        row = vec.apply({"zzz": 5.0})
        assert row.nnz == 0

    def test_invalid_num_features(self):
        with pytest.raises(ValueError, match="num_features"):
            CommonSparseFeatures(0)

    def test_deterministic_vocabulary_size(self):
        ctx = Context()
        vec = CommonSparseFeatures(3).fit(self._corpus(ctx))
        assert len(vec.vocabulary) == 3


class TestHashingTF:
    def test_shape(self):
        row = HashingTF(64).apply({"a": 1.0, "b": 2.0})
        assert row.shape == (1, 64)
        assert row.sum() == pytest.approx(3.0)

    def test_collision_accumulates(self):
        tf = HashingTF(1)  # everything collides
        row = tf.apply({"a": 1.0, "b": 2.0})
        assert row[0, 0] == pytest.approx(3.0)

    def test_invalid_size(self):
        with pytest.raises(ValueError, match="num_features"):
            HashingTF(0)


class TestPipelineIntegration:
    def test_text_chain_produces_sparse_rows(self):
        ctx = Context()
        docs = ["Great product, love it", "terrible waste of money",
                "great great great"] * 5
        data = ctx.parallelize(docs, 2)
        from repro.core.pipeline import Pipeline

        pipe = (Pipeline.identity()
                .and_then(Trim()).and_then(LowerCase())
                .and_then(Tokenizer())
                .and_then(NGramsFeaturizer(1, 2))
                .and_then(TermFrequency())
                .and_then(CommonSparseFeatures(10), data))
        fitted = pipe.fit(level="none")
        row = fitted.apply("great product")
        assert sp.issparse(row)
        assert row.shape == (1, 10)
        assert row.nnz > 0
