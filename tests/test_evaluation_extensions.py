"""Tests for confusion matrix, P/R/F1, and the metrics bundle."""

import numpy as np
import pytest

from repro.evaluation import (
    MulticlassMetrics,
    confusion_matrix,
    precision_recall_f1,
)


class TestConfusionMatrix:
    def test_counts(self):
        m = confusion_matrix([0, 1, 1, 0], [0, 1, 0, 0], 2)
        assert m[0, 0] == 2   # true 0 predicted 0
        assert m[0, 1] == 1   # true 0 predicted 1
        assert m[1, 1] == 1

    def test_total_preserved(self):
        preds = [0, 1, 2, 1, 0]
        actual = [2, 1, 0, 1, 0]
        assert confusion_matrix(preds, actual, 3).sum() == 5

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            confusion_matrix([0], [0, 1], 2)


class TestPRF:
    def test_perfect(self):
        out = precision_recall_f1([0, 1, 0], [0, 1, 0], 2)
        assert out == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_hand_computed(self):
        # Class 0: tp=1, predicted 2, actual 1 -> p=0.5, r=1.0, f1=2/3
        # Class 1: tp=1, predicted 1, actual 2 -> p=1.0, r=0.5, f1=2/3
        out = precision_recall_f1([0, 0, 1], [0, 1, 1], 2)
        assert out["precision"] == pytest.approx(0.75)
        assert out["recall"] == pytest.approx(0.75)
        assert out["f1"] == pytest.approx(2 / 3)

    def test_absent_class_skipped(self):
        out = precision_recall_f1([0, 0], [0, 0], 3)
        assert out["recall"] == 1.0

    def test_out_of_range_labels_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            precision_recall_f1([5], [5], 2)


class TestMetricsBundle:
    def _metrics(self):
        scores = [np.array([0.9, 0.1, 0.0]),
                  np.array([0.2, 0.7, 0.1]),
                  np.array([0.5, 0.3, 0.2])]
        return MulticlassMetrics(scores, [0, 1, 2], 3)

    def test_accuracy(self):
        assert self._metrics().accuracy == pytest.approx(2 / 3)

    def test_top_k(self):
        assert self._metrics().top_k(3) == 1.0

    def test_confusion_shape(self):
        assert self._metrics().confusion.shape == (3, 3)

    def test_summary_keys(self):
        summary = self._metrics().summary()
        assert {"accuracy", "top_5", "mAP", "precision", "recall",
                "f1"} <= set(summary)
