"""Tests for operator fusion (stage packing)."""

import pytest

from repro.core import graph as g
from repro.core.fusion import (
    FusedTransformer,
    count_fused,
    fuse_transformer_chains,
)
from repro.core.operators import Estimator, Transformer
from repro.core.pipeline import Pipeline
from repro.dataset import Context


class Add(Transformer):
    def __init__(self, c):
        self.c = c

    def apply(self, x):
        return x + self.c


class Mul(Transformer):
    def __init__(self, c):
        self.c = c

    def apply(self, x):
        return x * self.c


class MeanEst(Estimator):
    def fit(self, data):
        values = data.collect()
        return Add(-sum(values) / len(values))


class TestFusedTransformer:
    def test_composes_in_order(self):
        fused = FusedTransformer([Add(1), Mul(10)])
        assert fused.apply(2) == 30  # (2 + 1) * 10

    def test_partition_matches_itemwise(self):
        fused = FusedTransformer([Add(1), Mul(2)])
        assert fused.apply_partition([1, 2, 3]) == [4, 6, 8]

    def test_weight_is_max(self):
        heavy = Add(0)
        heavy.weight = 7
        assert FusedTransformer([Add(1), heavy]).weight == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            FusedTransformer([])


class TestChainFusion:
    def _chain(self, n):
        inp = g.pipeline_input()
        node = inp
        for i in range(n):
            node = g.OpNode(g.TRANSFORMER, Add(i), (node,))
        return inp, node

    def test_chain_collapses_to_one_node(self):
        _inp, sink = self._chain(4)
        fused = fuse_transformer_chains([sink])[0]
        nodes = g.ancestors([fused])
        transformer_nodes = [n for n in nodes if n.kind == g.TRANSFORMER]
        assert len(transformer_nodes) == 1
        assert isinstance(transformer_nodes[0].op, FusedTransformer)

    def test_fused_semantics_preserved(self):
        _inp, sink = self._chain(3)
        fused_sink = fuse_transformer_chains([sink])[0]
        # Evaluate both chains on a value.
        def eval_chain(node, x):
            if node.kind == g.SOURCE:
                return x
            return node.op.apply(eval_chain(node.parents[0], x))

        assert eval_chain(fused_sink, 10) == eval_chain(sink, 10)

    def test_shared_node_not_fused(self):
        inp = g.pipeline_input()
        shared = g.OpNode(g.TRANSFORMER, Add(1), (inp,))
        left = g.OpNode(g.TRANSFORMER, Mul(2), (shared,))
        right = g.OpNode(g.TRANSFORMER, Mul(3), (shared,))
        sink = g.OpNode(g.GATHER, None, (left, right))
        fused = fuse_transformer_chains([sink])[0]
        # shared has two consumers: stays a separate node.
        labels = [n.op for n in g.ancestors([fused])
                  if n.kind == g.TRANSFORMER]
        assert not any(isinstance(op, FusedTransformer) for op in labels)

    def test_count_fused(self):
        _inp, sink = self._chain(4)
        assert count_fused([sink]) == 3

    def test_estimator_boundary(self):
        ctx = Context()
        data = ctx.parallelize([1.0, 2.0, 3.0])
        pipe = (Pipeline.identity().and_then(Add(1)).and_then(Mul(2))
                .and_then(MeanEst(), data).and_then(Add(5)))
        fused = fuse_transformer_chains([pipe.sink])[0]
        kinds = [n.kind for n in g.ancestors([fused])]
        assert g.ESTIMATOR in kinds  # estimator survives as a boundary


class TestExecutorIntegration:
    def test_fit_with_fusion_same_result(self):
        ctx = Context()
        data = ctx.parallelize([float(i) for i in range(20)], 2)
        pipe = (Pipeline.identity().and_then(Add(1)).and_then(Mul(2))
                .and_then(MeanEst(), data))
        plain = pipe.fit(level="pipe", sample_sizes=(5, 10))
        fused = pipe.fit(level="pipe", sample_sizes=(5, 10), fuse=True)
        for x in (0.0, 3.5, -2.0):
            assert plain.apply(x) == pytest.approx(fused.apply(x))
