"""Shared registry-workload scenarios for cross-suite contracts.

One classifier-headed pipeline per workload in ``workloads/registry.py``,
sized for tests.  ``tests/test_serving.py`` proves every scenario serves
byte-identically to ``FittedPipeline.apply``; ``tests/test_backends.py``
proves every scenario trains byte-identically under every execution
backend; ``tests/test_pickling.py`` proves every scenario's fitted
pipeline survives a pickle round-trip — the same six pipelines anchor all
three contracts.
"""

import numpy as np

from repro.core.pipeline import Pipeline
from repro.nodes.images import GrayScaler
from repro.nodes.learning.gmm import GMMEstimator
from repro.nodes.learning.kmeans import KMeansEstimator
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.learning.logistic import LogisticRegressionEstimator
from repro.nodes.learning.random_features import CosineRandomFeatures
from repro.nodes.numeric import (
    Flatten,
    MaxClassifier,
    Normalizer,
    StandardScaler,
)
from repro.nodes.text import (
    CommonSparseFeatures,
    LowerCase,
    TermFrequency,
    Tokenizer,
)
from repro.workloads import (
    amazon_reviews,
    cifar10_images,
    imagenet_images,
    timit_frames,
    voc_images,
    youtube8m,
)


def comparable(rows):
    """Map prediction rows to hashable byte-exact representations."""
    out = []
    for row in rows:
        if isinstance(row, (list, tuple)):
            out.append(tuple(comparable(row)))
        else:
            arr = np.asarray(row)
            out.append((str(arr.dtype), arr.shape, arr.tobytes()))
    return out


def _vector_pipeline(ctx, wl, features):
    data = wl.train_data(ctx)
    labels = wl.train_label_vectors(ctx)
    return (Pipeline.identity()
            .and_then(StandardScaler(), data)
            .and_then(CosineRandomFeatures(features, seed=1), data)
            .and_then(LinearSolver(), data, labels)
            .and_then(MaxClassifier()))


def _image_pipeline(ctx, wl):
    data = wl.train_data(ctx)
    labels = wl.train_label_vectors(ctx)
    return (Pipeline.identity()
            .and_then(GrayScaler())
            .and_then(Flatten())
            .and_then(Normalizer())
            .and_then(LinearSolver(), data, labels)
            .and_then(MaxClassifier()))


def _text_pipeline(ctx, wl):
    data = wl.train_data(ctx)
    labels = wl.train_label_vectors(ctx)
    return (Pipeline.identity()
            .and_then(LowerCase())
            .and_then(Tokenizer())
            .and_then(TermFrequency(lambda c: 1.0))
            .and_then(CommonSparseFeatures(120), data)
            .and_then(LinearSolver(), data, labels)
            .and_then(MaxClassifier()))


def _kmeans_pipeline(ctx, wl):
    data = wl.train_data(ctx)
    return (Pipeline.identity()
            .and_then(StandardScaler(), data)
            .and_then(KMeansEstimator(3, max_iter=4, seed=1), data))


def _gmm_pipeline(ctx, wl):
    data = wl.train_data(ctx)
    return (Pipeline.identity()
            .and_then(StandardScaler(), data)
            .and_then(GMMEstimator(2, max_iter=3, seed=1), data))


def _logistic_pipeline(ctx, wl):
    data = wl.train_data(ctx)
    labels = wl.train_label_vectors(ctx)
    return (Pipeline.identity()
            .and_then(StandardScaler(), data)
            .and_then(LogisticRegressionEstimator(max_iter=8), data, labels)
            .and_then(MaxClassifier()))


#: scenario name -> ctx -> (unfitted pipeline, test items)
SCENARIOS = {
    "amazon": lambda ctx: (_text_pipeline(
        ctx, amazon_reviews(120, 16, vocab_size=200, seed=0)),
        amazon_reviews(120, 16, vocab_size=200, seed=0).test_items),
    "timit": lambda ctx: (_vector_pipeline(
        ctx, timit_frames(100, 16, dim=24, num_classes=4, seed=0), 32),
        timit_frames(100, 16, dim=24, num_classes=4, seed=0).test_items),
    "imagenet": lambda ctx: (_image_pipeline(
        ctx, imagenet_images(24, 8, size=16, num_classes=3, seed=0)),
        imagenet_images(24, 8, size=16, num_classes=3, seed=0).test_items),
    "voc": lambda ctx: (_image_pipeline(
        ctx, voc_images(20, 8, size=16, num_classes=3, seed=0)),
        voc_images(20, 8, size=16, num_classes=3, seed=0).test_items),
    "cifar10": lambda ctx: (_image_pipeline(
        ctx, cifar10_images(24, 8, size=12, num_classes=3, seed=0)),
        cifar10_images(24, 8, size=12, num_classes=3, seed=0).test_items),
    "youtube8m": lambda ctx: (_vector_pipeline(
        ctx, youtube8m(100, 16, dim=32, num_classes=5, seed=0), 24),
        youtube8m(100, 16, dim=32, num_classes=5, seed=0).test_items),
    # Iterative-solver heads: the pass-based estimators every backend
    # must drive through the identical fit_via_passes state machine
    # (the actor backend runs the passes in-worker).
    "timit_kmeans": lambda ctx: (_kmeans_pipeline(
        ctx, timit_frames(100, 16, dim=24, num_classes=4, seed=0)),
        timit_frames(100, 16, dim=24, num_classes=4, seed=0).test_items),
    "timit_gmm": lambda ctx: (_gmm_pipeline(
        ctx, timit_frames(100, 16, dim=24, num_classes=4, seed=0)),
        timit_frames(100, 16, dim=24, num_classes=4, seed=0).test_items),
    "timit_logistic": lambda ctx: (_logistic_pipeline(
        ctx, timit_frames(100, 16, dim=24, num_classes=4, seed=0)),
        timit_frames(100, 16, dim=24, num_classes=4, seed=0).test_items),
}
