"""Tests for dataset statistics measurement."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.stats import num_label_dims, stats_from_rows


class TestStatsFromRows:
    def test_dense_rows(self):
        rows = [np.ones(10) for _ in range(5)]
        stats = stats_from_rows(rows)
        assert stats.n == 5
        assert stats.d == 10
        assert stats.sparsity == pytest.approx(1.0)

    def test_sparse_rows(self):
        rows = [sp.csr_matrix(([1.0], ([0], [3])), shape=(1, 100))
                for _ in range(4)]
        stats = stats_from_rows(rows)
        assert stats.d == 100
        assert stats.sparsity == pytest.approx(0.01)

    def test_extrapolated_count(self):
        rows = [np.ones(3)] * 10
        stats = stats_from_rows(rows, full_n=1_000_000)
        assert stats.n == 1_000_000

    def test_text_rows_fallback(self):
        stats = stats_from_rows(["hello", "world"])
        assert stats.d == 1
        assert stats.bytes_per_row > 0

    def test_empty(self):
        stats = stats_from_rows([], full_n=100)
        assert stats.n == 100
        assert stats.d == 0

    def test_partially_zero_dense(self):
        row = np.zeros(10)
        row[:2] = 1.0
        stats = stats_from_rows([row.copy() for _ in range(3)])
        assert stats.sparsity == pytest.approx(0.2)

    def test_bytes_per_row(self):
        rows = [np.zeros(100) for _ in range(4)]
        stats = stats_from_rows(rows)
        assert stats.bytes_per_row == pytest.approx(800)


class TestLabelDims:
    def test_one_hot(self):
        assert num_label_dims([np.array([1.0, -1.0, -1.0])]) == 3

    def test_scalar(self):
        assert num_label_dims([1]) == 1

    def test_sparse_label_row(self):
        assert num_label_dims([sp.csr_matrix((1, 7))]) == 7

    def test_empty(self):
        assert num_label_dims([]) == 1
