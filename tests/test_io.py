"""Tests for data loading and pipeline persistence."""

import numpy as np
import pytest

from repro.core.operators import Transformer
from repro.core.pipeline import Pipeline
from repro.dataset import Context
from repro.io import (
    load_pipeline,
    read_csv_vectors,
    read_text,
    save_pipeline,
    write_text,
)


class AddOne(Transformer):
    def apply(self, x):
        return x + 1


class TestTextIO:
    def test_roundtrip(self, tmp_path):
        ctx = Context()
        path = tmp_path / "lines.txt"
        data = ctx.parallelize(["alpha", "beta", "gamma"], 2)
        assert write_text(data, path) == 3
        loaded = read_text(ctx, path, 2)
        assert loaded.collect() == ["alpha", "beta", "gamma"]

    def test_read_strips_newlines(self, tmp_path):
        path = tmp_path / "raw.txt"
        path.write_text("one\ntwo\n")
        ctx = Context()
        assert read_text(ctx, path).collect() == ["one", "two"]


class TestCSV:
    def test_vectors_only(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1.0,2.0\n3.0,4.0\n")
        ctx = Context()
        data = read_csv_vectors(ctx, path)
        rows = data.collect()
        np.testing.assert_allclose(rows[1], [3.0, 4.0])

    def test_label_column_split(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1.0,2.0,0\n3.0,4.0,1\n")
        ctx = Context()
        data, labels = read_csv_vectors(ctx, path, label_column=2)
        np.testing.assert_allclose(data.collect()[0], [1.0, 2.0])
        assert labels.collect() == [0.0, 1.0]

    def test_skip_header(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("x,y\n1.0,2.0\n")
        ctx = Context()
        assert read_csv_vectors(ctx, path, skip_header=True).count() == 1

    def test_non_numeric_reports_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,2.0\noops,4.0\n")
        ctx = Context()
        with pytest.raises(ValueError, match="bad.csv:2"):
            read_csv_vectors(ctx, path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1.0\n\n2.0\n")
        ctx = Context()
        assert read_csv_vectors(ctx, path).count() == 2


class TestPipelinePersistence:
    def test_roundtrip(self, tmp_path):
        fitted = Pipeline.identity().and_then(AddOne()).fit(level="none")
        path = tmp_path / "pipe.pkl"
        save_pipeline(fitted, path)
        loaded = load_pipeline(path)
        assert loaded.apply(41) == 42

    def test_report_stripped(self, tmp_path):
        fitted = Pipeline.identity().and_then(AddOne()).fit(level="none")
        path = tmp_path / "pipe.pkl"
        save_pipeline(fitted, path)
        assert load_pipeline(path).training_report is None

    def test_program_passes_survive_save_load(self, tmp_path):
        """Registered lowering rewrites must keep applying after the
        persistence round-trip, not silently vanish."""
        from repro.core.optimizer import Optimizer, passes_for_level
        from repro.core.passes import LoweringPass

        pipe = Pipeline.identity().and_then(AddOne())
        passes = passes_for_level("none") + [LoweringPass()]
        fitted = Optimizer(passes).optimize(pipe).execute()
        assert fitted.program_passes
        path = tmp_path / "pipe.pkl"
        save_pipeline(fitted, path)
        loaded = load_pipeline(path)
        assert ([p.name for p in loaded.program_passes]
                == [p.name for p in fitted.program_passes])
        assert loaded.apply(41) == 42

    def test_rejects_unfitted(self, tmp_path):
        with pytest.raises(TypeError, match="fitted"):
            save_pipeline(Pipeline.identity(), tmp_path / "x.pkl")

    def test_rejects_foreign_pickle(self, tmp_path):
        import pickle

        path = tmp_path / "other.pkl"
        with open(path, "wb") as f:
            pickle.dump({"not": "a pipeline"}, f)
        with pytest.raises(TypeError, match="FittedPipeline"):
            load_pipeline(path)

    def test_fitted_text_pipeline_roundtrip(self, tmp_path):
        """A real fitted pipeline (with vocabulary state) survives."""
        from repro.nodes.text import CommonSparseFeatures, TermFrequency, \
            Tokenizer

        ctx = Context()
        docs = ["a b c", "a b", "a"] * 5
        data = ctx.parallelize(docs, 2)
        pipe = (Pipeline.identity().and_then(Tokenizer())
                .and_then(TermFrequency())
                .and_then(CommonSparseFeatures(2), data))
        fitted = pipe.fit(level="none")
        path = tmp_path / "text.pkl"
        save_pipeline(fitted, path)
        loaded = load_pipeline(path)
        original = fitted.apply("a b").toarray()
        np.testing.assert_allclose(loaded.apply("a b").toarray(), original)
