"""Tests for pipeline fitting: levels, reports, caching behaviour."""

import pytest

from repro.core.executor import ExclusiveTimer
from repro.core.operators import Iterative, LabelEstimator, Transformer
from repro.core.pipeline import Pipeline
from repro.dataset import Context


class Slow(Transformer):
    """A transformer whose work is observable via a counter."""

    calls = 0

    def apply(self, x):
        Slow.calls += 1
        return x + 1


class IterativeEstimator(LabelEstimator, Iterative):
    """Scans its input `weight` times, like a real solver."""

    def __init__(self, passes=5):
        self.weight = passes
        self.passes = passes

    def fit(self, data, labels):
        total = 0.0
        for _ in range(self.passes):
            total += sum(data.collect())
        mean = total / (self.passes * data.count())

        class Sub(Transformer):
            def apply(self, x, _m=mean):
                return x - _m

        return Sub()


@pytest.fixture(autouse=True)
def _reset_counter():
    Slow.calls = 0


def _pipeline(ctx, passes=5):
    data = ctx.parallelize([float(i) for i in range(40)], 2)
    labels = ctx.parallelize([float(i) for i in range(40)], 2)
    return (Pipeline.identity()
            .and_then(Slow())
            .and_then(IterativeEstimator(passes), data, labels))


class TestLevels:
    def test_unknown_level(self):
        ctx = Context()
        with pytest.raises(ValueError, match="unknown optimization level"):
            _pipeline(ctx).fit(level="turbo")

    def test_none_level_runs(self):
        ctx = Context()
        fitted = _pipeline(ctx).fit(level="none")
        assert fitted.training_report.cache_set == set()

    def test_full_level_caches_iterated_input(self):
        ctx = Context()
        fitted = _pipeline(ctx).fit(level="full", sample_sizes=(5, 10))
        assert len(fitted.training_report.cache_set) > 0

    def test_caching_reduces_recomputation(self):
        ctx_none = Context()
        _pipeline(ctx_none, passes=6).fit(level="none")
        calls_none = Slow.calls

        Slow.calls = 0
        ctx_full = Context()
        _pipeline(ctx_full, passes=6).fit(level="full", sample_sizes=(5, 10))
        calls_full = Slow.calls
        # Unoptimized recomputes featurization on every pass.
        assert calls_none > 3 * calls_full


class TestStrategies:
    @pytest.mark.parametrize("strategy", ["greedy", "lru", "rule", "none"])
    def test_strategies_execute(self, strategy):
        ctx = Context()
        fitted = _pipeline(ctx).fit(level="full", sample_sizes=(5, 10),
                                    cache_strategy=strategy,
                                    mem_budget_bytes=1e9)
        assert fitted.apply(1.0) is not None

    def test_rule_based_recomputes_more_than_greedy(self):
        ctx = Context()
        exec_ctx = Context()
        _pipeline(ctx, passes=8).fit(level="full", sample_sizes=(5, 10),
                                     cache_strategy="rule", ctx=exec_ctx)
        rule_recomp = exec_ctx.stats.total_computations()

        ctx2 = Context()
        exec_ctx2 = Context()
        _pipeline(ctx2, passes=8).fit(level="full", sample_sizes=(5, 10),
                                      cache_strategy="greedy",
                                      mem_budget_bytes=1e9, ctx=exec_ctx2)
        greedy_recomp = exec_ctx2.stats.total_computations()
        assert rule_recomp > greedy_recomp

    def test_lru_without_profile(self):
        """LRU must work even at level=none (no profile available)."""
        ctx = Context()
        fitted = _pipeline(ctx).fit(level="none", cache_strategy="lru",
                                    mem_budget_bytes=1e9)
        assert fitted.apply(0.0) is not None


class TestReport:
    def test_stage_seconds_partition(self):
        ctx = Context()
        fitted = _pipeline(ctx).fit(level="full", sample_sizes=(5, 10))
        stages = fitted.training_report.stage_seconds()
        assert set(stages) == {"Optimize", "Featurize", "Solve"}
        assert all(v >= 0 for v in stages.values())

    def test_estimator_seconds_recorded(self):
        ctx = Context()
        fitted = _pipeline(ctx).fit(level="none")
        assert len(fitted.training_report.estimator_seconds) == 1

    def test_selections_empty_at_pipe_level(self):
        ctx = Context()
        fitted = _pipeline(ctx).fit(level="pipe", sample_sizes=(5, 10))
        assert fitted.training_report.selections == {}

    def test_cache_labels_human_readable(self):
        ctx = Context()
        fitted = _pipeline(ctx).fit(level="full", sample_sizes=(5, 10))
        for label in fitted.training_report.cache_set_labels:
            assert isinstance(label, str)


class TestExclusiveTimer:
    def test_nested_attribution(self):
        import time

        timer = ExclusiveTimer()

        def inner():
            time.sleep(0.02)

        def outer():
            wrapped_inner()
            time.sleep(0.02)

        wrapped_inner = timer.wrap("inner", inner)
        wrapped_outer = timer.wrap("outer", outer)
        wrapped_outer()
        assert timer.times["inner"] == pytest.approx(0.02, abs=0.015)
        assert timer.times["outer"] == pytest.approx(0.02, abs=0.015)

    def test_time_block(self):
        import time

        timer = ExclusiveTimer()
        with timer.time_block("blk"):
            time.sleep(0.01)
        assert timer.times["blk"] >= 0.005

    def test_accumulates_over_calls(self):
        timer = ExclusiveTimer()
        fn = timer.wrap("x", lambda: None)
        fn()
        fn()
        assert timer.times["x"] >= 0
