"""Tests for the three convolution strategies and their cost models."""

import numpy as np
import pytest

from repro.cluster.resources import local_machine
from repro.core.stats import DataStats
from repro.cost.model import estimate_cost
from repro.nodes.convolution import (
    BLASConvolver,
    BLASCostModel,
    Convolver,
    FFTConvolver,
    FFTCostModel,
    SeparableConvolver,
    separable_decomposition,
)


def _random_filters(b=4, k=3, c=3, seed=0):
    return np.random.default_rng(seed).standard_normal((b, k, k, c))


def _separable_filters(b=4, k=3, c=3, seed=0):
    rng = np.random.default_rng(seed)
    filters = np.empty((b, k, k, c))
    for i in range(b):
        for ch in range(c):
            filters[i, :, :, ch] = np.outer(rng.standard_normal(k),
                                            rng.standard_normal(k))
    return filters


def _image(n=16, c=3, seed=1):
    return np.random.default_rng(seed).random((n, n, c))


def _naive_conv(img, filters):
    """Reference O(everything) implementation."""
    b, k, _k, c = filters.shape
    h, w, _c = img.shape
    m_h, m_w = h - k + 1, w - k + 1
    out = np.zeros((m_h, m_w, b))
    for i in range(b):
        for y in range(m_h):
            for x in range(m_w):
                out[y, x, i] = np.sum(img[y:y + k, x:x + k, :]
                                      * filters[i])
    return out


class TestCorrectness:
    def test_blas_matches_naive(self):
        img, filters = _image(10), _random_filters(2, 3, 3)
        np.testing.assert_allclose(BLASConvolver(filters).apply(img),
                                   _naive_conv(img, filters), atol=1e-10)

    def test_fft_matches_naive(self):
        img, filters = _image(10), _random_filters(2, 3, 3)
        np.testing.assert_allclose(FFTConvolver(filters).apply(img),
                                   _naive_conv(img, filters), atol=1e-8)

    def test_separable_matches_naive(self):
        img, filters = _image(10), _separable_filters(2, 3, 3)
        np.testing.assert_allclose(SeparableConvolver(filters).apply(img),
                                   _naive_conv(img, filters), atol=1e-8)

    def test_all_strategies_agree_on_separable_filters(self):
        img = _image(12)
        filters = _separable_filters(3, 5, 3)
        blas = BLASConvolver(filters).apply(img)
        fft = FFTConvolver(filters).apply(img)
        sep = SeparableConvolver(filters).apply(img)
        np.testing.assert_allclose(blas, fft, atol=1e-8)
        np.testing.assert_allclose(blas, sep, atol=1e-8)

    def test_bias_added(self):
        img, filters = _image(8), _random_filters(2)
        bias = np.array([1.0, -1.0])
        plain = BLASConvolver(filters).apply(img)
        biased = BLASConvolver(filters, bias).apply(img)
        np.testing.assert_allclose(biased - plain,
                                   np.broadcast_to(bias, plain.shape))

    def test_output_shape(self):
        out = BLASConvolver(_random_filters(5, 4)).apply(_image(20))
        assert out.shape == (17, 17, 5)

    def test_grayscale_image_accepted(self):
        filters = _random_filters(2, 3, 1)
        img = np.random.default_rng(0).random((10, 10))
        out = BLASConvolver(filters).apply(img)
        assert out.shape == (8, 8, 2)

    def test_filter_larger_than_image(self):
        with pytest.raises(ValueError, match="exceeds"):
            BLASConvolver(_random_filters(1, 8, 1)).apply(
                np.zeros((4, 4, 1)))


class TestSeparability:
    def test_detects_separable(self):
        assert separable_decomposition(_separable_filters()) is not None

    def test_rejects_full_rank(self):
        assert separable_decomposition(_random_filters()) is None

    def test_separable_constructor_rejects_full_rank(self):
        with pytest.raises(ValueError, match="not separable"):
            SeparableConvolver(_random_filters())


class TestLogicalConvolver:
    def test_options_include_separable_only_when_applicable(self):
        shape = (16, 16, 3)
        sep_names = {m.name for m, _ in
                     Convolver(_separable_filters(), shape).options()}
        rand_names = {m.name for m, _ in
                      Convolver(_random_filters(), shape).options()}
        assert "separable" in sep_names
        assert "separable" not in rand_names

    def test_apply_uses_default(self):
        img = _image(10)
        filters = _random_filters(2)
        conv = Convolver(filters, (10, 10, 3), default="fft")
        np.testing.assert_allclose(conv.apply(img),
                                   FFTConvolver(filters).apply(img),
                                   atol=1e-8)

    def test_invalid_default(self):
        conv = Convolver(_random_filters(), (10, 10, 3), default="nope")
        with pytest.raises(ValueError, match="unknown default"):
            conv.apply(_image(10))

    def test_optimize_selects_fft_for_large_k(self):
        """Figure 7's crossover: FFT wins when k grows."""
        res = local_machine()
        stats = DataStats(n=100, d=1)
        shape = (64, 64, 3)
        small_k = Convolver(_random_filters(8, 3, 3), shape)
        large_k = Convolver(_random_filters(8, 25, 3), shape)
        assert type(small_k.optimize(stats, res)).__name__ == "BLASConvolver"
        assert type(large_k.optimize(stats, res)).__name__ == "FFTConvolver"

    def test_optimize_prefers_separable_when_valid(self):
        res = local_machine()
        stats = DataStats(n=100, d=1)
        conv = Convolver(_separable_filters(8, 15, 3), (64, 64, 3))
        assert isinstance(conv.optimize(stats, res), SeparableConvolver)


class TestCostModels:
    def test_blas_cost_grows_with_k_squared(self):
        res = local_machine()
        stats = DataStats(n=1000, d=1)
        shape = (64, 64, 3)
        c_small = estimate_cost(
            BLASCostModel(BLASConvolver(_random_filters(8, 3)), shape),
            stats, res)
        c_large = estimate_cost(
            BLASCostModel(BLASConvolver(_random_filters(8, 12)), shape),
            stats, res)
        assert c_large > 4 * c_small

    def test_fft_cost_flat_in_k(self):
        res = local_machine()
        stats = DataStats(n=1000, d=1)
        shape = (64, 64, 3)
        c_small = estimate_cost(
            FFTCostModel(FFTConvolver(_random_filters(8, 3)), shape),
            stats, res)
        c_large = estimate_cost(
            FFTCostModel(FFTConvolver(_random_filters(8, 20)), shape),
            stats, res)
        assert c_large < 2 * c_small

    def test_filters_shape_validation(self):
        with pytest.raises(ValueError, match="filters must"):
            BLASConvolver(np.zeros((2, 3, 4, 1)))
