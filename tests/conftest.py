"""Shared test fixtures."""

import pytest

from repro.core.backends import shutdown_actor_pools, shutdown_worker_pools


@pytest.fixture(scope="session", autouse=True)
def _shutdown_process_pools():
    """Release shared worker-process and actor pools at session end."""
    yield
    shutdown_worker_pools()
    shutdown_actor_pools()
