"""Shared test fixtures."""

import pytest

from repro.core.backends import shutdown_worker_pools


@pytest.fixture(scope="session", autouse=True)
def _shutdown_process_pools():
    """Release shared worker-process pools at session end."""
    yield
    shutdown_worker_pools()
