"""Tests for TSQR and the row-partitioned matrix."""

import numpy as np
import pytest

from repro.dataset import Context
from repro.linalg import RowMatrix, tsqr_r, tsqr_solve


@pytest.fixture
def ctx():
    return Context(default_partitions=4)


def _random_blocks(rng, n_blocks, rows, cols):
    return [rng.standard_normal((rows, cols)) for _ in range(n_blocks)]


class TestTSQR:
    def test_r_matches_numpy_up_to_sign(self):
        rng = np.random.default_rng(0)
        blocks = _random_blocks(rng, 4, 25, 6)
        r_tsqr = tsqr_r(blocks)
        r_np = np.linalg.qr(np.vstack(blocks), mode="r")
        # R is unique up to row signs.
        np.testing.assert_allclose(np.abs(r_tsqr), np.abs(r_np), atol=1e-8)

    def test_r_gram_identity(self):
        """R^T R == A^T A regardless of sign convention."""
        rng = np.random.default_rng(1)
        blocks = _random_blocks(rng, 3, 40, 5)
        a = np.vstack(blocks)
        r = tsqr_r(blocks)
        np.testing.assert_allclose(r.T @ r, a.T @ a, atol=1e-8)

    def test_single_block(self):
        rng = np.random.default_rng(2)
        blocks = _random_blocks(rng, 1, 30, 4)
        r = tsqr_r(blocks)
        np.testing.assert_allclose(r.T @ r, blocks[0].T @ blocks[0],
                                   atol=1e-8)

    def test_short_blocks(self):
        """Blocks with fewer rows than columns still combine correctly."""
        rng = np.random.default_rng(3)
        blocks = _random_blocks(rng, 8, 3, 6)
        a = np.vstack(blocks)
        r = tsqr_r(blocks)
        np.testing.assert_allclose(r.T @ r, a.T @ a, atol=1e-8)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="at least one block"):
            tsqr_r([])

    def test_solve_matches_lstsq(self):
        rng = np.random.default_rng(4)
        a_blocks = _random_blocks(rng, 4, 30, 8)
        x_true = rng.standard_normal((8, 3))
        b_blocks = [a @ x_true for a in a_blocks]
        x = tsqr_solve(a_blocks, b_blocks)
        np.testing.assert_allclose(x, x_true, atol=1e-8)

    def test_solve_with_ridge_shrinks(self):
        rng = np.random.default_rng(5)
        a_blocks = _random_blocks(rng, 2, 50, 5)
        b_blocks = [rng.standard_normal((50, 2)) for _ in range(2)]
        x_plain = tsqr_solve(a_blocks, b_blocks, l2_reg=0.0)
        x_ridge = tsqr_solve(a_blocks, b_blocks, l2_reg=100.0)
        assert np.linalg.norm(x_ridge) < np.linalg.norm(x_plain)

    def test_solve_block_mismatch(self):
        with pytest.raises(ValueError, match="matching block"):
            tsqr_solve([np.eye(2)], [])


class TestRowMatrix:
    def _matrix(self, ctx, rng, n=40, d=6, partitions=4):
        rows = [rng.standard_normal(d) for _ in range(n)]
        return RowMatrix(ctx.parallelize(rows, partitions)), np.vstack(rows)

    def test_shape_accessors(self, ctx):
        rng = np.random.default_rng(0)
        rm, dense = self._matrix(ctx, rng)
        assert rm.num_cols == 6
        assert rm.num_rows() == 40

    def test_to_dense(self, ctx):
        rng = np.random.default_rng(1)
        rm, dense = self._matrix(ctx, rng)
        np.testing.assert_allclose(rm.to_dense(), dense)

    def test_gram(self, ctx):
        rng = np.random.default_rng(2)
        rm, dense = self._matrix(ctx, rng)
        np.testing.assert_allclose(rm.gram(), dense.T @ dense, atol=1e-8)

    def test_t_times(self, ctx):
        rng = np.random.default_rng(3)
        rows_a = [rng.standard_normal(5) for _ in range(30)]
        a_ds = ctx.parallelize(rows_a, 3)
        b_ds = a_ds.map(lambda r: r * 2 + 1)
        a = np.vstack(rows_a)
        b = a * 2 + 1
        result = RowMatrix(a_ds).t_times(RowMatrix(b_ds))
        np.testing.assert_allclose(result, a.T @ b, atol=1e-8)

    def test_times(self, ctx):
        rng = np.random.default_rng(4)
        rm, dense = self._matrix(ctx, rng)
        x = rng.standard_normal((6, 2))
        out = np.vstack(rm.times(x).collect())
        np.testing.assert_allclose(out, dense @ x, atol=1e-10)

    def test_qr_r_gram(self, ctx):
        rng = np.random.default_rng(5)
        rm, dense = self._matrix(ctx, rng)
        r = rm.qr_r()
        np.testing.assert_allclose(r.T @ r, dense.T @ dense, atol=1e-8)

    def test_solve_least_squares(self, ctx):
        rng = np.random.default_rng(6)
        rm, dense = self._matrix(ctx, rng, n=60, d=5)
        x_true = rng.standard_normal((5, 2))
        labels_rows = list(dense @ x_true)
        labels = RowMatrix(ctx.parallelize(labels_rows, 4))
        x = rm.solve_least_squares(labels)
        np.testing.assert_allclose(x, x_true, atol=1e-6)

    def test_column_means(self, ctx):
        rng = np.random.default_rng(7)
        rm, dense = self._matrix(ctx, rng)
        np.testing.assert_allclose(rm.column_means(), dense.mean(axis=0),
                                   atol=1e-10)

    def test_sparse_rows(self, ctx):
        import scipy.sparse as sp

        rows = [sp.random(1, 20, density=0.3, format="csr",
                          random_state=i) for i in range(15)]
        rm = RowMatrix(ctx.parallelize(rows, 3))
        dense = np.vstack([r.toarray() for r in rows])
        np.testing.assert_allclose(rm.gram(), dense.T @ dense, atol=1e-8)
        assert rm.num_cols == 20
