"""Tests for the operator DAG representation."""

import pytest

from repro.core import graph as g
from repro.core.operators import FunctionTransformer, IdentityTransformer


def _chain(n):
    """input -> t1 -> ... -> tn"""
    node = g.pipeline_input()
    inp = node
    for i in range(n):
        node = g.OpNode(g.TRANSFORMER, FunctionTransformer(lambda x: x, f"t{i}"),
                        (node,))
    return inp, node


class TestNodes:
    def test_ids_unique(self):
        a = g.pipeline_input()
        b = g.pipeline_input()
        assert a.id != b.id

    def test_pipeline_input_flag(self):
        assert g.pipeline_input().is_pipeline_input
        assert not g.source("data").is_pipeline_input

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown node kind"):
            g.OpNode("mystery", None)

    def test_default_labels(self):
        t = g.OpNode(g.TRANSFORMER, IdentityTransformer(),
                     (g.pipeline_input(),))
        assert t.label == "IdentityTransformer"

    def test_weight_from_op(self):
        class Weighted:
            weight = 7

            def apply(self, x):
                return x

        node = g.OpNode(g.TRANSFORMER, Weighted(), (g.pipeline_input(),))
        assert node.weight == 7

    def test_weight_defaults_to_one(self):
        assert g.pipeline_input().weight == 1


class TestTraversal:
    def test_ancestors_topological(self):
        inp, sink = _chain(5)
        order = g.ancestors([sink])
        assert order[0] is inp
        assert order[-1] is sink
        assert len(order) == 6
        positions = {node.id: i for i, node in enumerate(order)}
        for node in order:
            for p in node.parents:
                assert positions[p.id] < positions[node.id]

    def test_ancestors_shared_diamond(self):
        inp = g.pipeline_input()
        a = g.OpNode(g.TRANSFORMER, IdentityTransformer(), (inp,))
        left = g.OpNode(g.TRANSFORMER, IdentityTransformer(), (a,))
        right = g.OpNode(g.TRANSFORMER, IdentityTransformer(), (a,))
        sink = g.OpNode(g.GATHER, None, (left, right))
        order = g.ancestors([sink])
        assert len(order) == 5  # shared node not duplicated

    def test_successors_map(self):
        inp, sink = _chain(2)
        succ = g.successors_map([sink])
        assert succ[sink.id] == []
        assert len(succ[inp.id]) == 1

    def test_substitute_replaces_placeholder(self):
        inp, sink = _chain(3)
        replacement = g.source("dataset")
        new_sink = g.substitute(sink, {inp.id: replacement})
        order = g.ancestors([new_sink])
        assert order[0] is replacement
        assert not any(n.is_pipeline_input for n in order)

    def test_substitute_preserves_untouched_subgraphs(self):
        inp, sink = _chain(2)
        other_inp, other_sink = _chain(2)
        merged = g.OpNode(g.GATHER, None, (sink, other_sink))
        new = g.substitute(merged, {inp.id: g.source("d")})
        # other_sink has no replaced ancestor: object identity preserved.
        assert new.parents[1] is other_sink
        assert new.parents[0] is not sink


class TestValidation:
    def test_valid_chain(self):
        _inp, sink = _chain(2)
        g.validate_dag([sink])

    def test_transformer_arity(self):
        bad = g.OpNode(g.TRANSFORMER, IdentityTransformer(), ())
        with pytest.raises(ValueError, match="one parent"):
            g.validate_dag([bad])

    def test_apply_needs_estimator_parent(self):
        inp = g.pipeline_input()
        bad = g.OpNode(g.APPLY, None, (inp, inp))
        with pytest.raises(ValueError, match="apply nodes"):
            g.validate_dag([bad])

    def test_gather_needs_parents(self):
        bad = g.OpNode(g.GATHER, None, ())
        with pytest.raises(ValueError, match="gather"):
            g.validate_dag([bad])

    def test_to_dot_contains_nodes(self):
        _inp, sink = _chain(2)
        dot = g.to_dot([sink])
        assert dot.startswith("digraph")
        assert dot.count("->") == 2

    def test_to_dot_escapes_special_characters(self):
        inp = g.pipeline_input()
        sink = g.OpNode(g.TRANSFORMER, IdentityTransformer(), (inp,),
                        label='say "hi"\nback\\slash')
        dot = g.to_dot([sink])
        assert '\\"hi\\"' in dot
        assert "\\n" in dot
        assert "\\\\slash" in dot
        # No raw quote or newline survives inside any label attribute.
        for line in dot.splitlines():
            if "label=" in line:
                body = line.split('label="', 1)[1].rsplit('"', 1)[0]
                assert '\n' not in body
                assert all(c != '"' or body[i - 1] == "\\"
                           for i, c in enumerate(body))

    def test_to_dot_crlf_is_one_newline(self):
        inp = g.pipeline_input()
        sink = g.OpNode(g.TRANSFORMER, IdentityTransformer(), (inp,),
                        label="a\r\nb")
        dot = g.to_dot([sink])
        assert 'label="a\\nb"' in dot

    def test_to_dot_highlight(self):
        inp, sink = _chain(2)
        dot = g.to_dot([sink], highlight={sink.id})
        assert dot.count("fillcolor") == 1


class TestZipGather:
    def test_zip_gather_rows(self):
        from repro.dataset import Context

        ctx = Context()
        a = ctx.parallelize([1, 2, 3], 2)
        b = ctx.parallelize([10, 20, 30], 2)
        rows = g.zip_gather([a, b]).collect()
        assert rows == [[1, 10], [2, 20], [3, 30]]

    def test_single_parent(self):
        from repro.dataset import Context

        ctx = Context()
        rows = g.zip_gather([ctx.parallelize([5, 6], 1)]).collect()
        assert rows == [[5], [6]]
