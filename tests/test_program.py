"""Tests for the lowered OpProgram IR (repro.core.program).

The contracts the unified lowering must hold:

- **content-addressed keys** — structurally identical ops from
  independently built (and independently *trained*) pipelines get equal
  keys; any parameter change flips the key of that op and of everything
  downstream; keys ignore DAG node ids and object identity.
- **one lowering** — the serving compiler and the process backend both
  consume ``core/program.py``; the compiled inference plan is a view over
  the program, and a lowered program round-trips through pickle (it is
  the process backend's wire format).
- **lowering passes** — ``LoweringPass`` hands ``ProgramPass`` rewrites
  over via ``PlanState``; dead-op elimination drops unreachable slots
  without changing root outputs.
"""

import pickle

import numpy as np
import pytest

from repro.core import graph as g
from repro.core.optimizer import Optimizer, passes_for_level
from repro.core.passes import LoweringPass
from repro.core.pipeline import Pipeline
from repro.core.program import (
    GATHER,
    INPUT,
    INPUT_KEY,
    TRANSFORM,
    DeadOpElimination,
    Op,
    OpProgram,
    ProgramPass,
    UnshippableFlow,
    VectorizePass,
    lower_inference_program,
    lower_training_program,
    op_key,
    structural_fingerprint,
)
from repro.dataset import Context
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.numeric import MaxClassifier, Normalizer, StandardScaler
from repro.nodes.text import (
    CommonSparseFeatures,
    LowerCase,
    TermFrequency,
    Tokenizer,
    unit_weighting,
)
from repro.serving.compiler import InferencePlan, compile_inference_plan
from repro.workloads import amazon_reviews, timit_frames
from workload_scenarios import comparable


def _fit_text(wl, l2_reg=1e-8, num_features=80):
    """One training factory so both fits share lambda source locations."""
    ctx = Context()
    data = wl.train_data(ctx)
    labels = wl.train_label_vectors(ctx)
    return (
        Pipeline.identity()
        .and_then(LowerCase())
        .and_then(Tokenizer())
        .and_then(TermFrequency(lambda c: 1.0))
        .and_then(CommonSparseFeatures(num_features), data)
        .and_then(LinearSolver(l2_reg=l2_reg), data, labels)
        .and_then(MaxClassifier())
        .fit(level="none")
    )


class TestStructuralFingerprint:
    def test_stateless_operators_fingerprint_equal(self):
        assert structural_fingerprint(LowerCase()) == structural_fingerprint(
            LowerCase()
        )
        assert structural_fingerprint(LowerCase()) != structural_fingerprint(
            Tokenizer()
        )

    def test_parameters_and_arrays_discriminate(self):
        a = StandardScaler()
        b = StandardScaler()
        assert structural_fingerprint(a) == structural_fingerprint(b)
        a.mean = np.arange(4.0)
        b.mean = np.arange(4.0)
        assert structural_fingerprint(a) == structural_fingerprint(b)
        b.mean = np.arange(4.0) + 1e-9
        assert structural_fingerprint(a) != structural_fingerprint(b)

    def test_lambdas_hash_by_code_not_identity(self):
        def make(scale):
            return lambda x: x * scale

        assert structural_fingerprint(make(2.0)) == structural_fingerprint(make(2.0))
        # A captured value is part of the structure.
        assert structural_fingerprint(make(2.0)) != structural_fingerprint(make(3.0))

    def test_opaque_leaves_never_alias(self):
        import threading

        lock = threading.Lock()
        assert structural_fingerprint(lock) != structural_fingerprint(threading.Lock())
        # Never-reused tokens: even the same object never matches itself,
        # so a recycled address after GC cannot alias two operators in a
        # long-lived shared cache.
        assert structural_fingerprint(lock) != structural_fingerprint(lock)

    def test_partials_and_bound_methods_hash_by_state(self):
        import functools

        def f(x, y):
            return x + y

        # C-backed callables must hash their real state, not collapse to
        # a type-name-only hash (which would be a false cache hit).
        assert structural_fingerprint(
            functools.partial(f, 2)
        ) == structural_fingerprint(functools.partial(f, 2))
        assert structural_fingerprint(
            functools.partial(f, 2)
        ) != structural_fingerprint(functools.partial(f, 3))
        a, b = StandardScaler(), StandardScaler()
        assert structural_fingerprint(a.fit) == structural_fingerprint(b.fit)
        b.mean = np.arange(3.0)
        assert structural_fingerprint(a.fit) != structural_fingerprint(b.fit)

    def test_object_arrays_hash_by_elements_not_pointers(self):
        a = np.array(["xy", "z"], dtype=object)
        b = np.array(["x", "yz"], dtype=object)
        # Independently allocated equal-content arrays must agree (raw
        # tobytes() would hash element addresses) and different content
        # must differ.
        assert structural_fingerprint(a) == structural_fingerprint(
            np.array(["xy", "z"], dtype=object)
        )
        assert structural_fingerprint(a) != structural_fingerprint(b)

    def test_referenced_globals_are_part_of_a_functions_structure(self):
        ns2 = {"SCALE": 2.0}
        ns3 = {"SCALE": 3.0}
        f2 = eval("lambda x: x * SCALE", ns2)
        f2b = eval("lambda x: x * SCALE", dict(ns2))
        f3 = eval("lambda x: x * SCALE", ns3)
        assert structural_fingerprint(f2) == structural_fingerprint(f2b)
        assert structural_fingerprint(f2) != structural_fingerprint(f3)

    def test_hashing_is_injective_across_value_boundaries(self):
        # Length-prefixed strings: bytes must not shift across element
        # boundaries and collide (a collision here would be a silent
        # wrong answer from the cross-version serving cache).
        assert structural_fingerprint(["a\x00sb", "c"]) != structural_fingerprint(
            ["a", "b\x00sc"]
        )
        assert structural_fingerprint(["ab", "c"]) != structural_fingerprint(
            ["a", "bc"]
        )
        assert structural_fingerprint(b"a\x00b") != structural_fingerprint(
            ["a", b"b"]
        )

    def test_op_key_folds_kind_op_and_parents(self):
        base = op_key(TRANSFORM, LowerCase(), (INPUT_KEY,))
        assert base == op_key(TRANSFORM, LowerCase(), (INPUT_KEY,))
        assert base != op_key(GATHER, LowerCase(), (INPUT_KEY,))
        assert base != op_key(TRANSFORM, Tokenizer(), (INPUT_KEY,))
        assert base != op_key(TRANSFORM, LowerCase(), (base,))

    def test_serde_packed_lambdas_key_by_source_location(self):
        # Pins the core/serde.py caveat incremental training leans on:
        # operators that pack captured lambdas in __getstate__ (e.g.
        # TermFrequency) marshal them *with* source location, so two
        # textually identical lambdas from different source lines key
        # differently.  Warm retrains and deduped sweeps therefore only
        # share lambda-parameterized ops built through a shared factory.
        first = TermFrequency(lambda c: 1.0)
        second = TermFrequency(lambda c: 1.0)
        assert structural_fingerprint(first) != structural_fingerprint(second)

        def factory():
            return TermFrequency(lambda c: 1.0)

        # One factory, independent builds: equal keys across processes
        # of one codebase — the contract GridSearch(incremental=True)
        # and refit() rely on.
        assert structural_fingerprint(factory()) == structural_fingerprint(factory())
        # Bare functions (no serde packing) hash by code object, which
        # excludes location: identical text on different lines agrees.
        assert structural_fingerprint(lambda c: 1.0) == structural_fingerprint(
            lambda c: 1.0
        )

    def test_unit_weighting_keys_stably_across_call_sites(self):
        # The named factory sidesteps the lambda-location caveat above:
        # unit_weighting() hands every caller the same module-level
        # function, which pickles by reference, so TermFrequency ops
        # built at different source locations (different modules, even)
        # share one fingerprint — the cross-build key agreement the
        # actor runtime's cross-fit shard cache depends on.
        first = TermFrequency(unit_weighting())
        second = TermFrequency(unit_weighting())
        assert structural_fingerprint(first) == structural_fingerprint(second)
        # And the round-trip is exact: re-unpacking yields the canonical
        # function itself, not a marshalled clone.
        restored = pickle.loads(pickle.dumps(first))
        assert restored.weighting is unit_weighting()
        assert restored.apply(["a", "a", "b"]) == {"a": 1.0, "b": 1.0}


class TestContentAddressedLowering:
    def test_independent_builds_share_all_keys(self):
        wl = amazon_reviews(120, 12, vocab_size=200, seed=0)
        p1 = lower_inference_program(_fit_text(wl))
        p2 = lower_inference_program(_fit_text(wl))
        # Node ids differ (fresh DAG per fit); content keys agree.
        assert [op.node_id for op in p1] != [op.node_id for op in p2]
        assert [op.key for op in p1] == [op.key for op in p2]

    def test_parameter_change_flips_key_downstream_only(self):
        wl = amazon_reviews(120, 12, vocab_size=200, seed=0)
        keys1 = [op.key for op in lower_inference_program(_fit_text(wl))]
        keys2 = [op.key for op in lower_inference_program(_fit_text(wl, l2_reg=1.0))]
        # input .. fitted CommonSparseFeatures: identical prefix.
        assert keys1[:5] == keys2[:5]
        # solver and everything after it: flipped.
        assert keys1[5] != keys2[5]
        assert keys1[6] != keys2[6]

    def test_input_placeholder_key_is_constant(self):
        wl = timit_frames(60, 8, dim=12, num_classes=3, seed=0)
        ctx = Context()
        fitted = (
            Pipeline.identity()
            .and_then(Normalizer())
            .and_then(
                LinearSolver(),
                wl.train_data(ctx),
                wl.train_label_vectors(ctx),
            )
            .fit(level="none")
        )
        program = lower_inference_program(fitted)
        assert program.ops[program.input_slot].key == INPUT_KEY

    def test_lowering_is_topological_and_indexed(self):
        wl = amazon_reviews(100, 8, vocab_size=150, seed=0)
        fitted = _fit_text(wl)
        program = lower_inference_program(fitted)
        assert len(program) == len(g.ancestors([fitted.sink]))
        for op in program:
            assert all(p < op.slot for p in op.parents)
            assert program.slot_of(op.node_id) == op.slot
            assert program.key_of(op.node_id) == op.key
        assert program.sink_slot == program.slot_of(fitted.sink.id)

    def test_training_lowering_rejects_unbound_input(self):
        pipe = Pipeline.identity().and_then(LowerCase())
        with pytest.raises(UnshippableFlow, match="pipeline input"):
            lower_training_program([pipe.sink], source_of=lambda node: None)

    def test_training_lowering_skips_keys_unless_asked(self):
        wl = timit_frames(60, 8, dim=12, num_classes=3, seed=0)
        ctx = Context()
        fitted = (
            Pipeline.identity()
            .and_then(Normalizer())
            .and_then(
                LinearSolver(),
                wl.train_data(ctx),
                wl.train_label_vectors(ctx),
            )
            .fit(level="none")
        )
        data = ctx.parallelize(wl.test_items, 2)

        def source_of(node):
            return data if node.is_pipeline_input else None

        # Default: the shard path never reads keys, so none are hashed.
        program, sources = lower_training_program([fitted.sink], source_of=source_of)
        assert all(op.key == "" for op in program)
        assert set(sources) == {fitted.input_node.id}
        # Opt-in: the same walk produces addressable keys.
        keyed, _ = lower_training_program(
            [fitted.sink], source_of=source_of, compute_keys=True
        )
        assert all(op.key for op in keyed)


class TestOpProgramPickle:
    def test_program_roundtrips_and_replays(self):
        wl = amazon_reviews(120, 12, vocab_size=200, seed=0)
        fitted = _fit_text(wl)
        program = lower_inference_program(fitted)
        loaded = pickle.loads(pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL))
        assert [op.key for op in loaded] == [op.key for op in program]
        assert loaded.input_slot == program.input_slot
        assert loaded.root_slots == program.root_slots
        assert loaded.slot_of(fitted.sink.id) == program.sink_slot
        got = [InferencePlan(loaded).run_item(x) for x in wl.test_items]
        assert comparable(got) == comparable([fitted.apply(x) for x in wl.test_items])


def _echo(slot, parents, key, label="t"):
    class _Plus(object):
        def __init__(self, delta):
            self.delta = delta

        def apply(self, item):
            return item + self.delta

        def apply_partition(self, items):
            return [item + self.delta for item in items]

    return Op(slot, 100 + slot, TRANSFORM, _Plus(slot), parents, label, key)


class TestProgramPasses:
    def _program_with_dead_op(self):
        ops = [
            Op(0, 100, INPUT, None, (), "input", INPUT_KEY),
            _echo(1, (0,), "k1"),
            _echo(2, (0,), "k2-dead"),
            _echo(3, (1,), "k3"),
        ]
        return OpProgram(ops, input_slot=0, root_slots=(3,))

    def test_dead_op_elimination_drops_and_renumbers(self):
        program = self._program_with_dead_op()
        before = InferencePlan(program).run_item(10)
        pruned = DeadOpElimination().run(program)
        assert len(pruned) == 3
        assert [op.key for op in pruned] == [INPUT_KEY, "k1", "k3"]
        assert pruned.input_slot == 0
        assert pruned.sink_slot == 2
        for op in pruned:
            assert all(p < op.slot for p in op.parents)
        assert InferencePlan(pruned).run_item(10) == before
        assert InferencePlan(pruned).run_batch([10, 20]) == [
            before,
            InferencePlan(program).run_item(20),
        ]

    def test_live_program_is_returned_unchanged(self):
        wl = amazon_reviews(100, 8, vocab_size=150, seed=0)
        program = lower_inference_program(_fit_text(wl))
        assert DeadOpElimination().run(program) is program

    def test_lowering_pass_hands_off_via_plan_state(self):
        wl = amazon_reviews(120, 12, vocab_size=200, seed=0)
        ctx = Context()
        data = wl.train_data(ctx)
        labels = wl.train_label_vectors(ctx)
        pipe = (
            Pipeline.identity()
            .and_then(LowerCase())
            .and_then(Tokenizer())
            .and_then(TermFrequency(lambda c: 1.0))
            .and_then(CommonSparseFeatures(80), data)
            .and_then(LinearSolver(), data, labels)
            .and_then(MaxClassifier())
        )
        passes = passes_for_level("none") + [LoweringPass()]
        plan = Optimizer(passes).optimize(pipe)
        assert [p.name for p in plan.state.program_passes] == ["DeadOpElimination"]
        assert "program_passes=['DeadOpElimination']" in plan.explain()
        fitted = plan.execute()
        assert [p.name for p in fitted.program_passes] == ["DeadOpElimination"]
        # The compiled plan went through the registered rewrites and
        # still matches the un-lowered reference byte for byte.
        compiled = compile_inference_plan(fitted)
        got = [compiled.run_item(x) for x in wl.test_items]
        assert comparable(got) == comparable([fitted.apply(x) for x in wl.test_items])

    def test_custom_program_pass_applies_at_compile(self):
        class CountOps(ProgramPass):
            seen = []

            def run(self, program):
                CountOps.seen.append(len(program))
                return program

        wl = amazon_reviews(100, 8, vocab_size=150, seed=0)
        ctx = Context()
        data = wl.train_data(ctx)
        labels = wl.train_label_vectors(ctx)
        pipe = (
            Pipeline.identity()
            .and_then(LowerCase())
            .and_then(Tokenizer())
            .and_then(TermFrequency(lambda c: 1.0))
            .and_then(CommonSparseFeatures(60), data)
            .and_then(LinearSolver(), data, labels)
        )
        passes = passes_for_level("none") + [
            LoweringPass(program_passes=[CountOps()])
        ]
        fitted = Optimizer(passes).optimize(pipe).execute()
        fitted.inference_plan()
        assert CountOps.seen, "pass must run when the plan is lowered"

    def test_lowering_pass_rejects_non_program_passes(self):
        with pytest.raises(TypeError, match="ProgramPass"):
            LoweringPass(program_passes=[object()])

    def test_op_removing_pass_keeps_warmup_registration_working(self):
        """A rewrite that drops ops (fusing the head pair) must not break
        warmup-based cache selection or serving — the plan may cover
        fewer node ids than the DAG has ancestors."""
        from repro.core.backends import recursive_apply_item
        from repro.core.fusion import FusedTransformer
        from repro.serving import ModelServer

        class FuseHead(ProgramPass):
            """Fuse the sink transform into its transform parent."""

            def run(self, program):
                sink = program.ops[program.sink_slot]
                parent = program.ops[sink.parents[0]]
                fusable = (
                    sink.kind == TRANSFORM
                    and parent.kind == TRANSFORM
                    and sink.slot == len(program) - 1
                )
                if not fusable:
                    return program
                fused = Op(
                    parent.slot,
                    parent.node_id,
                    TRANSFORM,
                    FusedTransformer([parent.op, sink.op]),
                    parent.parents,
                    f"{parent.label}+{sink.label}",
                    sink.key,
                )
                ops = [
                    fused if op.slot == parent.slot else op
                    for op in program.ops
                    if op.slot != sink.slot
                ]
                return OpProgram(
                    ops,
                    input_slot=program.input_slot,
                    root_slots=(parent.slot,),
                )

        wl = amazon_reviews(100, 10, vocab_size=150, seed=0)
        ctx = Context()
        data = wl.train_data(ctx)
        labels = wl.train_label_vectors(ctx)
        pipe = (
            Pipeline.identity()
            .and_then(LowerCase())
            .and_then(Tokenizer())
            .and_then(TermFrequency(lambda c: 1.0))
            .and_then(CommonSparseFeatures(60), data)
            .and_then(LinearSolver(), data, labels)
            .and_then(MaxClassifier())
        )
        passes = passes_for_level("none") + [
            LoweringPass(program_passes=[FuseHead()])
        ]
        fitted = Optimizer(passes).optimize(pipe).execute()
        plan = fitted.inference_plan()
        assert len(plan) == len(g.ancestors([fitted.sink])) - 1
        expected = [recursive_apply_item(fitted, x) for x in wl.test_items]
        assert [plan.run_item(x) for x in wl.test_items] == expected
        server = ModelServer(max_batch=4, cache_budget_bytes=1e7)
        with server:
            server.register("m", fitted, warmup_items=wl.test_items[:3])
            assert server.predict_many("m", wl.test_items) == expected
            again = server.predict_many("m", wl.test_items)
            assert again == expected


def _fit_vector(wl):
    """Dense pipeline whose every stage has a columnar kernel."""
    from repro.nodes.learning.random_features import CosineRandomFeatures

    ctx = Context()
    data = wl.train_data(ctx)
    labels = wl.train_label_vectors(ctx)
    return (
        Pipeline.identity()
        .and_then(StandardScaler(), data)
        .and_then(CosineRandomFeatures(16, seed=1), data)
        .and_then(LinearSolver(), data, labels)
        .fit(level="none")
    )


def _structure(program):
    """Everything VectorizePass commutation cares about, hashable-ish."""
    return (
        [
            (op.slot, op.kind, op.parents, op.label, op.key, op.node_id)
            for op in program.ops
        ],
        program.input_slot,
        program.root_slots,
    )


class TestVectorizePass:
    def test_groups_kernel_runs_and_preserves_keys(self):
        wl = timit_frames(60, 10, dim=12, num_classes=3, seed=0)
        fitted = _fit_vector(wl)
        program = lower_inference_program(fitted)
        vectorized = VectorizePass().run(program)
        stages = [
            op for op in vectorized if getattr(op.op, "member_labels", ())
        ]
        assert len(stages) == 1
        stage = stages[0]
        assert len(stage.op.members) == len(program) - 1
        assert stage.label.startswith("kernel[")
        # A stage keeps its last member's key and node id, so the
        # rewrite is invisible to content-addressed lookups.
        assert stage.key == program.ops[program.sink_slot].key
        assert vectorized.key_of(fitted.sink.id) == program.key_of(
            fitted.sink.id
        )
        desc = vectorized.describe()
        assert "kernel[" in desc and "fold " in desc
        # And the lowered semantics are byte-identical per item.
        got = [InferencePlan(vectorized).run_item(x) for x in wl.test_items]
        assert comparable(got) == comparable(
            [fitted.apply(x) for x in wl.test_items]
        )

    def test_commutes_with_dead_op_elimination(self):
        wl = timit_frames(60, 10, dim=12, num_classes=3, seed=0)
        program = lower_inference_program(_fit_vector(wl))
        dead = _echo(len(program.ops), (0,), "k-dead", label="dead")
        with_dead = OpProgram(
            list(program.ops) + [dead],
            input_slot=program.input_slot,
            root_slots=program.root_slots,
        )
        dce_first = VectorizePass().run(
            DeadOpElimination().run(with_dead)
        )
        vp_only = VectorizePass().run(with_dead)
        dce_last = DeadOpElimination().run(vp_only)
        assert _structure(dce_first) == _structure(vp_only)
        assert _structure(dce_last) == _structure(vp_only)

    def test_shared_slot_is_a_fusion_boundary(self):
        from repro.nodes.numeric import Normalizer as _N

        ops = [
            Op(0, 100, INPUT, None, (), "input", INPUT_KEY),
            Op(1, 101, TRANSFORM, _N(), (0,), "shared", "k1"),
            Op(2, 102, TRANSFORM, _N(), (1,), "left", "k2"),
            Op(3, 103, TRANSFORM, _N(), (1,), "right", "k3"),
        ]
        program = OpProgram(ops, input_slot=0, root_slots=(2, 3))
        vectorized = VectorizePass().run(program)
        # The shared slot feeds two consumers: nothing may fold across
        # it, so the op count is unchanged (each op wraps by itself).
        assert len(vectorized) == len(program)
        assert [op.key for op in vectorized] == [op.key for op in program]
        for op in vectorized:
            members = getattr(op.op, "members", ())
            assert len(members) <= 1
        item = np.arange(1.0, 5.0)
        before = InferencePlan(program).run_item(item)
        after = InferencePlan(vectorized).run_item(item)
        assert comparable([after]) == comparable([before])

    def test_kernel_stage_apply_matches_member_chain(self):
        wl = timit_frames(60, 10, dim=12, num_classes=3, seed=0)
        fitted = _fit_vector(wl)
        vectorized = VectorizePass().run(lower_inference_program(fitted))
        stage = next(
            op.op for op in vectorized if getattr(op.op, "members", ())
        )

        def chain(item):
            for member in stage.members:
                item = member.apply(item)
            return item

        expected = comparable([chain(x) for x in wl.test_items])
        assert comparable(
            [stage.apply(x) for x in wl.test_items]
        ) == expected
        assert comparable(stage.apply_partition(wl.test_items)) == expected

    def test_registers_with_lowering_pass(self):
        wl = timit_frames(60, 10, dim=12, num_classes=3, seed=0)
        from repro.nodes.learning.random_features import CosineRandomFeatures

        ctx = Context()
        data = wl.train_data(ctx)
        labels = wl.train_label_vectors(ctx)
        pipe = (
            Pipeline.identity()
            .and_then(StandardScaler(), data)
            .and_then(CosineRandomFeatures(16, seed=1), data)
            .and_then(LinearSolver(), data, labels)
        )
        passes = passes_for_level("none") + [
            LoweringPass(program_passes=[DeadOpElimination(), VectorizePass()])
        ]
        fitted = Optimizer(passes).optimize(pipe).execute()
        assert [p.name for p in fitted.program_passes] == [
            "DeadOpElimination",
            "VectorizePass",
        ]
        # The registered pass applies even with the serving knob off...
        cold = compile_inference_plan(fitted, vectorize=False)
        assert "kernel[" in cold.describe()
        # ...and the knob does not double-wrap an already lowered program.
        warm = compile_inference_plan(fitted, vectorize=True)
        assert len(warm) == len(cold)
        got = [warm.run_item(x) for x in wl.test_items]
        assert comparable(got) == comparable(
            [fitted.apply(x) for x in wl.test_items]
        )

    def test_boundary_keys_split_stages(self):
        wl = timit_frames(60, 10, dim=12, num_classes=3, seed=0)
        fitted = _fit_vector(wl)
        program = lower_inference_program(fitted)
        # Pin the middle op (random features): it may end a stage but
        # never vanish into one — the serving cache's fold contract.
        middle = program.ops[2]
        vectorized = VectorizePass(boundaries={middle.key}).run(program)
        assert middle.key in {op.key for op in vectorized}
        stages = [op for op in vectorized if getattr(op.op, "members", ())]
        assert len(stages) == 2
        got = [InferencePlan(vectorized).run_item(x) for x in wl.test_items]
        assert comparable(got) == comparable(
            [fitted.apply(x) for x in wl.test_items]
        )
