"""Tests for the four PCA implementations and their cost models."""

import numpy as np
import pytest

from repro.cluster.resources import r3_4xlarge
from repro.core.stats import DataStats
from repro.dataset import Context
from repro.nodes.learning.pca import (
    DistributedSVD,
    DistributedTSVD,
    LocalSVD,
    LocalTSVD,
    PCAEstimator,
)


@pytest.fixture
def ctx():
    return Context(default_partitions=4)


def _anisotropic_data(ctx, n=300, d=12, k_strong=3, seed=0):
    """Data with k_strong dominant directions; returns (dataset, basis)."""
    rng = np.random.default_rng(seed)
    basis, _ = np.linalg.qr(rng.standard_normal((d, d)))
    scales = np.ones(d) * 0.05
    scales[:k_strong] = [10.0, 6.0, 3.0][:k_strong]
    data = rng.standard_normal((n, d)) * scales @ basis.T
    return ctx.parallelize(list(data), 4), basis[:, :k_strong]


def _subspace_error(components, target_basis):
    """Largest principal angle proxy between two subspaces (0 = equal)."""
    q1, _ = np.linalg.qr(components)
    q2, _ = np.linalg.qr(target_basis)
    sigma = np.linalg.svd(q1.T @ q2, compute_uv=False)
    return 1.0 - sigma.min()


class TestCorrectness:
    @pytest.mark.parametrize("impl_cls", [LocalSVD, LocalTSVD,
                                          DistributedSVD, DistributedTSVD])
    def test_recovers_dominant_subspace(self, ctx, impl_cls):
        data, basis = _anisotropic_data(ctx)
        transformer = impl_cls(3).fit(data)
        assert transformer.components.shape == (12, 3)
        assert _subspace_error(transformer.components, basis) < 0.05

    def test_implementations_agree_on_projection_energy(self, ctx):
        data, _ = _anisotropic_data(ctx, seed=1)
        dense = np.vstack(data.collect())
        energies = []
        for impl_cls in (LocalSVD, LocalTSVD, DistributedSVD,
                         DistributedTSVD):
            t = impl_cls(3).fit(data)
            projected = (dense - t.mean) @ t.components
            energies.append(np.sum(projected ** 2))
        ref = energies[0]
        for e in energies[1:]:
            assert e == pytest.approx(ref, rel=0.02)

    def test_transformer_applies_to_descriptor_matrix(self, ctx):
        data, _ = _anisotropic_data(ctx)
        t = LocalSVD(2).fit(data)
        out = t.apply(np.vstack(data.take(5)))
        assert out.shape == (5, 2)

    def test_transformer_applies_to_vector(self, ctx):
        data, _ = _anisotropic_data(ctx)
        t = LocalSVD(2).fit(data)
        assert t.apply(data.first()).shape == (2,)

    def test_mean_centering(self, ctx):
        rng = np.random.default_rng(2)
        rows = list(rng.standard_normal((100, 5)) + 100.0)
        t = LocalSVD(2).fit(ctx.parallelize(rows, 2))
        projected = np.vstack([t.apply(r) for r in rows])
        np.testing.assert_allclose(projected.mean(axis=0), 0.0, atol=1e-8)

    def test_empty_input_raises(self, ctx):
        with pytest.raises(ValueError, match="empty"):
            LocalSVD(2).fit(ctx.parallelize([], 1))

    def test_tsvd_deterministic_with_seed(self, ctx):
        data, _ = _anisotropic_data(ctx)
        a = LocalTSVD(3, seed=5).fit(data)
        b = LocalTSVD(3, seed=5).fit(data)
        np.testing.assert_allclose(a.components, b.components)


class TestLogicalOperator:
    def test_default_fit(self, ctx):
        data, basis = _anisotropic_data(ctx)
        t = PCAEstimator(3).fit(data)
        assert _subspace_error(t.components, basis) < 0.05

    def test_invalid_k(self):
        with pytest.raises(ValueError, match="k must"):
            PCAEstimator(0)

    def test_unknown_default(self, ctx):
        data, _ = _anisotropic_data(ctx)
        with pytest.raises(ValueError, match="unknown default"):
            PCAEstimator(2, default="quantum-svd").fit(data)

    def test_options_count(self):
        assert len(PCAEstimator(2).options()) == 4


class TestSelection:
    """Table 2's selection patterns."""

    def _choice(self, n, d, k, res):
        est = PCAEstimator(k)
        return type(est.optimize(DataStats(n=n, d=d, k=1), res)).__name__

    def test_small_data_small_k_local_approx(self):
        choice = self._choice(10_000, 4096, 16, r3_4xlarge(16))
        assert choice in ("LocalTSVD", "DistributedTSVD")

    def test_small_data_exact_when_k_near_d(self):
        choice = self._choice(10_000, 256, 200, r3_4xlarge(16))
        assert "SVD" in choice and "TSVD" not in choice

    def test_large_data_goes_distributed(self):
        choice = self._choice(100_000_000, 4096, 16, r3_4xlarge(16))
        assert choice.startswith("Distributed")

    def test_local_infeasible_when_too_big(self):
        from repro.nodes.learning.pca import LocalSVDCostModel

        model = LocalSVDCostModel(LocalSVD(16))
        stats = DataStats(n=1_000_000_000, d=4096)
        assert not model.feasible(stats, r3_4xlarge(16))
