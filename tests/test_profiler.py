"""Tests for execution subsampling and pipeline profiling."""

import numpy as np
import pytest

from repro.cluster.resources import local_machine
from repro.core import graph as g
from repro.core.operators import (
    Estimator,
    LabelEstimator,
    Optimizable,
    Transformer,
)
from repro.core.pipeline import Pipeline
from repro.core.profiler import _extrapolate, profile_pipeline
from repro.cost.model import CostModel
from repro.cost.profile import CostProfile
from repro.dataset import Context


class Doubler(Transformer):
    def apply(self, x):
        return x * 2


class Expander(Transformer):
    """flat-map-like behaviour through apply_partition."""

    def apply_partition(self, items):
        return [x for item in items for x in (item, item)]

    def apply(self, x):
        return x


class MeanEstimator(Estimator):
    def fit(self, data):
        values = data.collect()
        mean = sum(values) / len(values)

        class Shift(Transformer):
            def apply(self, x, _m=mean):
                return x - _m

        return Shift()


class TestExtrapolate:
    def test_linear_fit(self):
        # t(n) = 2 + 3n
        assert _extrapolate(10, 32, 20, 62, 100) == pytest.approx(302)

    def test_negative_slope_clamped(self):
        assert _extrapolate(10, 50, 20, 40, 1000) == pytest.approx(40)

    def test_equal_points_scales_proportionally(self):
        assert _extrapolate(10, 5, 10, 5, 100) == pytest.approx(50)


class TestProfile:
    def _fitted_graph(self, ctx):
        data = ctx.parallelize([float(i) for i in range(100)], 4)
        pipe = (Pipeline.identity()
                .and_then(Doubler())
                .and_then(MeanEstimator(), data))
        return pipe.sink

    def test_all_nodes_profiled(self):
        ctx = Context()
        sink = self._fitted_graph(ctx)
        profile = profile_pipeline([sink], local_machine(),
                                   sample_sizes=(10, 20))
        for node in g.ancestors([sink]):
            assert node.id in profile.nodes

    def test_row_count_extrapolation(self):
        ctx = Context()
        data = ctx.parallelize(list(range(1000)), 4)
        pipe = Pipeline.identity().and_then(MeanEstimator(), data)
        profile = profile_pipeline([pipe.sink], local_machine(),
                                   sample_sizes=(10, 20))
        # The training-flow source extrapolates to the full 1000 records.
        source_nodes = [n for n in g.ancestors([pipe.sink])
                        if n.kind == g.SOURCE and not n.is_pipeline_input]
        assert profile.nodes[source_nodes[0].id].stats.n == 1000

    def test_flat_map_ratio_propagates(self):
        ctx = Context()
        data = ctx.parallelize(list(range(500)), 4)
        pipe = (Pipeline.identity()
                .and_then(Expander())
                .and_then(MeanEstimator(), data))
        profile = profile_pipeline([pipe.sink], local_machine(),
                                   sample_sizes=(10, 20))
        expander_nodes = [n for n in g.ancestors([pipe.sink])
                          if n.label == "Expander"
                          and n.parents[0].kind == g.SOURCE]
        stats = profile.nodes[expander_nodes[0].id].stats
        assert stats.n == 1000  # 2x expansion extrapolated

    def test_sizes_grow_with_n(self):
        ctx = Context()
        data = ctx.parallelize([np.ones(50) for _ in range(400)], 4)
        pipe = Pipeline.identity().and_then(MeanEstimator(), data)
        profile = profile_pipeline([pipe.sink], local_machine(),
                                   sample_sizes=(10, 20))
        source = [n for n in g.ancestors([pipe.sink])
                  if n.kind == g.SOURCE and not n.is_pipeline_input][0]
        # 400 rows x 400 bytes
        assert profile.size(source.id) == pytest.approx(400 * 400, rel=0.3)

    def test_profiling_seconds_recorded(self):
        ctx = Context()
        sink = self._fitted_graph(ctx)
        profile = profile_pipeline([sink], local_machine(),
                                   sample_sizes=(5, 10))
        assert profile.profiling_seconds > 0


class TestOperatorSelection:
    class ToyOptimizable(LabelEstimator, Optimizable):
        """Two options whose cost models prefer by sparsity."""

        def options(self):
            dense_op = _FixedEstimator("dense")
            sparse_op = _FixedEstimator("sparse")
            return [(_SparsityCost("dense-impl", wants_sparse=False),
                     dense_op),
                    (_SparsityCost("sparse-impl", wants_sparse=True),
                     sparse_op)]

        def fit(self, data, labels):
            raise AssertionError("logical operator should have been "
                                 "replaced before fitting")

    def test_selection_replaces_op(self):
        ctx = Context()
        data = ctx.parallelize([np.ones(10) for _ in range(50)], 2)
        labels = ctx.parallelize([np.ones(2) for _ in range(50)], 2)
        pipe = Pipeline.identity().and_then(self.ToyOptimizable(),
                                            data, labels)
        profile = profile_pipeline([pipe.sink], local_machine(),
                                   sample_sizes=(5, 10),
                                   select_operators=True)
        assert "_FixedEstimator" in profile.selections.values()
        est_node = [n for n in g.ancestors([pipe.sink])
                    if n.kind == g.ESTIMATOR][0]
        assert isinstance(est_node.op, _FixedEstimator)
        assert est_node.op.name == "dense"  # input was dense

    def test_selection_skipped_when_disabled(self):
        ctx = Context()
        data = ctx.parallelize([np.ones(10) for _ in range(50)], 2)
        labels = ctx.parallelize([np.ones(2) for _ in range(50)], 2)
        pipe = Pipeline.identity().and_then(self.ToyOptimizable(),
                                            data, labels)
        with pytest.raises(AssertionError, match="should have been"):
            profile_pipeline([pipe.sink], local_machine(),
                             sample_sizes=(5, 10), select_operators=False)


class _FixedEstimator(LabelEstimator):
    def __init__(self, name):
        self.name = name

    def fit(self, data, labels):
        class Noop(Transformer):
            def apply(self, x):
                return x

        return Noop()


class _SparsityCost(CostModel):
    def __init__(self, name, wants_sparse):
        self.name = name
        self.wants_sparse = wants_sparse

    def cost(self, stats, workers):
        cheap = stats.is_sparse == self.wants_sparse
        return CostProfile(flops=1e6 if cheap else 1e12)
