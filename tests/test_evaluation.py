"""Tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.evaluation import accuracy, mean_average_precision, top_k_accuracy


class TestAccuracy:
    def test_exact(self):
        assert accuracy([1, 2, 3], [1, 2, 0]) == pytest.approx(2 / 3)

    def test_perfect(self):
        assert accuracy([0, 1], [0, 1]) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            accuracy([1], [1, 2])

    def test_empty(self):
        with pytest.raises(ValueError, match="empty"):
            accuracy([], [])


class TestTopK:
    def test_top1_equals_argmax_accuracy(self):
        scores = [np.array([0.1, 0.9]), np.array([0.8, 0.2])]
        assert top_k_accuracy(scores, [1, 1], k=1) == pytest.approx(0.5)

    def test_topk_wider_net(self):
        scores = [np.array([0.5, 0.4, 0.1])] * 2
        assert top_k_accuracy(scores, [1, 2], k=2) == pytest.approx(0.5)
        assert top_k_accuracy(scores, [1, 2], k=3) == 1.0

    def test_k_exceeds_classes(self):
        scores = [np.array([0.5, 0.5])]
        assert top_k_accuracy(scores, [0], k=10) == 1.0

    def test_empty(self):
        with pytest.raises(ValueError, match="empty"):
            top_k_accuracy([], [])


class TestMAP:
    def test_perfect_ranking(self):
        scores = [np.array([1.0, 0.0]), np.array([0.9, 0.1]),
                  np.array([0.0, 1.0])]
        labels = [0, 0, 1]
        assert mean_average_precision(scores, labels, 2) == pytest.approx(1.0)

    def test_worst_ranking_for_one_class(self):
        # Class 0's relevant item ranked last among three.
        scores = [np.array([0.1]), np.array([0.5]), np.array([0.9])]
        labels = [0, 1, 1]

        # Single class: AP = precision at the relevant position = 1/3.
        ap = mean_average_precision(
            [np.concatenate([s, [0]]) for s in scores], labels, 1)
        assert ap == pytest.approx(1 / 3)

    def test_absent_class_skipped(self):
        scores = [np.array([1.0, 0.0])]
        assert mean_average_precision(scores, [0], 2) == 1.0

    def test_no_classes_raises(self):
        with pytest.raises(ValueError, match="no classes"):
            mean_average_precision([np.zeros(3)], [7], 2)
