"""Tests for byte-size estimation of cached objects."""

import numpy as np
import scipy.sparse as sp

from repro.dataset.sizing import estimate_size


class TestEstimateSize:
    def test_numpy_exact(self):
        arr = np.zeros((100, 10))
        assert estimate_size(arr) == arr.nbytes

    def test_sparse_counts_arrays(self):
        m = sp.random(100, 1000, density=0.01, format="csr")
        est = estimate_size(m)
        expected = m.data.nbytes + m.indices.nbytes + m.indptr.nbytes
        assert est == expected

    def test_sparse_much_smaller_than_dense(self):
        m = sp.random(100, 10_000, density=0.001, format="csr")
        assert estimate_size(m) < estimate_size(m.toarray()) / 50

    def test_none_is_zero(self):
        assert estimate_size(None) == 0

    def test_string(self):
        assert estimate_size("hello") > 5

    def test_list_of_arrays(self):
        rows = [np.zeros(100) for _ in range(10)]
        est = estimate_size(rows)
        assert est >= 10 * 800

    def test_long_list_sampling_close_to_exact(self):
        rows = [np.zeros(50) for _ in range(10_000)]
        est = estimate_size(rows)
        exact = 10_000 * 400
        assert 0.8 * exact < est < 1.5 * exact

    def test_dict(self):
        d = {"a": np.zeros(100), "b": np.zeros(100)}
        assert estimate_size(d) >= 1600

    def test_nested_tuple(self):
        item = (np.zeros(10), "text", 3)
        assert estimate_size(item) >= 80

    def test_empty_list(self):
        assert estimate_size([]) > 0
