"""Tests for the byte-budgeted cache manager and its policies."""

import pytest

from repro.dataset.cache import (
    AdmissionControlledLRUPolicy,
    CacheManager,
    LRUPolicy,
    PinnedPolicy,
)


class TestLRU:
    def test_put_get(self):
        cache = CacheManager(100, LRUPolicy())
        assert cache.put(("a", 0), [1], 10)
        assert cache.get(("a", 0)) == [1]
        assert cache.hits == 1

    def test_miss_counted(self):
        cache = CacheManager(100, LRUPolicy())
        assert cache.get(("nope", 0)) is None
        assert cache.misses == 1

    def test_evicts_least_recently_used(self):
        cache = CacheManager(100, LRUPolicy())
        cache.put("a", [1], 40)
        cache.put("b", [2], 40)
        cache.get("a")  # touch a; b is now LRU
        cache.put("c", [3], 40)
        assert cache.contains("a")
        assert not cache.contains("b")
        assert cache.contains("c")
        assert cache.evictions == 1

    def test_used_accounting(self):
        cache = CacheManager(100, LRUPolicy())
        cache.put("a", [1], 30)
        cache.put("b", [2], 30)
        assert cache.used == 60
        cache.put("c", [3], 60)  # evicts "a" only; "b" + "c" fit
        assert cache.used == 90
        assert len(cache) == 2
        assert not cache.contains("a")

    def test_oversized_object_rejected(self):
        cache = CacheManager(100, LRUPolicy())
        assert not cache.put("big", [0], 200)
        assert cache.rejections == 1

    def test_duplicate_put_is_noop(self):
        cache = CacheManager(100, LRUPolicy())
        cache.put("a", [1], 10)
        assert cache.put("a", [999], 10)
        assert cache.get("a") == [1]
        assert cache.used == 10

    def test_invalidate_predicate(self):
        cache = CacheManager(100, LRUPolicy())
        cache.put(("ds1", 0), [1], 10)
        cache.put(("ds1", 1), [2], 10)
        cache.put(("ds2", 0), [3], 10)
        cache.invalidate(lambda k: k[0] == "ds1")
        assert not cache.contains(("ds1", 0))
        assert cache.contains(("ds2", 0))
        assert cache.used == 10

    def test_clear(self):
        cache = CacheManager(100, LRUPolicy())
        cache.put("a", [1], 10)
        cache.clear()
        assert len(cache) == 0
        assert cache.used == 0


class TestAdmissionControl:
    def test_refuses_objects_above_fraction(self):
        cache = CacheManager(100, AdmissionControlledLRUPolicy(0.5))
        assert not cache.put("big", [0], 60)
        assert cache.put("small", [0], 40)

    def test_admission_causes_lru_pathology(self):
        """Bigger budget can admit huge unused objects that evict reused
        small ones — the paper's Amazon LRU anomaly."""
        small_budget = CacheManager(100, AdmissionControlledLRUPolicy(0.6))
        # 80-byte object refused at budget 100 -> small objects survive.
        small_budget.put("reused", [1], 30)
        assert not small_budget.put("huge", [0], 80)
        assert small_budget.contains("reused")

        big_budget = CacheManager(200, AdmissionControlledLRUPolicy(0.6))
        big_budget.put("reused", [1], 30)
        big_budget.put("huge1", [0], 90)
        big_budget.put("huge2", [0], 90)  # evicts "reused"
        assert not big_budget.contains("reused")

    def test_invalid_fraction(self):
        with pytest.raises(ValueError, match="fraction"):
            AdmissionControlledLRUPolicy(0.0)


class TestPinned:
    def test_only_pinned_admitted(self):
        cache = CacheManager(100, PinnedPolicy({"keep"}))
        assert cache.put("keep", [1], 10)
        assert not cache.put("drop", [2], 10)

    def test_pinned_never_evicted(self):
        cache = CacheManager(50, PinnedPolicy({"a", "b"}))
        cache.put("a", [1], 40)
        assert not cache.put("b", [2], 40)  # no victim available
        assert cache.contains("a")

    def test_dataset_id_prefix_pinning(self):
        cache = CacheManager(100, PinnedPolicy({42}))
        assert cache.put((42, 0), [1], 10)
        assert cache.put((42, 1), [2], 10)
        assert not cache.put((43, 0), [3], 10)


class TestThreadSafety:
    def test_concurrent_put_get_keeps_accounting_consistent(self):
        """Regression: concurrent evictions raced entries.pop and drifted
        the used-bytes accounting (pipelined backend workload)."""
        import threading

        from repro.dataset.cache import CacheManager, LRUPolicy

        manager = CacheManager(budget_bytes=10_000, policy=LRUPolicy())
        errors = []

        def hammer(tid):
            try:
                for i in range(300):
                    key = (tid % 3, i % 40)
                    if manager.get(key) is None:
                        manager.put(key, [i], 500)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert manager.used == sum(e.size for e in manager.entries.values())
        assert manager.used <= manager.budget
