"""Tests for the synthetic workload generators and the Table-3 registry."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.dataset import Context
from repro.workloads import (
    PAPER_DATASETS,
    amazon_reviews,
    cifar10_images,
    dense_vectors,
    imagenet_images,
    measured_characteristics,
    sparse_vectors,
    timit_frames,
    voc_images,
    youtube8m,
)


class TestGenerators:
    @pytest.mark.parametrize("gen", [
        lambda: amazon_reviews(100, 20),
        lambda: timit_frames(100, 20, dim=32, num_classes=5),
        lambda: voc_images(10, 5, size=32, num_classes=3),
        lambda: imagenet_images(10, 5, size=32, num_classes=3),
        lambda: cifar10_images(10, 5, num_classes=3),
        lambda: dense_vectors(100, 20, dim=16),
        lambda: sparse_vectors(100, 20, dim=200),
        lambda: youtube8m(100, 20, dim=32, num_classes=5),
    ])
    def test_sizes_and_label_ranges(self, gen):
        wl = gen()
        assert wl.num_train == 100 or wl.num_train == 10
        assert len(wl.train_labels) == wl.num_train
        assert len(wl.test_labels) == wl.num_test
        assert all(0 <= y < wl.num_classes for y in wl.train_labels)

    def test_amazon_documents_are_text(self):
        wl = amazon_reviews(20, 5)
        assert all(isinstance(d, str) and d for d in wl.train_items)

    def test_amazon_deterministic(self):
        a = amazon_reviews(30, 5, seed=42)
        b = amazon_reviews(30, 5, seed=42)
        assert a.train_items == b.train_items
        assert a.train_labels == b.train_labels

    def test_amazon_seeds_differ(self):
        a = amazon_reviews(30, 5, seed=1)
        b = amazon_reviews(30, 5, seed=2)
        assert a.train_items != b.train_items

    def test_timit_dims(self):
        wl = timit_frames(50, 10, dim=440, num_classes=20)
        assert wl.train_items[0].shape == (440,)

    def test_images_in_unit_range(self):
        wl = voc_images(5, 2, size=32)
        img = wl.train_items[0]
        assert img.shape == (32, 32, 3)
        assert img.min() >= 0 and img.max() <= 1.0

    def test_sparse_rows_sparse(self):
        wl = sparse_vectors(50, 10, dim=1000, nnz_per_row=15)
        row = wl.train_items[0]
        assert sp.issparse(row)
        assert row.nnz < 50

    def test_class_signal_learnable(self):
        """Linear separation on dense vectors beats chance by a margin."""
        from repro.nodes.learning.linear import LocalQRSolver
        from repro.nodes.numeric import MaxClassifier

        ctx = Context()
        wl = dense_vectors(400, 100, dim=20, class_separation=2.0, seed=0)
        model = LocalQRSolver().fit(wl.train_data(ctx),
                                    wl.train_label_vectors(ctx))
        preds = [MaxClassifier().apply(model.apply(x))
                 for x in wl.test_items]
        acc = np.mean([p == y for p, y in zip(preds, wl.test_labels)])
        assert acc > 0.8


class TestWorkloadContainer:
    def test_train_data_roundtrip(self):
        ctx = Context()
        wl = dense_vectors(40, 10, dim=4)
        assert wl.train_data(ctx, 4).count() == 40

    def test_label_vectors_one_hot(self):
        ctx = Context()
        wl = dense_vectors(10, 2, dim=4, num_classes=3)
        vec = wl.train_label_vectors(ctx).first()
        assert vec.shape == (3,)
        assert np.sum(vec == 1.0) == 1
        assert np.sum(vec == -1.0) == 2


class TestRegistry:
    def test_paper_rows_present(self):
        assert set(PAPER_DATASETS) == {"amazon", "timit", "imagenet",
                                       "voc", "cifar10", "youtube8m"}

    def test_paper_amazon_row(self):
        row = PAPER_DATASETS["amazon"]
        assert row.num_train == 65_000_000
        assert row.solve_features == 100_000

    def test_measured_characteristics(self):
        wl = dense_vectors(100, 20, dim=64)
        row = measured_characteristics(wl)
        assert row.num_train == 100
        assert row.solve_features == 64
        assert row.solve_density == 1.0
        assert row.train_size_gb > 0

    def test_measured_sparse(self):
        wl = sparse_vectors(100, 20, dim=1000, nnz_per_row=10)
        row = measured_characteristics(wl)
        assert row.solve_density < 0.05

    def test_explicit_solve_shape(self):
        wl = amazon_reviews(50, 10)
        row = measured_characteristics(wl, solve_features=100_000,
                                       solve_density=0.001)
        assert row.solve_features == 100_000
        assert row.solve_size_gb == pytest.approx(
            50 * 100_000 * 8 * 0.001 / 1e9)
