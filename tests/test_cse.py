"""Tests for common sub-expression elimination (paper Section 4.2)."""


from repro.core import graph as g
from repro.core.cse import count_merged, eliminate_common_subexpressions
from repro.core.operators import Estimator, Transformer
from repro.core.pipeline import Pipeline
from repro.dataset import Context


class Inc(Transformer):
    def apply(self, x):
        return x + 1


class CountingEstimator(Estimator):
    """Counts fit invocations, to prove merged estimators fit once."""

    def __init__(self):
        self.fits = 0

    def fit(self, data):
        self.fits += 1
        return Inc()


def _nodes(sink):
    return g.ancestors([sink])


class TestMerging:
    def test_identical_chains_merge(self):
        ctx = Context()
        ds = ctx.parallelize([1, 2, 3])
        op = Inc()
        # Two separately-built chains over the same op instance and data.
        a = g.OpNode(g.TRANSFORMER, op, (g.source(ds),))
        b = g.OpNode(g.TRANSFORMER, op, (g.source(ds),))
        top = g.OpNode(g.GATHER, None, (a, b))
        merged = eliminate_common_subexpressions([top])[0]
        assert merged.parents[0] is merged.parents[1]

    def test_different_ops_not_merged(self):
        ctx = Context()
        ds = ctx.parallelize([1])
        a = g.OpNode(g.TRANSFORMER, Inc(), (g.source(ds),))
        b = g.OpNode(g.TRANSFORMER, Inc(), (g.source(ds),))  # distinct op
        top = g.OpNode(g.GATHER, None, (a, b))
        merged = eliminate_common_subexpressions([top])[0]
        assert merged.parents[0] is not merged.parents[1]

    def test_sources_merge_by_dataset_identity(self):
        ctx = Context()
        ds = ctx.parallelize([1])
        top = g.OpNode(g.GATHER, None, (g.source(ds), g.source(ds)))
        merged = eliminate_common_subexpressions([top])[0]
        assert merged.parents[0] is merged.parents[1]

    def test_distinct_datasets_not_merged(self):
        ctx = Context()
        top = g.OpNode(g.GATHER, None, (g.source(ctx.parallelize([1])),
                                        g.source(ctx.parallelize([1]))))
        merged = eliminate_common_subexpressions([top])[0]
        assert merged.parents[0] is not merged.parents[1]

    def test_placeholders_never_merge(self):
        top = g.OpNode(g.GATHER, None,
                       (g.pipeline_input(), g.pipeline_input()))
        merged = eliminate_common_subexpressions([top])[0]
        assert merged.parents[0] is not merged.parents[1]

    def test_count_merged(self):
        ctx = Context()
        ds = ctx.parallelize([1])
        op = Inc()
        a = g.OpNode(g.TRANSFORMER, op, (g.source(ds),))
        b = g.OpNode(g.TRANSFORMER, op, (g.source(ds),))
        top = g.OpNode(g.GATHER, None, (a, b))
        assert count_merged([top]) == 2  # one source + one transformer

    def test_already_canonical_graph_unchanged(self):
        inp = g.pipeline_input()
        sink = g.OpNode(g.TRANSFORMER, Inc(), (inp,))
        merged = eliminate_common_subexpressions([sink])[0]
        assert merged is sink


class TestPipelineLevel:
    def test_estimator_training_prefix_merges_with_main_flow(self):
        """The paper's text-pipeline scenario: featurization reused by
        both the feature selector and the classifier trains once."""
        ctx = Context()
        data = ctx.parallelize([1.0, 2.0, 3.0])
        est1 = CountingEstimator()
        est2 = CountingEstimator()
        pipe = (Pipeline.identity()
                .and_then(Inc())
                .and_then(est1, data)
                .and_then(est2, data))
        before = len(_nodes(pipe.sink))
        after = len(_nodes(eliminate_common_subexpressions([pipe.sink])[0]))
        assert after < before

    def test_execution_correct_after_cse(self):
        ctx = Context()
        data = ctx.parallelize([1.0, 2.0, 3.0])
        pipe = (Pipeline.identity()
                .and_then(Inc())
                .and_then(CountingEstimator(), data)
                .and_then(CountingEstimator(), data))
        fit_plain = pipe.fit(level="none")
        fit_cse = pipe.fit(level="pipe", sample_sizes=(2, 3))
        assert fit_plain.apply(1.0) == fit_cse.apply(1.0)

    def test_cse_reported_in_training_report(self):
        ctx = Context()
        data = ctx.parallelize([1.0, 2.0, 3.0])
        pipe = (Pipeline.identity()
                .and_then(Inc())
                .and_then(CountingEstimator(), data)
                .and_then(CountingEstimator(), data))
        fitted = pipe.fit(level="pipe", sample_sizes=(2, 3))
        assert fitted.training_report.cse_nodes_removed > 0
