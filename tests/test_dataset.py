"""Tests for the lazy partitioned Dataset substrate."""

import numpy as np
import pytest

from repro.dataset import Context, Dataset
from repro.dataset.cache import LRUPolicy, PinnedPolicy


@pytest.fixture
def ctx():
    return Context(default_partitions=4)


class TestConstruction:
    def test_parallelize_roundtrip(self, ctx):
        items = list(range(17))
        assert ctx.parallelize(items).collect() == items

    def test_partition_count(self, ctx):
        ds = ctx.parallelize(range(10), 3)
        assert ds.num_partitions == 3
        assert sum(len(ds.partition(i)) for i in range(3)) == 10

    def test_empty_dataset(self, ctx):
        ds = ctx.parallelize([], 2)
        assert ds.collect() == []
        assert ds.count() == 0

    def test_more_partitions_than_items(self, ctx):
        ds = ctx.parallelize([1, 2], 5)
        assert ds.collect() == [1, 2]

    def test_invalid_partitions(self, ctx):
        with pytest.raises(ValueError, match="num_partitions"):
            Dataset.from_items(ctx, [1], 0)


class TestTransformations:
    def test_map(self, ctx):
        ds = ctx.parallelize(range(10))
        assert ds.map(lambda x: x * 2).collect() == [x * 2 for x in range(10)]

    def test_map_is_lazy(self, ctx):
        calls = []
        ds = ctx.parallelize(range(4)).map(lambda x: calls.append(x) or x)
        assert calls == []
        ds.collect()
        assert sorted(calls) == list(range(4))

    def test_flat_map(self, ctx):
        ds = ctx.parallelize([1, 2, 3], 2)
        assert ds.flat_map(lambda x: [x] * x).collect() == [1, 2, 2, 3, 3, 3]

    def test_filter(self, ctx):
        ds = ctx.parallelize(range(10))
        assert ds.filter(lambda x: x % 2 == 0).collect() == [0, 2, 4, 6, 8]

    def test_map_partitions(self, ctx):
        ds = ctx.parallelize(range(10), 2)
        out = ds.map_partitions(lambda rows: [sum(rows)])
        assert out.collect() == [sum(range(5)), sum(range(5, 10))]

    def test_zip(self, ctx):
        a = ctx.parallelize(range(6), 3)
        b = a.map(lambda x: x * 10)
        assert a.zip(b).collect() == [(x, x * 10) for x in range(6)]

    def test_zip_partition_mismatch(self, ctx):
        a = ctx.parallelize(range(6), 3)
        b = ctx.parallelize(range(6), 2)
        with pytest.raises(ValueError, match="partition counts"):
            a.zip(b)

    def test_zip_length_mismatch(self, ctx):
        a = ctx.parallelize(range(6), 2)
        b = a.filter(lambda x: x > 0)
        with pytest.raises(ValueError, match="length mismatch"):
            a.zip(b).collect()

    def test_zip_with_index(self, ctx):
        ds = ctx.parallelize(["a", "b", "c"], 2)
        assert ds.zip_with_index().collect() == [("a", 0), ("b", 1), ("c", 2)]

    def test_union(self, ctx):
        a = ctx.parallelize([1, 2], 1)
        b = ctx.parallelize([3, 4], 2)
        u = a.union(b)
        assert u.collect() == [1, 2, 3, 4]
        assert u.num_partitions == 3

    def test_sample_deterministic(self, ctx):
        ds = ctx.parallelize(range(1000), 4)
        s1 = ds.sample(0.3, seed=7).collect()
        s2 = ds.sample(0.3, seed=7).collect()
        assert s1 == s2
        assert 150 < len(s1) < 450

    def test_sample_fraction_bounds(self, ctx):
        ds = ctx.parallelize(range(10))
        with pytest.raises(ValueError, match="fraction"):
            ds.sample(1.5)

    def test_glom(self, ctx):
        ds = ctx.parallelize(range(4), 2)
        assert ds.glom().collect() == [[0, 1], [2, 3]]


class TestActions:
    def test_count(self, ctx):
        assert ctx.parallelize(range(13), 5).count() == 13

    def test_take_spans_partitions(self, ctx):
        ds = ctx.parallelize(range(10), 5)
        assert ds.take(7) == list(range(7))

    def test_take_more_than_available(self, ctx):
        assert ctx.parallelize([1, 2]).take(10) == [1, 2]

    def test_first(self, ctx):
        assert ctx.parallelize([9, 8, 7]).first() == 9

    def test_first_empty_raises(self, ctx):
        with pytest.raises(ValueError, match="empty"):
            ctx.parallelize([]).first()

    def test_reduce(self, ctx):
        assert ctx.parallelize(range(1, 11), 3).reduce(
            lambda a, b: a + b) == 55

    def test_reduce_empty_raises(self, ctx):
        with pytest.raises(ValueError, match="empty"):
            ctx.parallelize([]).reduce(lambda a, b: a + b)

    def test_aggregate(self, ctx):
        ds = ctx.parallelize(range(10), 4)
        total = ds.aggregate(0, lambda acc, x: acc + x, lambda a, b: a + b)
        assert total == 45

    def test_tree_aggregate_matches_aggregate(self, ctx):
        ds = ctx.parallelize(range(100), 7)
        agg = ds.aggregate(0, lambda a, x: a + x, lambda a, b: a + b)
        tree = ds.tree_aggregate(0, lambda a, x: a + x, lambda a, b: a + b)
        assert agg == tree == sum(range(100))

    def test_to_numpy(self, ctx):
        rows = [np.arange(3, dtype=float) + i for i in range(4)]
        out = ctx.parallelize(rows, 2).to_numpy()
        assert out.shape == (4, 3)
        np.testing.assert_allclose(out[2], np.arange(3) + 2)

    def test_estimated_size_scales(self, ctx):
        small = ctx.parallelize([np.zeros(10) for _ in range(8)], 2)
        large = ctx.parallelize([np.zeros(1000) for _ in range(8)], 2)
        assert large.estimated_size_bytes() > 50 * small.estimated_size_bytes()


class TestCachingSemantics:
    def test_recompute_counted_per_scan(self, ctx):
        ds = ctx.parallelize(range(10), 2).map(lambda x: x + 1)
        ds.collect()
        ds.collect()
        assert ctx.stats.compute_counts[ds.id] == 4  # 2 partitions x 2 scans

    def test_cached_dataset_computes_once(self, ctx):
        ds = ctx.parallelize(range(10), 2).map(lambda x: x + 1).cache()
        ds.collect()
        ds.collect()
        assert ctx.stats.compute_counts[ds.id] == 2  # once per partition

    def test_cache_serves_correct_values(self, ctx):
        ds = ctx.parallelize(range(6), 2).map(lambda x: x * 3).cache()
        first = ds.collect()
        second = ds.collect()
        assert first == second == [x * 3 for x in range(6)]

    def test_unpersist_drops_entries(self, ctx):
        ds = ctx.parallelize(range(6), 2).map(lambda x: x).cache()
        ds.collect()
        assert len(ctx.cache.entries) == 2
        ds.unpersist()
        assert len(ctx.cache.entries) == 0
        ds.collect()
        assert ctx.stats.compute_counts[ds.id] == 4

    def test_uncached_parent_recomputed_through_child(self, ctx):
        parent = ctx.parallelize(range(10), 2).map(lambda x: x + 1)
        child = parent.map(lambda x: x * 2)
        child.collect()
        child.collect()
        assert ctx.stats.compute_counts[parent.id] == 4

    def test_cached_parent_shields_recompute(self, ctx):
        parent = ctx.parallelize(range(10), 2).map(lambda x: x + 1).cache()
        child = parent.map(lambda x: x * 2)
        child.collect()
        child.collect()
        assert ctx.stats.compute_counts[parent.id] == 2

    def test_budget_zero_caches_nothing(self):
        ctx = Context(cache_budget_bytes=0, policy=LRUPolicy())
        ds = ctx.parallelize(range(10), 2).map(lambda x: x).cache()
        ds.collect()
        ds.collect()
        assert ctx.stats.compute_counts[ds.id] == 4

    def test_pinned_policy_pins_by_dataset_id(self):
        ctx = Context(policy=PinnedPolicy(set()))
        ds = ctx.parallelize(range(10), 2).map(lambda x: x).cache()
        other = ctx.parallelize(range(10), 2).map(lambda x: x).cache()
        ctx.cache.policy.cache_set.add(ds.id)
        ds.collect(); ds.collect()
        other.collect(); other.collect()
        assert ctx.stats.compute_counts[ds.id] == 2
        assert ctx.stats.compute_counts[other.id] == 4

    def test_partition_out_of_range(self, ctx):
        ds = ctx.parallelize(range(4), 2)
        with pytest.raises(IndexError):
            ds.partition(2)
