"""Tests for K-Means, the GMM estimator, and Fisher-vector encoding."""

import numpy as np
import pytest

from repro.dataset import Context
from repro.nodes.learning.fisher import FisherVector, FisherVectorEstimator
from repro.nodes.learning.gmm import GMMEstimator, GaussianMixtureModel
from repro.nodes.learning.kmeans import (
    ClusterAssigner,
    KMeansEstimator,
    kmeans_fit_array,
)


@pytest.fixture
def ctx():
    return Context(default_partitions=4)


def _clustered_points(n_per=100, centers=((0, 0), (10, 0), (0, 10)),
                      spread=0.5, seed=0):
    rng = np.random.default_rng(seed)
    points = []
    for c in centers:
        points.extend(np.asarray(c) + spread * rng.standard_normal(
            (n_per, len(c))))
    rng.shuffle(points)
    return [np.asarray(p) for p in points]


class TestKMeansArray:
    def test_recovers_centers(self):
        pts = np.vstack(_clustered_points())
        centroids = kmeans_fit_array(pts, 3, max_iter=30, seed=1)
        targets = np.array([[0, 0], [10, 0], [0, 10]], dtype=float)
        for t in targets:
            assert np.min(np.linalg.norm(centroids - t, axis=1)) < 0.5

    def test_too_few_points(self):
        with pytest.raises(ValueError, match="at least"):
            kmeans_fit_array(np.ones((2, 3)), 5, 10)


class TestKMeansEstimator:
    def test_distributed_matches_quality(self, ctx):
        pts = _clustered_points(seed=2)
        est = KMeansEstimator(3, max_iter=30, seed=1)
        assigner = est.fit(ctx.parallelize(pts, 4))
        targets = np.array([[0, 0], [10, 0], [0, 10]], dtype=float)
        for t in targets:
            assert np.min(np.linalg.norm(est.centroids_ - t, axis=1)) < 0.5
        assert isinstance(assigner, ClusterAssigner)

    def test_assigner_consistent(self, ctx):
        pts = _clustered_points(seed=3)
        assigner = KMeansEstimator(3, max_iter=20, seed=1).fit(
            ctx.parallelize(pts, 4))
        same_cluster = assigner.apply(np.array([0.1, 0.1]))
        assert assigner.apply(np.array([0.0, 0.2])) == same_cluster
        assert assigner.apply(np.array([10.0, 0.0])) != same_cluster

    def test_assigner_matrix_input(self, ctx):
        pts = _clustered_points()
        assigner = KMeansEstimator(3, max_iter=5, seed=0).fit(
            ctx.parallelize(pts, 2))
        out = assigner.apply(np.vstack(pts[:10]))
        assert out.shape == (10,)

    def test_weight_equals_iterations(self):
        assert KMeansEstimator(2, max_iter=17).weight == 17

    def test_too_few_rows(self, ctx):
        with pytest.raises(ValueError, match="at least"):
            KMeansEstimator(10).fit(ctx.parallelize(
                [np.zeros(2), np.ones(2)], 1))


class TestGMM:
    def test_recovers_means(self, ctx):
        pts = _clustered_points(seed=4)
        gmm = GMMEstimator(3, max_iter=20, seed=1).fit(
            ctx.parallelize(pts, 4))
        targets = np.array([[0, 0], [10, 0], [0, 10]], dtype=float)
        for t in targets:
            assert np.min(np.linalg.norm(gmm.means - t, axis=1)) < 0.5

    def test_weights_sum_to_one(self, ctx):
        gmm = GMMEstimator(3, max_iter=10, seed=0).fit(
            ctx.parallelize(_clustered_points(), 4))
        assert gmm.weights.sum() == pytest.approx(1.0)
        assert np.all(gmm.weights > 0)

    def test_responsibilities_rows_sum_to_one(self, ctx):
        pts = _clustered_points()
        gmm = GMMEstimator(3, max_iter=5, seed=0).fit(
            ctx.parallelize(pts, 4))
        resp = gmm.responsibilities(np.vstack(pts[:20]))
        np.testing.assert_allclose(resp.sum(axis=1), 1.0)

    def test_em_increases_likelihood(self, ctx):
        pts = _clustered_points(seed=5)
        data = ctx.parallelize(pts, 4)
        stacked = np.vstack(pts)
        ll_few = GMMEstimator(3, max_iter=1, seed=2).fit(
            data).log_likelihood(stacked)
        ll_many = GMMEstimator(3, max_iter=15, seed=2).fit(
            data).log_likelihood(stacked)
        assert ll_many >= ll_few - 1e-6

    def test_variance_floor(self, ctx):
        # Identical points would collapse variance without the floor.
        pts = [np.zeros(2)] * 50 + [np.ones(2)] * 50
        gmm = GMMEstimator(2, max_iter=10, min_variance=1e-3,
                           seed=0).fit(ctx.parallelize(pts, 2))
        assert np.all(gmm.variances >= 1e-3 - 1e-12)

    def test_apply_returns_responsibilities(self, ctx):
        gmm = GMMEstimator(2, max_iter=3, seed=0).fit(
            ctx.parallelize(_clustered_points(centers=((0, 0), (8, 8))), 2))
        out = gmm.apply(np.array([0.0, 0.0]))
        assert out.shape == (2,)
        assert out.sum() == pytest.approx(1.0)

    def test_matrix_rows_stacked(self, ctx):
        """Descriptor-matrix rows (n_desc, d) are handled."""
        rng = np.random.default_rng(0)
        mats = [rng.standard_normal((10, 2)) for _ in range(30)]
        gmm = GMMEstimator(2, max_iter=3, seed=0).fit(
            ctx.parallelize(mats, 2))
        assert gmm.means.shape == (2, 2)

    def test_invalid_components(self):
        with pytest.raises(ValueError, match="num_components"):
            GMMEstimator(0)


class TestFisherVector:
    def _gmm(self, d=3, k=2):
        return GaussianMixtureModel(
            weights=np.full(k, 1.0 / k),
            means=np.vstack([np.zeros(d), np.ones(d) * 5]),
            variances=np.ones((k, d)))

    def test_output_dim(self):
        fv = FisherVector(self._gmm())
        desc = np.random.default_rng(0).standard_normal((7, 3))
        assert fv.apply(desc).shape == (12,)  # 2 * K * d
        assert fv.output_dim == 12

    def test_zero_gradient_at_component_means(self):
        """Descriptors exactly at the means give (near) zero mean-gradient."""
        gmm = self._gmm()
        fv = FisherVector(gmm)
        out = fv.apply(gmm.means.copy())
        mu_part = out[:6]
        np.testing.assert_allclose(mu_part, 0.0, atol=1e-6)

    def test_single_descriptor(self):
        fv = FisherVector(self._gmm())
        assert fv.apply(np.zeros(3)).shape == (12,)

    def test_estimator_returns_encoder(self):
        ctx = Context()
        pts = _clustered_points(centers=((0, 0), (8, 8)))
        est = FisherVectorEstimator(GMMEstimator(2, max_iter=3, seed=0))
        fv = est.fit(ctx.parallelize(pts, 2))
        assert isinstance(fv, FisherVector)
        assert est.weight == GMMEstimator(2, max_iter=3).weight
