"""Tests for the Pipeline construction API and FittedPipeline semantics."""

import numpy as np
import pytest

from repro.core import graph as g
from repro.core.operators import (
    Estimator,
    LabelEstimator,
    Transformer,
)
from repro.core.pipeline import FittedPipeline, Pipeline
from repro.dataset import Context


class AddConst(Transformer):
    def __init__(self, c):
        self.c = c

    def apply(self, x):
        return x + self.c


class MeanShift(Estimator):
    """Fit: learns the dataset mean; transformer subtracts it."""

    def fit(self, data):
        values = data.collect()
        mean = sum(values) / len(values)
        return AddConst(-mean)


class OffsetToLabel(LabelEstimator):
    """Fit: learns mean(label - value); transformer adds it."""

    def fit(self, data, labels):
        pairs = list(zip(data.collect(), labels.collect()))
        offset = sum(lab - d for d, lab in pairs) / len(pairs)
        return AddConst(offset)


@pytest.fixture
def ctx():
    return Context(default_partitions=2)


class TestChaining:
    def test_transformer_chain(self, ctx):
        pipe = AddConst(1).and_then(AddConst(10))
        fitted = pipe.fit(level="none")
        assert fitted.apply(0) == 11

    def test_identity_pipeline(self, ctx):
        fitted = Pipeline.identity().and_then(AddConst(5)).fit(level="none")
        assert fitted.apply(1) == 6

    def test_estimator_requires_data(self):
        with pytest.raises(TypeError, match="requires a data"):
            Pipeline.identity().and_then(MeanShift())

    def test_label_estimator_requires_labels(self, ctx):
        data = ctx.parallelize([1.0, 2.0])
        with pytest.raises(TypeError, match="labels"):
            Pipeline.identity().and_then(OffsetToLabel(), data)

    def test_unsupervised_estimator_rejects_labels(self, ctx):
        data = ctx.parallelize([1.0])
        with pytest.raises(TypeError, match="unsupervised"):
            Pipeline.identity().and_then(MeanShift(), data, data)

    def test_transformer_rejects_data(self, ctx):
        data = ctx.parallelize([1.0])
        with pytest.raises(TypeError, match="not accepted"):
            Pipeline.identity().and_then(AddConst(1), data)

    def test_chain_unknown_type(self):
        with pytest.raises(TypeError, match="cannot chain"):
            Pipeline.identity().and_then(42)

    def test_pipeline_splice(self, ctx):
        first = Pipeline.identity().and_then(AddConst(1))
        second = Pipeline.identity().and_then(AddConst(10))
        fitted = first.and_then(second).fit(level="none")
        assert fitted.apply(0) == 11


class TestEstimatorSemantics:
    def test_estimator_fits_on_prefix_of_data(self, ctx):
        data = ctx.parallelize([0.0, 2.0, 4.0])  # prefix adds 1 -> mean 3
        pipe = (Pipeline.identity()
                .and_then(AddConst(1))
                .and_then(MeanShift(), data))
        fitted = pipe.fit(level="none")
        # apply: (x + 1) - mean(data + 1) = x + 1 - 3
        assert fitted.apply(10.0) == pytest.approx(8.0)

    def test_label_estimator(self, ctx):
        data = ctx.parallelize([1.0, 2.0, 3.0])
        labels = ctx.parallelize([11.0, 12.0, 13.0])
        pipe = Pipeline.identity().and_then(OffsetToLabel(), data, labels)
        fitted = pipe.fit(level="none")
        assert fitted.apply(5.0) == pytest.approx(15.0)

    def test_downstream_estimator_sees_fitted_upstream(self, ctx):
        data = ctx.parallelize([2.0, 4.0])
        # First estimator centers (mean 3); second learns offset to labels.
        labels = ctx.parallelize([100.0, 101.0])
        pipe = (Pipeline.identity()
                .and_then(MeanShift(), data)
                .and_then(OffsetToLabel(), data, labels))
        fitted = pipe.fit(level="none")
        # centered data: [-1, 1]; offsets: [101, 100] -> mean 100.5
        assert fitted.apply(3.0) == pytest.approx(100.5)

    def test_and_then_trained_on(self, ctx):
        data = ctx.parallelize([0.0, 10.0])
        main = Pipeline.identity().and_then(AddConst(1))
        train_prefix = main.and_then(AddConst(100))
        pipe = main.and_then_trained_on(MeanShift(), train_prefix, data)
        fitted = pipe.fit(level="none")
        # Estimator trained on data+101 -> mean 106; main flow is x+1.
        assert fitted.apply(0.0) == pytest.approx(1 - 106)

    def test_and_then_trained_on_type_errors(self, ctx):
        data = ctx.parallelize([1.0])
        main = Pipeline.identity()
        with pytest.raises(TypeError, match="requires labels"):
            main.and_then_trained_on(OffsetToLabel(), main, data)
        with pytest.raises(TypeError, match="expected an estimator"):
            main.and_then_trained_on(AddConst(1), main, data)


class TestGather:
    def test_gather_collects_branches(self, ctx):
        base = Pipeline.identity()
        branches = [base.and_then(AddConst(1)), base.and_then(AddConst(2))]
        fitted = Pipeline.gather(branches).fit(level="none")
        assert fitted.apply(10) == [11, 12]

    def test_gather_empty_raises(self):
        with pytest.raises(ValueError, match="at least one branch"):
            Pipeline.gather([])

    def test_gather_dataset_application(self, ctx):
        base = Pipeline.identity()
        branches = [base.and_then(AddConst(i)) for i in range(3)]
        fitted = Pipeline.gather(branches).fit(level="none")
        out = fitted.apply_dataset(ctx.parallelize([0, 10], 2)).collect()
        assert out == [[0, 1, 2], [10, 11, 12]]


class TestFittedPipeline:
    def test_item_and_dataset_agree(self, ctx):
        data = ctx.parallelize([1.0, 2.0, 3.0])
        labels = ctx.parallelize([2.0, 4.0, 6.0])
        pipe = (Pipeline.identity()
                .and_then(AddConst(0.5))
                .and_then(OffsetToLabel(), data, labels))
        fitted = pipe.fit(level="none")
        items = [0.0, 1.0, 5.0]
        per_item = [fitted.apply(x) for x in items]
        bulk = fitted.apply_dataset(ctx.parallelize(items, 2)).collect()
        assert per_item == pytest.approx(bulk)

    def test_fitted_pipeline_is_transformer(self, ctx):
        fitted = Pipeline.identity().and_then(AddConst(3)).fit(level="none")
        chained = fitted.and_then(AddConst(4)).fit(level="none")
        assert chained.apply(0) == 7

    def test_training_report_attached(self, ctx):
        fitted = Pipeline.identity().and_then(AddConst(1)).fit(level="none")
        assert fitted.training_report is not None
        assert fitted.training_report.level == "none"

    def test_unbound_source_raises_on_item_apply(self):
        sink = g.source("not-input")
        bad = FittedPipeline(g.pipeline_input(),
                             g.OpNode(g.TRANSFORMER, AddConst(1), (sink,)))
        with pytest.raises(ValueError, match="unbound source"):
            bad.apply(1)

    def test_repr(self):
        pipe = Pipeline.identity().and_then(AddConst(1))
        assert "Pipeline" in repr(pipe)
