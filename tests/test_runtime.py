"""Unit tests for the actor runtime internals.

End-to-end actor coverage lives in tests/test_backends.py
(TestActorBackend) and tests/test_failure_modes.py
(TestActorFaultTolerance).  These tests pin the in-process pieces — the
shard-state cache, the shared liveness walk, the zero-copy transport,
and chunk planning — without spawning worker processes.
"""

import numpy as np
import pytest

from repro.core import program as prog
from repro.core.backends.actors import _plan_chunks
from repro.core.program import UnshippableFlow
from repro.runtime import transport
from repro.runtime.worker import ShardStateCache, live_slots


def _op(slot, kind, parents=(), key=""):
    return prog.Op(slot, slot, kind, None, tuple(parents), f"op{slot}", key)


def _chain(keys):
    """source -> transform -> ... with the given per-slot content keys."""
    ops = [_op(0, prog.SOURCE, key=keys[0])]
    for slot in range(1, len(keys)):
        ops.append(_op(slot, prog.TRANSFORM, (slot - 1,), key=keys[slot]))
    return ops


class TestShardStateCache:
    def test_miss_then_hit_counts(self):
        cache = ShardStateCache()
        key = ("k", 0, 2)
        assert key not in cache
        cache.put(key, [[1], [2]])
        assert key in cache
        assert cache.get(key) == [[1], [2]]
        assert cache.misses == 1
        assert cache.hits == 1

    def test_budget_evicts_least_recently_used(self):
        row = np.zeros(128)  # 1 KiB per row
        cache = ShardStateCache(budget_bytes=3 * row.nbytes)
        for name in ("a", "b", "c"):
            cache.put((name, 0, 1), [[row]])
        cache.get(("a", 0, 1))  # refresh "a": "b" is now the LRU entry
        cache.put(("d", 0, 1), [[row]])
        assert ("b", 0, 1) not in cache
        assert ("a", 0, 1) in cache
        assert cache.drain_evicted() == [("b", 0, 1)]
        assert cache.drain_evicted() == []

    def test_replacing_an_entry_does_not_double_charge(self):
        row = np.zeros(128)
        cache = ShardStateCache(budget_bytes=2 * row.nbytes)
        cache.put(("a", 0, 1), [[row]])
        cache.put(("a", 0, 1), [[row]])
        cache.put(("b", 0, 1), [[row]])
        assert ("a", 0, 1) in cache
        assert ("b", 0, 1) in cache
        assert cache.drain_evicted() == []

    def test_an_oversized_entry_still_resides(self):
        cache = ShardStateCache(budget_bytes=8)
        cache.put(("big", 0, 1), [[np.zeros(64)]])
        assert ("big", 0, 1) in cache  # never evicts the sole entry


class TestLiveSlots:
    def test_cold_cache_computes_everything(self):
        ops = _chain(["s", "t1", "t2"])
        needed, compute = live_slots(ops, [2], lambda key: False)
        assert needed == {0, 1, 2}
        assert compute == {0, 1, 2}

    def test_cached_prefix_prunes_its_parents(self):
        ops = _chain(["s", "t1", "t2"])
        needed, compute = live_slots(ops, [2], lambda key: key == "t1")
        assert compute == {2}
        assert needed == {1, 2}  # the source behind the cached op drops out

    def test_gather_is_never_served_from_cache(self):
        ops = _chain(["s", "t1"])
        ops.append(_op(2, prog.GATHER, (1,), key="gkey"))
        needed, compute = live_slots(ops, [2], lambda key: True)
        assert 2 in compute

    def test_unkeyed_ops_are_never_cache_candidates(self):
        ops = _chain(["", ""])
        needed, compute = live_slots(ops, [1], lambda key: True)
        assert compute == {0, 1}

    def test_unreachable_slots_are_skipped(self):
        ops = _chain(["s", "t1", "t2"])
        needed, compute = live_slots(ops, [1], lambda key: False)
        assert 2 not in needed
        assert compute == {0, 1}


class TestTransport:
    def test_small_payloads_ride_the_pipe_inline(self):
        obj = {"rows": [np.arange(4), "text"]}
        res = transport.pack(obj)
        assert res.payload[0] == "inline"
        assert res.mapped_bytes == 0
        assert res.shipped_bytes > 0
        out, segments = transport.unpack(res.payload)
        assert segments == []
        np.testing.assert_array_equal(out["rows"][0], np.arange(4))
        res.release()  # no segment: must be a no-op

    def test_large_arrays_go_through_shared_memory(self):
        if transport.shared_memory is None:
            pytest.skip("multiprocessing.shared_memory unavailable")
        arrays = [np.arange(32768, dtype=np.float64), np.ones(16384)]
        res = transport.pack(arrays, shm_threshold=1024)
        if res.payload[0] != "shm":  # no usable /dev/shm on this host
            pytest.skip("shared memory segment creation unavailable")
        assert res.mapped_bytes == sum(a.nbytes for a in arrays)
        out, segments = transport.unpack(res.payload)
        assert len(segments) == 1
        np.testing.assert_array_equal(out[0], arrays[0])
        np.testing.assert_array_equal(out[1], arrays[1])
        # This test is sender and receiver in one process: unpack() just
        # unregistered the segment (the receiver half), so restore the
        # sender's registration before release() unlinks it — otherwise
        # the resource tracker reports a spurious KeyError at exit.
        from multiprocessing import resource_tracker

        resource_tracker.register(res.segment._name, "shared_memory")
        res.release()
        res.release()  # idempotent
        del out
        for segment in segments:
            segment.close()

    def test_threshold_keeps_large_payloads_inline(self):
        arrays = [np.arange(32768, dtype=np.float64)]
        res = transport.pack(arrays, shm_threshold=1 << 30)
        assert res.payload[0] == "inline"
        assert res.shipped_bytes >= arrays[0].nbytes
        out, segments = transport.unpack(res.payload)
        np.testing.assert_array_equal(out[0], arrays[0])
        assert segments == []


class _FakeDataset:
    def __init__(self, num_partitions):
        self.num_partitions = num_partitions


class TestPlanChunks:
    def test_chunks_cover_partitions_contiguously(self):
        sources = {1: _FakeDataset(10), 2: _FakeDataset(10)}
        chunks, num_partitions = _plan_chunks(sources, 4)
        assert num_partitions == 10
        assert chunks[0][0] == 0
        assert chunks[-1][1] == 10
        for (_, stop), (start, _) in zip(chunks, chunks[1:]):
            assert stop == start

    def test_more_workers_than_partitions_collapses(self):
        chunks, _ = _plan_chunks({1: _FakeDataset(2)}, 8)
        assert chunks == [(0, 1), (1, 2)]

    def test_disagreeing_partition_counts_are_unshippable(self):
        sources = {1: _FakeDataset(4), 2: _FakeDataset(5)}
        with pytest.raises(UnshippableFlow):
            _plan_chunks(sources, 2)
