"""Tests for hyperparameter grid search over pipelines."""

import pytest

from repro.core.pipeline import Pipeline
from repro.core.tuning import GridSearch, SearchResult, TrialResult, \
    expand_grid
from repro.dataset import Context
from repro.evaluation import accuracy
from repro.nodes.learning.linear import LinearSolver
from repro.nodes.learning.random_features import CosineRandomFeatures
from repro.nodes.numeric import MaxClassifier
from repro.workloads import dense_vectors


class TestExpandGrid:
    def test_cartesian_product(self):
        combos = expand_grid({"a": [1, 2], "b": ["x", "y"]})
        assert len(combos) == 4
        assert {"a": 2, "b": "x"} in combos

    def test_empty_grid(self):
        assert expand_grid({}) == [{}]

    def test_single_axis(self):
        assert expand_grid({"k": [1, 2, 3]}) == [{"k": 1}, {"k": 2},
                                                 {"k": 3}]


class TestSearchResult:
    def test_best_by_score(self):
        result = SearchResult([
            TrialResult({"a": 1}, 0.5, 1.0),
            TrialResult({"a": 2}, 0.9, 1.0),
        ])
        assert result.best.params == {"a": 2}

    def test_ranked_descending(self):
        result = SearchResult([
            TrialResult({}, 0.2, 0.0), TrialResult({}, 0.8, 0.0),
            TrialResult({}, 0.5, 0.0)])
        assert [t.score for t in result.ranked()] == [0.8, 0.5, 0.2]

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="no trials"):
            SearchResult([]).best


class TestGridSearch:
    def test_tunes_random_feature_count(self):
        wl = dense_vectors(300, 100, dim=16, num_classes=3,
                           class_separation=1.5, seed=0)

        def builder(params):
            ctx = Context()
            data = wl.train_data(ctx)
            labels = wl.train_label_vectors(ctx)
            return (Pipeline.identity()
                    .and_then(CosineRandomFeatures(
                        params["num_features"], gamma=params["gamma"],
                        seed=0), data)
                    .and_then(LinearSolver(), data, labels))

        def scorer(fitted):
            ctx = Context()
            preds = [MaxClassifier().apply(s) for s in
                     fitted.apply_dataset(wl.test_data(ctx)).collect()]
            return accuracy(preds, wl.test_labels)

        search = GridSearch(
            builder, scorer,
            grid={"num_features": [8, 64], "gamma": [0.05]},
            fit_kwargs={"sample_sizes": (20, 40)})
        result = search.run()
        assert len(result.trials) == 2
        # More random features approximate the kernel better.
        by_features = {t.params["num_features"]: t.score
                       for t in result.trials}
        assert by_features[64] >= by_features[8]
        assert result.best.fit_seconds > 0

    def test_max_trials_subsamples_deterministically(self):
        calls = []

        def builder(params):
            calls.append(params)
            return Pipeline.identity()

        search = GridSearch(builder, lambda f: 0.0,
                            grid={"a": list(range(10))}, max_trials=3,
                            seed=1, fit_kwargs={"level": "none"})
        configs_a = search.configurations()
        configs_b = search.configurations()
        assert configs_a == configs_b
        assert len(configs_a) == 3

    def test_selections_recorded(self):
        wl = dense_vectors(200, 50, dim=8, num_classes=2, seed=0)

        def builder(params):
            ctx = Context()
            return Pipeline.identity().and_then(
                LinearSolver(), wl.train_data(ctx),
                wl.train_label_vectors(ctx))

        search = GridSearch(builder, lambda f: 1.0, grid={},
                            fit_kwargs={"sample_sizes": (20, 40)})
        result = search.run()
        assert len(result.trials) == 1
        assert result.trials[0].selections  # optimizer decisions captured

    def test_keep_pipelines(self):
        def builder(params):
            return Pipeline.identity()

        search = GridSearch(builder, lambda f: 0.0, grid={},
                            fit_kwargs={"level": "none"},
                            keep_pipelines=True)
        assert search.run().trials[0].pipeline is not None
