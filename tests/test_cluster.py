"""Tests for resource descriptors, microbenchmarks, and the simulator."""

import pytest

from repro.cluster import (
    ClusterSimulator,
    ResourceDescriptor,
    SimulatedStage,
    blue_gene_q,
    c3_4xlarge,
    local_machine,
    microbenchmark,
    r3_4xlarge,
)
from repro.cluster.simulator import scaling_sweep
from repro.cost.profile import CostProfile


class TestResourceDescriptor:
    def test_with_nodes(self):
        base = r3_4xlarge(16)
        bigger = base.with_nodes(64)
        assert bigger.num_nodes == 64
        assert bigger.cpu_flops == base.cpu_flops

    def test_with_nodes_invalid(self):
        with pytest.raises(ValueError, match="num_nodes"):
            r3_4xlarge().with_nodes(0)

    def test_totals(self):
        res = ResourceDescriptor(num_nodes=4, cores_per_node=8,
                                 memory_bytes=10e9)
        assert res.total_cores == 32
        assert res.total_memory_bytes == 40e9

    def test_profiles_distinct(self):
        names = {p().name for p in (r3_4xlarge, c3_4xlarge, blue_gene_q,
                                    local_machine)}
        assert len(names) == 4

    def test_frozen(self):
        res = r3_4xlarge()
        with pytest.raises(Exception):
            res.num_nodes = 5


class TestMicrobenchmark:
    def test_produces_plausible_rates(self):
        res = microbenchmark(matmul_n=128, copy_mb=4)
        # Any machine runs between 100 MFLOP/s and 100 TFLOP/s.
        assert 1e8 < res.cpu_flops < 1e14
        assert 1e8 < res.memory_bandwidth < 1e13
        assert res.num_nodes == 1


class TestSimulator:
    def _stage(self, flops_fn):
        return SimulatedStage("s", lambda w: CostProfile(flops=flops_fn(w)),
                              "Compute")

    def test_stage_time_includes_overhead(self):
        sim = ClusterSimulator(ResourceDescriptor(cpu_flops=1e9),
                               overhead_per_stage=2.0)
        stage = self._stage(lambda w: 1e9)
        assert sim.time_stage(stage) == pytest.approx(3.0)

    def test_parallel_stage_scales_down(self):
        stages = [self._stage(lambda w: 1e12 / w)]
        res = ResourceDescriptor(cpu_flops=1e9)
        t8 = ClusterSimulator(res.with_nodes(8), 0.0).total_seconds(stages)
        t64 = ClusterSimulator(res.with_nodes(64), 0.0).total_seconds(stages)
        assert t8 / t64 == pytest.approx(8.0)

    def test_overhead_bounds_strong_scaling(self):
        stages = [self._stage(lambda w: 1e10 / w)]
        res = ResourceDescriptor(cpu_flops=1e9)
        t1k = ClusterSimulator(res.with_nodes(1024), 2.0).total_seconds(stages)
        assert t1k > 2.0  # cannot go below the fixed overhead

    def test_breakdown_groups_by_category(self):
        stages = [
            SimulatedStage("a", lambda w: CostProfile(flops=1e9), "Feat"),
            SimulatedStage("b", lambda w: CostProfile(flops=2e9), "Feat"),
            SimulatedStage("c", lambda w: CostProfile(flops=1e9), "Solve"),
        ]
        sim = ClusterSimulator(ResourceDescriptor(cpu_flops=1e9), 0.0)
        breakdown = sim.breakdown(stages)
        assert breakdown["Feat"] == pytest.approx(3.0)
        assert breakdown["Solve"] == pytest.approx(1.0)

    def test_scaling_sweep_keys(self):
        stages = [self._stage(lambda w: 1e9 / w)]
        res = ResourceDescriptor(cpu_flops=1e9)
        result = scaling_sweep(stages, res, [8, 16, 32])
        assert sorted(result) == [8, 16, 32]
        assert all("Compute" in v for v in result.values())

    def test_profile_fns_priced_once_across_calls(self):
        """total_seconds + breakdown on the same stages reuse one run()."""
        calls = []

        def profile(w):
            calls.append(w)
            return CostProfile(flops=1e9)

        stage = SimulatedStage("s", profile, "Compute")
        sim = ClusterSimulator(ResourceDescriptor(cpu_flops=1e9), 0.0)
        total = sim.total_seconds([stage])
        breakdown = sim.breakdown([stage])
        timings = sim.run([stage])
        assert len(calls) == 1
        assert total == pytest.approx(1.0)
        assert breakdown["Compute"] == pytest.approx(1.0)
        assert timings[0].seconds == pytest.approx(1.0)

    def test_run_reprices_different_stages(self):
        calls = []

        def make(name):
            def profile(w):
                calls.append(name)
                return CostProfile(flops=1e9)
            return SimulatedStage(name, profile, "C")

        sim = ClusterSimulator(ResourceDescriptor(cpu_flops=1e9), 0.0)
        a, b = make("a"), make("b")
        sim.total_seconds([a])
        sim.total_seconds([b])
        sim.total_seconds([a])  # a is no longer the cached list
        assert calls == ["a", "b", "a"]

    def test_network_term_grows_with_nodes(self):
        """A stage whose network cost grows with w eventually dominates."""
        import math

        def profile(w):
            return CostProfile(flops=1e12 / w,
                               network=1e9 * math.log2(max(w, 2)))

        stages = [SimulatedStage("solve", profile, "Solve")]
        res = ResourceDescriptor(cpu_flops=1e9, network_bandwidth=1e8)
        t_small = ClusterSimulator(res.with_nodes(8), 0.0).total_seconds(stages)
        t_huge = ClusterSimulator(res.with_nodes(4096), 0.0).total_seconds(stages)
        # Compute shrank 512x but network grew: sublinear overall speedup.
        assert t_small / t_huge < 512
