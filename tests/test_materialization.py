"""Tests for the automatic-materialization optimizer (Algorithm 1)."""

import pytest

from repro.core import graph as g
from repro.core import materialization as mat
from repro.core.operators import Transformer
from repro.core.profiler import NodeProfile, PipelineProfile


class _Op(Transformer):
    def __init__(self, weight=1):
        self.weight = weight

    def apply(self, x):
        return x


def _profile_for(nodes, times, sizes):
    profile = PipelineProfile()
    for node in nodes:
        profile.nodes[node.id] = NodeProfile(
            node=node, t_seconds=times[node.id], size_bytes=sizes[node.id],
            stats=None, weight=node.weight)
    return profile


def _chain_with_iterative_sink(iterations=10, t_feat=5.0, feat_size=100.0):
    """source -> featurize -> solver(weight=iterations)"""
    src = g.source("data")
    feat = g.OpNode(g.TRANSFORMER, _Op(), (src,), label="featurize")
    solver = g.OpNode(g.TRANSFORMER, _Op(weight=iterations), (feat,),
                      label="solver")
    times = {src.id: 1.0, feat.id: t_feat, solver.id: 2.0}
    sizes = {src.id: 50.0, feat.id: feat_size, solver.id: 1.0}
    nodes = [src, feat, solver]
    problem = mat.MaterializationProblem(
        [solver], _profile_for(nodes, times, sizes))
    return problem, src, feat, solver


class TestCostFormulas:
    def test_request_counts_chain(self):
        problem, src, feat, solver = _chain_with_iterative_sink(10)
        counts = problem.request_counts(set())
        assert counts[solver.id] == 1
        assert counts[feat.id] == 10      # solver scans input 10 times
        assert counts[src.id] == 10       # uncached feat recomputes 10x

    def test_caching_shields_upstream(self):
        problem, src, feat, solver = _chain_with_iterative_sink(10)
        counts = problem.request_counts({feat.id})
        assert counts[feat.id] == 10      # still requested 10 times
        assert counts[src.id] == 1        # but computed once

    def test_runtime_no_cache(self):
        problem, src, feat, solver = _chain_with_iterative_sink(10, t_feat=5.0)
        # solver once (2) + feat 10x (50) + src 10x (10)
        assert problem.estimate_runtime(set()) == pytest.approx(62.0)

    def test_runtime_with_cache(self):
        problem, src, feat, solver = _chain_with_iterative_sink(10, t_feat=5.0)
        # solver once (2) + feat once (5) + src once (1)
        assert problem.estimate_runtime({feat.id}) == pytest.approx(8.0)

    def test_diamond_counts(self):
        src = g.source("d")
        shared = g.OpNode(g.TRANSFORMER, _Op(), (src,))
        left = g.OpNode(g.TRANSFORMER, _Op(weight=3), (shared,))
        right = g.OpNode(g.TRANSFORMER, _Op(weight=2), (shared,))
        sink = g.OpNode(g.GATHER, None, (left, right))
        nodes = [src, shared, left, right, sink]
        times = {n.id: 1.0 for n in nodes}
        sizes = {n.id: 1.0 for n in nodes}
        problem = mat.MaterializationProblem(
            [sink], _profile_for(nodes, times, sizes))
        counts = problem.request_counts(set())
        assert counts[shared.id] == 5  # 3 + 2

    def test_weights_compound_down_the_chain(self):
        src = g.source("d")
        a = g.OpNode(g.TRANSFORMER, _Op(weight=3), (src,))
        b = g.OpNode(g.TRANSFORMER, _Op(weight=4), (a,))
        nodes = [src, a, b]
        problem = mat.MaterializationProblem(
            [b], _profile_for(nodes, {n.id: 1.0 for n in nodes},
                              {n.id: 1.0 for n in nodes}))
        counts = problem.request_counts(set())
        assert counts[a.id] == 4
        assert counts[src.id] == 12  # 4 computations of a, 3 scans each


class TestGreedy:
    def test_caches_reused_featurization(self):
        problem, src, feat, solver = _chain_with_iterative_sink(10)
        cache = mat.greedy_cache_set(problem, mem_budget=1000.0)
        assert feat.id in cache

    def test_respects_memory_budget(self):
        problem, src, feat, solver = _chain_with_iterative_sink(
            10, feat_size=100.0)
        cache = mat.greedy_cache_set(problem, mem_budget=60.0)
        assert feat.id not in cache       # too big
        assert src.id in cache            # second-best option fits

    def test_zero_budget_caches_nothing(self):
        problem, *_ = _chain_with_iterative_sink(10)
        assert mat.greedy_cache_set(problem, mem_budget=0.0) == set()

    def test_no_benefit_no_cache(self):
        """A straight-line pipeline with weight-1 nodes gains nothing."""
        src = g.source("d")
        a = g.OpNode(g.TRANSFORMER, _Op(), (src,))
        nodes = [src, a]
        problem = mat.MaterializationProblem(
            [a], _profile_for(nodes, {n.id: 1.0 for n in nodes},
                              {n.id: 1.0 for n in nodes}))
        assert mat.greedy_cache_set(problem, 1e9) == set()

    def test_greedy_never_worse_than_uncached(self):
        problem, *_ = _chain_with_iterative_sink(7)
        cache = mat.greedy_cache_set(problem, 1e9)
        assert problem.estimate_runtime(cache) <= \
            problem.estimate_runtime(set())


class TestExact:
    def test_matches_greedy_on_simple_chain(self):
        problem, src, feat, solver = _chain_with_iterative_sink(10)
        greedy = mat.greedy_cache_set(problem, 1000.0)
        exact = mat.exact_cache_set(problem, 1000.0)
        assert problem.estimate_runtime(exact) <= \
            problem.estimate_runtime(greedy) + 1e-9

    def test_exact_respects_budget(self):
        problem, src, feat, solver = _chain_with_iterative_sink(
            10, feat_size=100.0)
        exact = mat.exact_cache_set(problem, 60.0)
        total = sum(problem.size[i] for i in exact)
        assert total <= 60.0

    def test_too_many_nodes_rejected(self):
        problem, *_ = _chain_with_iterative_sink(2)
        with pytest.raises(ValueError, match="limited"):
            mat.exact_cache_set(problem, 1e9, max_nodes=1)


class TestStrategies:
    def test_unknown_strategy(self):
        problem, *_ = _chain_with_iterative_sink(2)
        with pytest.raises(ValueError, match="unknown caching strategy"):
            mat.choose_cache_set("wat", problem, 1e9)

    def test_none_and_rule_cache_nothing(self):
        problem, *_ = _chain_with_iterative_sink(2)
        for strategy in (mat.NONE, mat.RULE_BASED):
            ids, lru = mat.choose_cache_set(strategy, problem, 1e9)
            assert ids == set()
            assert not lru

    def test_lru_marks_everything(self):
        problem, src, feat, solver = _chain_with_iterative_sink(2)
        ids, lru = mat.choose_cache_set(mat.LRU, problem, 1e9)
        assert lru
        assert feat.id in ids

    def test_greedy_strategy_routes_to_algorithm(self):
        problem, src, feat, solver = _chain_with_iterative_sink(10)
        ids, lru = mat.choose_cache_set(mat.GREEDY, problem, 1e9)
        assert not lru
        assert feat.id in ids
