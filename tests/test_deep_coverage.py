"""Additional coverage: context plumbing, report details, edge paths."""

import numpy as np
import pytest

from repro.cluster.microbench import (
    measure_cpu_flops,
    measure_memory_bandwidth,
    measure_task_overhead,
)
from repro.cluster.resources import ResourceDescriptor, local_machine
from repro.core import graph as g
from repro.core.executor import TrainingReport
from repro.core.operators import FunctionTransformer, IdentityTransformer
from repro.cost.model import execution_seconds
from repro.cost.profile import CostProfile
from repro.dataset import Context
from repro.dataset.cache import LRUPolicy


class TestContextPlumbing:
    def test_set_policy_swaps_cache(self):
        ctx = Context(cache_budget_bytes=100)
        old_cache = ctx.cache
        ctx.set_policy(LRUPolicy(), budget_bytes=200)
        assert ctx.cache is not old_cache
        assert ctx.cache.budget == 200

    def test_set_policy_keeps_budget_by_default(self):
        ctx = Context(cache_budget_bytes=123)
        ctx.set_policy(LRUPolicy())
        assert ctx.cache.budget == 123

    def test_reset_stats(self):
        ctx = Context()
        ctx.parallelize([1, 2], 1).map(lambda x: x).collect()
        assert ctx.stats.total_computations() > 0
        ctx.reset_stats()
        assert ctx.stats.total_computations() == 0

    def test_dataset_ids_monotone(self):
        ctx = Context()
        a = ctx.parallelize([1])
        b = a.map(lambda x: x)
        assert b.id > a.id

    def test_dataset_repr(self):
        ctx = Context()
        ds = ctx.parallelize([1], 2).cache()
        assert "cached=True" in repr(ds)


class TestTaskOverheadPricing:
    def test_tasks_priced(self):
        res = ResourceDescriptor(task_overhead=0.5)
        assert execution_seconds(CostProfile(tasks=4), res) == \
            pytest.approx(2.0)

    def test_zero_overhead_free(self):
        res = ResourceDescriptor(task_overhead=0.0)
        assert execution_seconds(CostProfile(tasks=100), res) == 0.0

    def test_local_machine_has_overhead(self):
        assert local_machine().task_overhead > 0

    def test_measure_task_overhead_positive(self):
        overhead = measure_task_overhead(rows=100, partitions=2, repeats=1)
        assert 0 < overhead < 1.0

    def test_measure_primitives(self):
        assert measure_cpu_flops(n=64, repeats=1) > 1e6
        assert measure_memory_bandwidth(size_mb=1, repeats=1) > 1e6


class TestReportDetails:
    def test_total_seconds_sum(self):
        report = TrainingReport(level="full", optimize_seconds=1.5,
                                execute_seconds=2.5)
        assert report.total_seconds == pytest.approx(4.0)

    def test_stage_seconds_empty_report(self):
        report = TrainingReport(level="none")
        stages = report.stage_seconds()
        assert stages["Solve"] == 0
        assert stages["Featurize"] == 0

    def test_estimator_time_counts_as_solve(self):
        report = TrainingReport(level="none")
        report.node_seconds = {1: 2.0, 2: 3.0}
        report.estimator_seconds = {2: 3.0}
        stages = report.stage_seconds()
        assert stages["Solve"] == pytest.approx(3.0)
        assert stages["Featurize"] == pytest.approx(2.0)


class TestGraphExtras:
    def test_to_dot_gather_shape(self):
        inp = g.pipeline_input()
        a = g.OpNode(g.TRANSFORMER, IdentityTransformer(), (inp,))
        b = g.OpNode(g.TRANSFORMER, IdentityTransformer(), (inp,))
        sink = g.OpNode(g.GATHER, None, (a, b))
        dot = g.to_dot([sink])
        assert dot.count("->") == 4

    def test_function_transformer_repr(self):
        t = FunctionTransformer(lambda x: x, "myfn")
        assert "myfn" in repr(t)

    def test_function_transformer_named_from_fn(self):
        def special(x):
            return x

        assert FunctionTransformer(special).name == "special"


class TestPipelineStructure:
    def test_imagenet_pipeline_has_two_branches(self):
        from repro.pipelines import imagenet_pipeline
        from repro.workloads import imagenet_images

        ctx = Context()
        wl = imagenet_images(10, 5, size=48, num_classes=3)
        pipe = imagenet_pipeline(ctx, wl, pca_dims=4, gmm_components=2,
                                 sampled_descriptors=20)
        # Pre-CSE the DAG holds one gather per flow (training + inference);
        # each joins the SIFT and LCS branches.
        gathers = [n for n in g.ancestors([pipe.sink])
                   if n.kind == g.GATHER]
        assert len(gathers) >= 1
        assert all(len(node.parents) == 2 for node in gathers)

    def test_timit_pipeline_branch_count(self):
        from repro.pipelines import timit_pipeline
        from repro.workloads import timit_frames

        ctx = Context()
        wl = timit_frames(20, 5, dim=8, num_classes=3)
        pipe = timit_pipeline(ctx, wl, num_feature_blocks=3, block_size=4)
        gathers = [n for n in g.ancestors([pipe.sink])
                   if n.kind == g.GATHER]
        assert len(gathers[0].parents) == 3

    def test_amazon_pipeline_estimator_count(self):
        from repro.pipelines import amazon_pipeline
        from repro.workloads import amazon_reviews

        ctx = Context()
        wl = amazon_reviews(20, 5)
        pipe = amazon_pipeline(ctx, wl, num_features=10)
        estimators = [n for n in g.ancestors([pipe.sink])
                      if n.kind == g.ESTIMATOR]
        assert len(estimators) == 2  # CommonSparseFeatures + LinearSolver


class TestBaselineEdgeCases:
    def test_systemml_without_conversion(self):
        from repro.baselines import SystemMLSolver

        ctx = Context()
        rng = np.random.default_rng(0)
        a = rng.standard_normal((50, 4))
        x_true = rng.standard_normal((4, 2))
        data = ctx.parallelize(list(a), 2)
        labels = ctx.parallelize(list(a @ x_true), 2)
        model = SystemMLSolver(max_iter=50, l2_reg=1e-12,
                               convert_input=False).fit(data, labels)
        np.testing.assert_allclose(model.weights, x_true, atol=1e-5)

    def test_vw_learning_rate_decay(self):
        from repro.baselines import VowpalWabbitSolver

        slow = VowpalWabbitSolver(passes=1, power_t=1.0)
        fast = VowpalWabbitSolver(passes=1, power_t=0.1)
        assert slow.power_t > fast.power_t  # construction-level check

    def test_tensorflow_sim_single_node_no_sync(self):
        from repro.baselines import TensorFlowSim

        sim = TensorFlowSim(ResourceDescriptor(cpu_flops=1e12,
                                               network_bandwidth=1.0))
        # One worker: no synchronization cost even on a terrible network.
        t = sim.time_to_accuracy_minutes(1, "strong")
        assert t is not None and t < 1e4
